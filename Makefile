# Convenience entry points; CI runs the same commands (.github/workflows/ci.yml).
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test analyze analyze-tests analyze-diff simsan-smoke tie-smoke own-smoke trace-smoke chaos-smoke copyengine-smoke sarif lint baseline all bench bench-full bench-smoke perf-baseline sharding-report ownership-report

all: analyze test

test:
	$(PYTHON) -m pytest -x -q

# Regenerate every paper exhibit (quick scale), then enforce the
# events/sec floors (engine, fig12, fig13) against
# benchmarks/bench-baseline.json.  REPRO_JOBS sets the sweep worker
# count; results/.simcache memoizes unchanged points
# (REPRO_SIMCACHE=off to disable).
bench:
	$(PYTHON) -m pytest benchmarks -x -q -p no:cacheprovider
	$(PYTHON) -m repro.perf gate

# Paper-sized parameters (slow).
bench-full:
	REPRO_SCALE=full $(PYTHON) -m pytest benchmarks -x -q -p no:cacheprovider

# The two representative exhibits CI tracks, plus the events/sec gate
# against benchmarks/bench-baseline.json.
bench-smoke:
	REPRO_JOBS=2 $(PYTHON) -m pytest benchmarks/test_fig12_seq_access.py benchmarks/test_fig21_bpq_sweep.py -x -q -p no:cacheprovider
	$(PYTHON) -m repro.perf gate

# Re-record the machine-normalized perf baseline (run on an idle box).
perf-baseline:
	$(PYTHON) -m repro.perf baseline

analyze:
	$(PYTHON) -m repro.analysis src/repro

# Fork-safety / cache-soundness / stale-noqa families only; the planted
# sanitizer and race-order fixtures are excluded because they violate
# the rules on purpose.
analyze-tests:
	$(PYTHON) -m repro.analysis tests benchmarks --select MC2401,MC2402,MC2403,MC2404,MC2501,MC2502,MC2503,MC2901 --exclude tests/unit/simsan_plants.py --exclude tests/unit/raceorder_plants.py --exclude tests/unit/ownership_plants.py

# Exit non-zero only on findings not in analysis-baseline.json.
analyze-diff:
	$(PYTHON) -m repro.analysis src/repro --diff

# One real sweep under the runtime sanitizer (docs/ANALYSIS.md).
simsan-smoke:
	REPRO_SIMSAN=1 REPRO_JOBS=2 REPRO_SIMCACHE=off $(PYTHON) -m pytest benchmarks/test_fig12_seq_access.py -x -q -p no:cacheprovider

# One real sweep under the tie-order perturbation sanitizer: every
# point runs twice (fifo vs lifo equal-cycle dispatch) and the full
# stat trees must match bit for bit (docs/ANALYSIS.md).
tie-smoke:
	REPRO_TIE_ORDER=paired REPRO_JOBS=2 REPRO_SIMCACHE=off $(PYTHON) -m pytest benchmarks/test_fig21_bpq_sweep.py -x -q -p no:cacheprovider

# Shard-locality report over the whole tree: console summary plus the
# sharding-report.json CI artifact (docs/ANALYSIS.md).
sharding-report:
	$(PYTHON) -m repro.analysis src/repro --sharding-report
	$(PYTHON) -m repro.analysis src/repro --sharding-report --format json --output sharding-report.json

# Partition proof: per-shard inventories + the rendezvous edge list;
# exits non-zero unless 0 unknown classes and 0 problems
# (docs/SHARDING.md).  Also checks the planted violations stay caught.
ownership-report:
	$(PYTHON) -m repro.analysis src/repro --ownership-report
	$(PYTHON) -m repro.analysis src/repro --ownership-report --format json --output ownership-report.json
	! $(PYTHON) -m repro.analysis tests/unit/ownership_plants.py --select MC2701,MC2702,MC2703,MC2704,MC2705

# The ownership audit over the plant suite and a real system run
# (docs/ANALYSIS.md: REPRO_SIMSAN=own).
own-smoke:
	REPRO_SIMSAN=own $(PYTHON) -m pytest tests/unit/test_ownership.py -x -q -p no:cacheprovider

# Two-backend slice of the Fig. 23 crossover family (mclazy vs
# rowclone at 4KB/64KB): verifies functional equivalence end to end
# and that the lazy-vs-in-DRAM winner flips with size
# (docs/COPYENGINE.md).
copyengine-smoke:
	$(PYTHON) -m pytest benchmarks/test_fig23_backend_crossover.py -k smoke -x -q -p no:cacheprovider

# One traced micro workload end to end: export, schema-validate, and
# summarize a Chrome trace (docs/OBSERVABILITY.md).
trace-smoke:
	$(PYTHON) -m repro.obs run --workload seq --buffer-kb 64 \
		--out results/traces/trace-smoke.trace.json \
		--timeline-csv results/traces/trace-smoke.timeline.csv
	$(PYTHON) -m repro.obs validate results/traces/trace-smoke.trace.json

# Chaos drill: kill workers / sleep past deadlines / SIGKILL the
# sweeping process, then assert checkpoint-resume merges bit-identical
# and poison points land in the failure report (docs/RESILIENCE.md).
chaos-smoke:
	REPRO_JOBS=4 $(PYTHON) -m pytest tests/integration/test_chaos.py -x -q -p no:cacheprovider
	$(PYTHON) -m repro.analysis src/repro/resilience

sarif:
	$(PYTHON) -m repro.analysis src/repro --format sarif --output mc2-analyze.sarif || true
	@echo "wrote mc2-analyze.sarif"

# Requires the lint extra: pip install -e .[lint]
lint: analyze
	ruff check src tests
	mypy

# Re-record grandfathered findings (policy: keep this empty; add a
# justification string to any entry you must keep).
baseline:
	$(PYTHON) -m repro.analysis src/repro --write-baseline
