# Convenience entry points; CI runs the same commands (.github/workflows/ci.yml).
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test analyze sarif lint baseline all

all: analyze test

test:
	$(PYTHON) -m pytest -x -q

analyze:
	$(PYTHON) -m repro.analysis src/repro

sarif:
	$(PYTHON) -m repro.analysis src/repro --format sarif --output mc2-analyze.sarif || true
	@echo "wrote mc2-analyze.sarif"

# Requires the lint extra: pip install -e .[lint]
lint: analyze
	ruff check src tests
	mypy

# Re-record grandfathered findings (policy: keep this empty; add a
# justification string to any entry you must keep).
baseline:
	$(PYTHON) -m repro.analysis src/repro --write-baseline
