"""Figure 19: Linux pipe transfer throughput.

Paper: syscall overhead dominates small transfers; for larger transfers
(MC)² roughly doubles throughput by eliding both kernel-buffer copies.
"""

from conftest import emit, run_once, scale


def test_fig19_pipe(benchmark):
    from repro.analysis.figures import figure19

    transfers = 20 if scale() == "full" else 8
    rows = run_once(benchmark, figure19, transfers)
    emit("figure19", rows,
         "Figure 19: Pipe transfer throughput (bytes/kcycle)")

    by = {(r["variant"], r["size"]): r["bytes_per_kcycle"] for r in rows}
    # Large transfers: (MC)^2 roughly doubles throughput.
    assert by[("mcsquare", "16KB")] > 1.5 * by[("native", "16KB")]
    # Small transfers: syscall-dominated, difference is small.
    ratio_small = by[("mcsquare", "1KB")] / by[("native", "1KB")]
    assert 0.7 < ratio_small < 1.6
    # Native throughput saturates with size.
    assert by[("native", "16KB")] > by[("native", "1KB")]
