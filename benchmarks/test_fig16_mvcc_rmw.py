"""Figure 16: MVCC read-modify-write throughput vs fraction updated.

Paper: for updates touching <25% of the 8KB tuple, (MC)² delivers up to
78% higher throughput; at 100% with one thread the baseline catches up
(the RMW read penalty outweighs the copy saving); with 8 threads the
system is bandwidth-bound and (MC)² wins everywhere below 100%.
"""

from conftest import emit, run_once, scale


def _sweep(threads, txns):
    from repro.analysis.figures import figure16
    return figure16(threads=threads, txns=txns)


def test_fig16a_mvcc_rmw_1thread(benchmark):
    txns = 60 if scale() == "full" else 24
    rows = run_once(benchmark, _sweep, 1, txns)
    emit("figure16a", rows, "Figure 16a: MVCC RMW throughput, 1 thread")
    by = {(r["variant"], r["fraction"]): r["kops_per_sec"] for r in rows}
    small = by[("mcsquare", 0.0625)] / by[("memcpy", 0.0625)]
    full = by[("mcsquare", 1.0)] / by[("memcpy", 1.0)]
    assert small > 1.15
    assert small > full              # benefit shrinks as updates grow


def test_fig16b_mvcc_rmw_8threads(benchmark):
    txns = 30 if scale() == "full" else 10
    rows = run_once(benchmark, _sweep, 8, txns)
    emit("figure16b", rows, "Figure 16b: MVCC RMW throughput, 8 threads")
    by = {(r["variant"], r["fraction"]): r["kops_per_sec"] for r in rows}
    for frac in (0.0625, 0.125, 0.25, 0.5):
        assert by[("mcsquare", frac)] > by[("memcpy", frac)]
