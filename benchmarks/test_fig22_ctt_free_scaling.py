"""Figure 22: MVCC speedup vs threads x parallel CTT frees.

Paper: at low thread counts the CTT never fills, so freeing parallelism
is irrelevant; at high thread counts single-entry freeing stalls and
parallel freeing restores the speedup.
"""

from conftest import emit, run_once, scale


def test_fig22_ctt_free_scaling(benchmark):
    from repro.analysis.figures import figure22

    txns = 40 if scale() == "full" else 15
    rows = run_once(benchmark, figure22, txns)
    emit("figure22", rows,
         "Figure 22: MVCC throughput vs parallel CTT frees")

    by = {(r["threads"], r["parallel_frees"]):
          r["normalized_throughput"] for r in rows}
    # One thread: the table never fills, so freeing parallelism is moot.
    one_thread = [by[(1, f)] for f in (1, 2, 4, 8)]
    assert max(one_thread) - min(one_thread) < 0.35
    # Eight threads: parallel freeing beats single-entry freeing.
    assert max(by[(8, f)] for f in (2, 4, 8)) > by[(8, 1)] * 1.05
