"""Ablation (§V-A1): the proposed wider writeback operation.

The paper calls the per-line CLWB train a "conservative estimate" and
proposes a page-granularity writeback to remove it.  This ablation
quantifies that: memcpy_lazy latency with the CLWB train vs with one
CLWB_RANGE per page.
"""

from conftest import emit, run_once

from repro.common.units import KB, MB, pretty_size


def _sweep():
    from repro import System, SystemConfig
    from repro.sw.memcpy import memcpy_lazy_ops
    from repro.workloads.common import LatencyRecorder, fill_pattern

    rows = []
    for size in (1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB):
        cycles = {}
        for wide in (False, True):
            system = System(SystemConfig())
            src = system.alloc(size, align=4096)
            dst = system.alloc(size, align=4096)
            fill_pattern(system, src, size)
            rec = LatencyRecorder()

            def prog():
                yield rec.begin()
                yield from memcpy_lazy_ops(system, dst, src, size,
                                           wide_writeback=wide)
                yield rec.end()

            system.run_program(prog())
            cycles[wide] = rec.samples[0]
        rows.append({"size": pretty_size(size),
                     "clwb_train_ns": cycles[False] / 4.0,
                     "clwb_range_ns": cycles[True] / 4.0,
                     "speedup": cycles[False] / cycles[True]})
    return rows


def test_ablation_wide_writeback(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("ablation_wide_writeback", rows,
         "Ablation: per-line CLWB train vs page-granularity writeback")
    by = {r["size"]: r["speedup"] for r in rows}
    # The gain grows with copy size (writeback dominates above 1KB).
    assert by["1MB"] > by["4KB"]
    assert by["1MB"] > 2.0
