"""Figure 10: copy latency for memcpy, zIO, touched memcpy, and (MC)².

Paper shape: (MC)² is 55% to 11x faster than memcpy for copies >= 1KB;
zIO loses below 64KB (unmap/shootdown overhead) and wins above (23x at
4MB); touched memcpy wins for small cached copies and converges with the
uncached baseline once the buffer exceeds the caches.
"""

from conftest import emit, run_once, scale

from repro.common.units import KB, MB


def test_fig10_copy_latency(benchmark):
    from repro.analysis.figures import figure10

    sizes = [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB]
    if scale() == "full":
        sizes.append(4 * MB)
    rows = run_once(benchmark, figure10, sizes)
    emit("figure10", rows, "Figure 10: Copy latency (ns)")

    lat = {(r["variant"], r["size"]): r["latency_ns"] for r in rows}
    # (MC)^2 wins from 1KB up, by a growing factor.
    for size in ("1KB", "16KB", "256KB", "1MB"):
        assert lat[("mcsquare", size)] < lat[("memcpy", size)]
    assert lat[("memcpy", "1MB")] / lat[("mcsquare", "1MB")] > 5
    # zIO: slower than memcpy at 16KB, faster at 256KB+.
    assert lat[("zio", "16KB")] > lat[("memcpy", "16KB")]
    assert lat[("zio", "256KB")] < lat[("memcpy", "256KB")]
    # Touched memcpy beats (MC)^2 for small copies.
    assert lat[("touched_memcpy", "256B")] < lat[("mcsquare", "256B")]
