"""Figure 14: Protobuf (Fleetbench) runtime.

Paper: (MC)² gives a 43% speedup; zIO cannot elide anything because all
copies are sub-page, so it matches the baseline.
"""

from conftest import emit, run_once, scale


def test_fig14_protobuf(benchmark):
    from repro.analysis.figures import figure14

    num_ops = 120 if scale() == "full" else 40
    rows = run_once(benchmark, figure14, num_ops)
    emit("figure14", rows, "Figure 14: Protobuf runtime")

    by = {r["variant"]: r for r in rows}
    assert by["mcsquare"]["speedup_vs_baseline"] > 1.03
    assert abs(by["zio"]["speedup_vs_baseline"] - 1.0) < 0.15
