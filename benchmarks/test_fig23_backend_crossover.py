"""Figure 23 (extension): lazy-MC vs in-DRAM copy crossover.

Not a paper exhibit — this figure family compares every registered copy
backend (repro.copyengine) on a copy-then-read microbenchmark across
copy size, source/destination DRAM locality and channel-bandwidth
pressure.  Expected shape: (MC)² wins small copies (O(1) CTT insertion
vs per-line PSM row copies), RowClone/Mirroring win large FPM-eligible
copies, and every in-DRAM backend degrades to the eager software copy
when the buffers are channel-incongruent.
"""

from conftest import emit, run_once, scale


def test_fig23_smoke(benchmark):
    """Two-backend crossover at test scale (the copyengine-smoke gate)."""
    from repro.analysis.figures import figure23
    from repro.common.units import KB

    rows = run_once(benchmark, figure23,
                    sizes=(4 * KB, 64 * KB),
                    localities=("subarray",),
                    backends=("mclazy", "rowclone"))
    emit("figure23_smoke", rows,
         "Figure 23 (smoke): mclazy vs rowclone, subarray locality")

    assert all(r["verified"] for r in rows)
    copy = {(r["backend"], r["size_bytes"]): r["copy_cycles"] for r in rows}
    # The crossover in miniature: lazy wins the small copy, the in-DRAM
    # row copy wins the large FPM-eligible one.
    assert copy[("mclazy", 4 * KB)] < copy[("rowclone", 4 * KB)]
    assert copy[("rowclone", 64 * KB)] < copy[("mclazy", 64 * KB)]


def test_fig23_backend_crossover(benchmark):
    """All five backends over the size × locality grid."""
    from repro.analysis.figures import figure23
    from repro.workloads.micro.crossover import find_crossovers

    if scale() == "full":
        # Paper-sized: up to 1MB copies on the Table I machine.
        from repro import SystemConfig
        from repro.common.units import KB, MB
        rows = run_once(benchmark, figure23,
                        sizes=(4 * KB, 64 * KB, 1 * MB),
                        config=SystemConfig())
    else:
        rows = run_once(benchmark, figure23)
    emit("figure23", rows,
         "Figure 23: copy-backend crossover (copy + 25% dest read)")

    # Every backend must complete end-to-end with correct final bytes.
    assert all(r["verified"] for r in rows)
    backends = {r["backend"] for r in rows}
    assert backends == {"eager", "mclazy", "zio", "rowclone", "mirror"}

    raw = [dict(r, size=r["size_bytes"]) for r in rows]
    copy = {(r["backend"], r["size"], r["locality"]): r["copy_cycles"]
            for r in raw}
    sizes = sorted({r["size"] for r in raw})
    big = sizes[-1]

    # >= 1 measured crossover between lazy-MC and an in-DRAM backend.
    flips = find_crossovers(raw)
    assert any(f["rival"] in ("rowclone", "mirror")
               and f["locality"] == "subarray" for f in flips), flips

    # Subarray-local large copies: one FPM row copy per row beats both
    # software mechanisms outright.
    assert copy[("rowclone", big, "subarray")] < copy[("eager", big,
                                                       "subarray")]
    # Hash-scattered banks force PSM: strictly slower than FPM rows.
    assert copy[("rowclone", big, "channel")] > copy[("rowclone", big,
                                                      "subarray")]
    # Mirroring never needs the read phase, so it beats RowClone's PSM
    # path when the layout denies FPM.
    assert copy[("mirror", big, "channel")] < copy[("rowclone", big,
                                                    "channel")]
    # Channel-incongruent buffers: the in-DRAM backends fall back to the
    # identical eager software loop, cycle for cycle.
    assert copy[("rowclone", big, "cross")] == copy[("eager", big, "cross")]
    assert copy[("mirror", big, "cross")] == copy[("eager", big, "cross")]


def test_fig23_pressure(benchmark):
    """Bandwidth pressure: in-DRAM copies dodge the external bus."""
    from repro.analysis.figures import figure23
    from repro.common.units import KB

    rows = run_once(benchmark, figure23,
                    sizes=(64 * KB,),
                    localities=("channel",),
                    pressures=(False, True),
                    backends=("eager", "mclazy", "mirror"))
    emit("figure23_pressure", rows,
         "Figure 23 (pressure): copy latency vs channel contention")

    assert all(r["verified"] for r in rows)
    copy = {(r["backend"], r["pressure"]): r["copy_cycles"] for r in rows}
    # The eager loop shares the DRAM bus with the antagonist core.
    assert copy[("eager", True)] > copy[("eager", False)]
    # Mirror row copies happen inside the banks: immune to bus pressure.
    assert copy[("mirror", True)] <= copy[("mirror", False)]
    assert copy[("mirror", True)] < copy[("eager", True)]
