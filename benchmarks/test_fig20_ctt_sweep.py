"""Figure 20: Protobuf runtime and CTT-full stalls across CTT configs.

Paper: best-to-worst spread is only ~5%; small tables (1,024 entries) or
high copy thresholds (90%) stall the CPU on a full CTT; 2,048 entries at
a 50% threshold avoids stalls.
"""

from conftest import emit, run_once, scale


def test_fig20_ctt_sweep(benchmark):
    from repro.analysis.figures import figure20

    num_ops = 60 if scale() == "full" else 25
    rows = run_once(benchmark, figure20, num_ops)
    emit("figure20", rows,
         "Figure 20: Protobuf vs CTT entries x copy threshold")

    stalls = {(r["ctt_entries"], r["threshold"]):
              r["ctt_full_stall_cycles"] for r in rows}
    times = {(r["ctt_entries"], r["threshold"]): r["runtime_ms"]
             for r in rows}
    # A small table with a high (90%) threshold stalls the CPU; the 50%
    # threshold keeps the same table from filling (paper Fig. 20b).
    assert stalls[(16, 0.9)] > stalls[(16, 0.5)]
    # A comfortably-sized table never stalls at the paper's threshold.
    assert stalls[(64, 0.5)] == 0
    # Runtime spread across configurations stays modest (paper: ~5%;
    # our scaled tables are stressed harder, so allow more).
    spread = max(times.values()) / min(times.values())
    assert spread < 2.5
