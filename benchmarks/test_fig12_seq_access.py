"""Figure 12: sequential destination-buffer access after a copy.

Paper: (MC)² beats memcpy at every access fraction (worst case 0.80x)
thanks to the prefetcher hiding bounce latency; without prefetching it
degrades to 1.21x; aligned buffers do better still; zIO wins only when
little is accessed and loses past ~50%.
"""

from conftest import emit, run_once, scale


def test_fig12_seq_access(benchmark):
    from repro.analysis.figures import figure12

    if scale() == "full":
        # Paper-sized: 4MB buffer on the Table I machine (2MB LLC).
        from repro import SystemConfig
        from repro.common.units import MB
        rows = run_once(benchmark, figure12, 4 * MB, SystemConfig())
    else:
        rows = run_once(benchmark, figure12)
    emit("figure12", rows,
         "Figure 12: Sequential dest access, runtime normalized to memcpy")

    norm = {(r["variant"], r["fraction"]): r["normalized_runtime"]
            for r in rows}
    for frac in (0.25, 0.5, 0.75, 1.0):
        assert norm[("mcsquare", frac)] < 1.1
    assert norm[("mcsquare_noprefetch", 1.0)] > norm[("mcsquare", 1.0)]
    assert norm[("mcsquare_aligned", 1.0)] <= norm[("mcsquare", 1.0)]
    assert norm[("zio", 0.0)] < 1.0
    assert norm[("zio", 1.0)] > 1.0
