"""Sensitivity: copy mechanisms vs memory latency (paper §I motivation).

The introduction argues lazy copies grow more valuable as memory
latencies worsen (capacity tiers, CXL-attached DRAM).  This study runs
the Fig. 10-style copy-latency comparison across DDR speed grades,
including a CXL profile with a ~70 ns link adder, and checks that
(MC)²'s advantage widens with latency.
"""

from conftest import emit, run_once

from repro.common.units import KB


def _sweep():
    from repro.common import params
    from repro.dram.timing import CXL_DDR4, DDR4_2400, DDR4_3200, apply_timing
    from repro.workloads.micro.latency import measure_copy_latency

    saved = (params.DRAM_ROW_HIT_CYCLES, params.DRAM_ROW_MISS_CYCLES,
             params.DRAM_ROW_CONFLICT_CYCLES, params.DRAM_BURST_CYCLES)
    rows = []
    try:
        for grade in (DDR4_3200, DDR4_2400, CXL_DDR4):
            apply_timing(grade)
            eager = measure_copy_latency("memcpy", 64 * KB)["ns"]
            lazy = measure_copy_latency("mcsquare", 64 * KB)["ns"]
            rows.append({"memory": grade.name,
                         "memcpy_ns": eager, "mcsquare_ns": lazy,
                         "advantage": eager / lazy})
    finally:
        (params.DRAM_ROW_HIT_CYCLES, params.DRAM_ROW_MISS_CYCLES,
         params.DRAM_ROW_CONFLICT_CYCLES, params.DRAM_BURST_CYCLES) = saved
    return rows


def test_sensitivity_memory_latency(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("sensitivity_cxl", rows,
         "Sensitivity: 64KB copy latency across memory grades")
    by = {r["memory"]: r["advantage"] for r in rows}
    # Slower memory -> bigger lazy-copy advantage (the paper's premise).
    assert by["CXL-DDR4-2400"] > by["DDR4-2400"] > 1.0
    assert by["DDR4-2400"] >= by["DDR4-3200"] * 0.9
