"""Figure 15: MongoDB average insert latency (YCSB load phase).

Paper: (MC)² speeds up inserts by 15.5%; zIO slows them down by 9.7%
because the copied data is accessed (B-tree, journal) and faults.
"""

from conftest import emit, run_once, scale

from repro.common.units import KB


def test_fig15_mongodb(benchmark):
    from repro.analysis.figures import figure15

    if scale() == "full":
        rows = run_once(benchmark, figure15, 10, 100 * KB)
    else:
        rows = run_once(benchmark, figure15, 4, 50 * KB)
    emit("figure15", rows, "Figure 15: MongoDB average insertion latency")

    by = {r["variant"]: r["vs_baseline"] for r in rows}
    assert by["mcsquare"] < 1.0      # faster than baseline
    assert by["zio"] > 1.0           # slower than baseline
