"""Ablation (§VI): pairing (MC)² with an eager background copy engine.

The related-work section proposes letting a copy engine start moving
data immediately on MCLAZY while accesses to not-yet-copied data follow
the bounce path.  Accesses that arrive after the engine has resolved a
line are served from memory at full speed.
"""

from conftest import emit, run_once

from repro.common.units import KB


def _sweep():
    from repro import SystemConfig
    from repro.workloads.micro.access import run_random_access

    config = SystemConfig(l1_size=32 * KB, l2_size=512 * KB)
    rows = []
    for fraction in (0.25, 0.5, 1.0):
        base = run_random_access("memcpy", fraction, 512 * KB,
                                 config=config)["cycles"]
        plain = run_random_access("mcsquare", fraction, 512 * KB,
                                  config=config)["cycles"]
        engine = run_random_access(
            "mcsquare", fraction, 512 * KB,
            config=config.with_overrides(eager_async_copies=True))["cycles"]
        rows.append({"fraction": fraction,
                     "mcsquare": plain / base,
                     "mcsquare_copy_engine": engine / base})
    return rows


def test_ablation_async_copy_engine(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("ablation_async_engine", rows,
         "Ablation: (MC)2 with an eager async copy engine "
         "(runtime vs memcpy)")
    # The engine helps random access (fewer bounces on the critical path).
    helped = sum(1 for r in rows
                 if r["mcsquare_copy_engine"] <= r["mcsquare"] * 1.05)
    assert helped >= 2
