"""Figure 2: copy overhead across four use cases.

Paper: Protobuf / MongoDB inserts / Cicada writes show substantial copy
overhead (up to ~68% of cycles); huge-page COW faults are dominated by
the copy (up to 99%).
"""

from conftest import emit, run_once


def test_fig02_copy_overhead(benchmark):
    from repro.analysis.figures import figure2

    rows = run_once(benchmark, figure2)
    emit("figure2", rows, "Figure 2: Copy overhead per use case (%)")
    by = {r["workload"]: r["copy_overhead_pct"] for r in rows}
    assert by["Protobuf"] > 25
    # The paper's Fig. 2 Mongo bar (~35%) comes from perf on real
    # hardware; its own gem5 insert latencies (Fig. 15: ~15 ms with ~2 ms
    # of copies) imply a much smaller simulated copy share, which is what
    # this workload reproduces.
    assert by["MongoDB inserts"] > 4
    assert by["Cicada writes"] > 15
    assert by["Fork + COW fault"] > 90  # paper: up to 99% for huge pages
