"""Ablation (§V-B): the interposer's 1KB redirection threshold.

The paper redirects only copies >= 1KB to memcpy_lazy.  This ablation
shows why: making *every* copy lazy pays the wrapper fixed cost on tiny
copies and loses; redirecting nothing obviously gains nothing.
"""

from conftest import emit, run_once


def _sweep():
    from repro.workloads.protobuf import ProtobufWorkload, run_protobuf

    base = run_protobuf("memcpy", num_ops=40)["cycles"]
    rows = [{"policy": "baseline memcpy", "runtime_vs_baseline": 1.0}]
    for min_lazy, label in ((0, "all copies lazy"),
                            (1024, "lazy >= 1KB (paper)"),
                            (4096, "lazy >= 4KB")):
        r = ProtobufWorkload("mcsquare", num_ops=40,
                             min_lazy=min_lazy).run()
        rows.append({"policy": label,
                     "runtime_vs_baseline": r["cycles"] / base})
    return rows


def test_ablation_interposer_threshold(benchmark):
    rows = run_once(benchmark, _sweep)
    emit("ablation_interposer", rows,
         "Ablation: interposer redirection threshold on Protobuf")
    by = {r["policy"]: r["runtime_vs_baseline"] for r in rows}
    # The paper's 1KB threshold beats both extremes.
    assert by["lazy >= 1KB (paper)"] < by["all copies lazy"]
    assert by["lazy >= 1KB (paper)"] < 1.0
