"""Figure 13: random (pointer-chase) destination access after a copy.

Paper: zIO suffers fault storms at low fractions (2.1x); without the
bounce-writeback optimization (MC)² degrades toward 1.6x because every
access re-bounces; aligned buffers bounce once and stay near memcpy.
"""

from conftest import emit, run_once, scale


def test_fig13_rand_access(benchmark):
    from repro.analysis.figures import figure13

    if scale() == "full":
        # Paper-sized: 4MB buffer on the Table I machine (2MB LLC).
        from repro import SystemConfig
        from repro.common.units import MB
        rows = run_once(benchmark, figure13, 4 * MB, SystemConfig())
    else:
        rows = run_once(benchmark, figure13)
    emit("figure13", rows,
         "Figure 13: Random dest access, runtime normalized to memcpy")

    norm = {(r["variant"], r["fraction"]): r["normalized_runtime"]
            for r in rows}
    # Writeback optimization pays off once lines are revisited.
    assert norm[("mcsquare", 1.0)] < norm[("mcsquare_nowriteback", 1.0)]
    # Aligned buffers bounce once: better than misaligned at every point.
    for frac in (0.125, 0.25, 0.5, 1.0):
        assert norm[("mcsquare_aligned", frac)] <= norm[("mcsquare", frac)]
    # zIO's fault overhead is worst when few pages are touched.
    assert norm[("zio", 0.125)] > norm[("zio", 1.0)]
