"""Figure 3: source of Protobuf memcpy overhead.

Paper: >25% of accesses miss the cache; >90% of cycles have at least one
outstanding memory access; >60% of memcpy cycles are full stalls.
"""

from conftest import emit, run_once


def test_fig03_overhead_source(benchmark):
    from repro.analysis.figures import figure3

    rows = run_once(benchmark, figure3)
    emit("figure3", rows, "Figure 3: Source of Protobuf memcpy overhead")
    by = {r["metric"]: r["pct"] for r in rows}
    assert by["Cache miss"] > 10
    assert by["Mem miss cycles"] > 50
    assert by["Mem miss cycles"] >= by["Mem miss stall cycles"]
