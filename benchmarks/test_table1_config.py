"""Table I: the simulated configuration."""

from conftest import emit, run_once


def test_table1_config(benchmark):
    from repro.analysis.figures import table1

    rows = run_once(benchmark, table1)
    emit("table1", rows, "Table I: Simulated configuration")
    params = {r["parameter"]: r["value"] for r in rows}
    assert params["CPUs"] == 8
    assert params["DRAM channels"] == 2
    assert params["CTT entries"] == 2048
