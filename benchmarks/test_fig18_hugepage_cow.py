"""Figure 18: write latencies under huge-page copy-on-write.

Paper: the native kernel spikes up to 455x on COW faults (2MB copies);
the (MC)²-modified kernel (MCLAZY in copy_user_huge_page) keeps the
worst case 250x lower.
"""

from conftest import emit, run_once, scale

from repro.common.units import MB


def test_fig18_hugepage_cow(benchmark):
    from repro.analysis.figures import figure18

    region = 64 * MB if scale() == "full" else 16 * MB
    updates = 100 if scale() == "full" else 40
    rows = run_once(benchmark, figure18, region, updates)
    emit("figure18", rows,
         "Figure 18: Huge-page COW write latencies (cycles)")

    native = [r["cycles"] for r in rows if r["variant"] == "native"]
    mc2 = [r["cycles"] for r in rows if r["variant"] == "mcsquare"]
    assert max(native) > 50 * max(mc2)   # paper: 250x lower worst case
    assert max(native) / min(native) > 100  # native spikes are huge
