"""Figure 21: source-overwrite runtime vs BPQ entries.

Paper: 1-entry BPQs serialize source writes; 2 entries give ~35% speedup
over 1; returns diminish, with 16 entries only ~2% better than 8.
"""

from conftest import emit, run_once


def test_fig21_bpq_sweep(benchmark):
    from repro.analysis.figures import figure21

    rows = run_once(benchmark, figure21)
    emit("figure21", rows, "Figure 21: Runtime vs BPQ entries")

    import collections
    by_buffer = collections.defaultdict(dict)
    for r in rows:
        by_buffer[r["buffer"]][r["bpq_entries"]] = r["normalized_runtime"]
    for buffer, series in by_buffer.items():
        assert series[2] < series[1], f"2 entries should beat 1 ({buffer})"
        assert series[8] <= series[2]
        gain_1_to_2 = series[1] - series[2]
        gain_8_to_16 = series[8] - series[16]
        assert gain_1_to_2 > gain_8_to_16  # diminishing returns
