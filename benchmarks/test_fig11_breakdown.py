"""Figure 11: overhead breakdown of memcpy_lazy.

Paper: below ~1KB the MCLAZY packet dominates (CLWBs proceed in
parallel); above, CLWB writebacks serialize and dominate.
"""

from conftest import emit, run_once, scale

from repro.common.units import KB, MB


def test_fig11_breakdown(benchmark):
    from repro.analysis.figures import figure11

    sizes = [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB]
    if scale() == "full":
        sizes.append(4 * MB)
    rows = run_once(benchmark, figure11, sizes)
    emit("figure11", rows,
         "Figure 11: memcpy_lazy overhead breakdown (%)")

    by = {r["size"]: r for r in rows}
    assert by["256B"]["packet_pct"] > by["256B"]["writeback_pct"]
    assert by["64KB"]["writeback_pct"] > by["64KB"]["packet_pct"]
    assert by["1MB"]["writeback_pct"] > 75
