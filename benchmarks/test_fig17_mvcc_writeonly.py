"""Figure 17: MVCC write-only throughput (incl. non-temporal stores).

Paper: plain write-only mimics RMW because RFOs still read memory;
replacing the stores with non-temporal stores avoids the RFO and lets
(MC)² win at every write fraction with one thread.
"""

from conftest import emit, run_once, scale


def _sweep(threads, txns):
    from repro.analysis.figures import figure17
    return figure17(threads=threads, txns=txns)


def test_fig17a_mvcc_writeonly_1thread(benchmark):
    txns = 60 if scale() == "full" else 24
    rows = run_once(benchmark, _sweep, 1, txns)
    emit("figure17a", rows, "Figure 17a: MVCC write-only, 1 thread")
    by = {(r["variant"], r["fraction"]): r["kops_per_sec"] for r in rows}
    assert by[("mcsquare", 0.0625)] > by[("memcpy", 0.0625)]
    # Non-temporal stores beat the RFO path at high write fractions.
    assert by[("mcsquare_nontemporal", 1.0)] > by[("mcsquare", 1.0)]


def test_fig17b_mvcc_writeonly_8threads(benchmark):
    txns = 30 if scale() == "full" else 10
    rows = run_once(benchmark, _sweep, 8, txns)
    emit("figure17b", rows, "Figure 17b: MVCC write-only, 8 threads")
    by = {(r["variant"], r["fraction"]): r["kops_per_sec"] for r in rows}
    for frac in (0.0625, 0.25):
        assert by[("mcsquare", frac)] > by[("memcpy", frac)]
