"""Shared benchmark utilities.

Each benchmark regenerates one paper exhibit (table or figure), prints
the same rows/series the paper reports, and writes them to
``results/<exhibit>.txt``.  Simulations are deterministic, so every
benchmark runs pedantically with one round.

Set ``REPRO_SCALE=full`` for paper-sized parameters (slower); the default
``quick`` scale preserves every trend at a fraction of the wall time.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def scale() -> str:
    """'quick' (default) or 'full'."""
    return os.environ.get("REPRO_SCALE", "quick")


def emit(name: str, rows, title: str) -> None:
    """Print and persist one exhibit's rows."""
    from repro.analysis.figures import format_rows

    text = f"== {title} ==\n{format_rows(rows)}\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
