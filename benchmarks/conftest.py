"""Shared benchmark utilities.

Each benchmark regenerates one paper exhibit (table or figure), prints
the same rows/series the paper reports, and writes them to
``results/<exhibit>.txt``.  Simulations are deterministic, so every
benchmark runs pedantically with one round.

Environment knobs (see also README "Performance"):

``REPRO_SCALE``
    ``quick`` (default) or ``full`` for paper-sized parameters (slower).
``REPRO_JOBS``
    Worker processes for multi-point sweeps (default 1 = serial).
    Sweeps fan out through :func:`repro.perf.runner.sim_map` and merge
    results in input order, so any job count is bit-identical to serial.
``REPRO_SIMCACHE``
    Sweep results are memoized under ``results/.simcache/``, keyed by
    (function, parameters, scale, source hash) — a warm re-run of an
    unchanged exhibit costs file reads only.  Set ``REPRO_SIMCACHE=off``
    to disable; ``python -m repro.perf cache clear`` empties the store.

Each exhibit's wall-clock time is appended to ``results/BENCH_sim.json``
(the ``exhibits`` section) for before/after comparisons.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def scale() -> str:
    """'quick' (default) or 'full'."""
    return os.environ.get("REPRO_SCALE", "quick")


def emit(name: str, rows, title: str) -> None:
    """Print and persist one exhibit's rows."""
    from repro.analysis.figures import format_rows

    text = f"== {title} ==\n{format_rows(rows)}\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation once under pytest-benchmark.

    Also records the exhibit's wall time into ``BENCH_sim.json`` so CI
    can track per-exhibit cost across commits.
    """
    from repro.perf.hostclock import host_seconds
    from repro.perf.profile import record_exhibit

    start = host_seconds()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    record_exhibit(fn.__name__, host_seconds() - start)
    return result
