"""Figure 4: distribution of Protobuf memcpy sizes (CDF).

Paper: the majority (~56%) of copies are exactly 1KB; an effective
technique must handle sub-page copies.
"""

from conftest import emit, run_once


def test_fig04_size_cdf(benchmark):
    from repro.analysis.figures import figure4

    rows = run_once(benchmark, figure4)
    emit("figure4", rows, "Figure 4: Protobuf memcpy size CDF")
    by = {r["size"]: r["cumulative_pct"] for r in rows}
    assert 90 < by["1KB"] <= 97       # jump at 1KB dominates
    assert by["4KB"] == 100.0         # everything is sub-page
    assert by["512B"] < 45
