#!/usr/bin/env python3
"""Serialization pipeline: the paper's Protobuf motivation (§II-B, Fig 14).

Runs a Fleetbench-style serialize/deserialize mix under three copy
mechanisms — native memcpy, zIO, and (MC)² — and prints the runtimes plus
where the baseline's cycles go (the Figure 3 analysis).

Run:  python examples/serialization_pipeline.py
"""

from repro.workloads.protobuf import run_protobuf, size_distribution


def main() -> None:
    print("copy-size distribution driving the workload (paper Fig. 4):")
    for size, cum in size_distribution(num_samples=5000):
        bar = "#" * int(cum * 40)
        print(f"  <= {size:5d}B  {cum:6.1%}  {bar}")
    print()

    results = {}
    for engine in ("memcpy", "zio", "mcsquare"):
        results[engine] = run_protobuf(engine, num_ops=30)
        r = results[engine]
        print(f"{engine:9s}: {r['cycles']:>9.0f} cycles "
              f"({r['ms']*1000:.1f} us)")

    base = results["memcpy"]
    print()
    print(f"(MC)^2 speedup: "
          f"{base['cycles']/results['mcsquare']['cycles']:.2f}x")
    print(f"zIO speedup:    {base['cycles']/results['zio']['cycles']:.2f}x "
          f"(all copies are sub-page, so zIO cannot elide any)")
    print()
    print("where the baseline's time goes (paper Fig. 3):")
    lookups = base["l1_hits"] + base["l1_misses"]
    print(f"  cache miss rate during the run: "
          f"{base['l1_misses']/lookups:.0%}")
    print(f"  cycles with an outstanding memory access: "
          f"{base['mem_miss_cycles']/base['cycles']:.0%}")
    print(f"  cycles fully stalled on memory: "
          f"{base['stall_cycles']/base['cycles']:.0%}")
    print(f"  cycles attributed to memcpy: {base['copy_fraction']:.0%} "
          f"(paper Fig. 2 reports 50-68% for such workloads)")


if __name__ == "__main__":
    main()
