#!/usr/bin/env python3
"""User↔kernel pipe transfers with lazy copies (§V-B, Fig. 19).

Each pipe transfer pays two syscalls and two kernel-buffer copies.  The
(MC)²-modified kernel replaces both copies in ``pipe_write`` /
``pipe_read`` with lazy copies, roughly doubling throughput for larger
transfers.

Run:  python examples/pipe_transfer.py
"""

from repro.common.units import KB, pretty_size
from repro.workloads.pipe import run_pipe


def main() -> None:
    sizes = (1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB)
    print(f"{'size':>6s} {'native B/kcyc':>14s} {'(MC)^2 B/kcyc':>14s} "
          f"{'gain':>7s}")
    for size in sizes:
        native = run_pipe("native", size, num_transfers=8)
        mc2 = run_pipe("mcsquare", size, num_transfers=8)
        gain = mc2["bytes_per_kcycle"] / native["bytes_per_kcycle"] - 1
        print(f"{pretty_size(size):>6s} "
              f"{native['bytes_per_kcycle']:>14.0f} "
              f"{mc2['bytes_per_kcycle']:>14.0f} {gain:>+7.0%}")
    print()
    print("Small transfers are syscall-dominated; once the copies carry")
    print("the cost, eliding both of them roughly doubles throughput.")


if __name__ == "__main__":
    main()
