#!/usr/bin/env python3
"""Redis-style IO buffer pipeline (the paper's §II-B motivation).

A SET command's value is copied into the keyspace and again into the
append-only-file buffer; AOF buffers are retired without the CPU ever
reading them.  With (MC)², those copies stay prospective and MCFREE
drops them entirely when the buffer is retired.

Run:  python examples/redis_pipeline.py
"""

from repro.workloads.redis import run_redis


def main() -> None:
    print(f"{'engine':>9s} {'cycles/cmd':>11s} {'MCFREE hints':>13s}")
    results = {}
    for engine in ("memcpy", "mcsquare"):
        r = run_redis(engine, num_commands=40)
        results[engine] = r
        print(f"{engine:>9s} {r['cycles_per_command']:>11.0f} "
              f"{str(r.get('mcfrees', '-')):>13s}")
    gain = (results["memcpy"]["cycles"] / results["mcsquare"]["cycles"] - 1)
    print(f"\n(MC)^2 speeds up the pipeline by {gain:+.0%}: AOF copies that "
          f"were never read are dropped by\nMCFREE before they ever "
          f"execute, and keyspace copies resolve lazily on GETs.")


if __name__ == "__main__":
    main()
