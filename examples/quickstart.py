#!/usr/bin/env python3
"""Quickstart: lazy memcpy on the Table I machine.

Builds the paper's simulated system, performs a lazy copy, shows that no
data moved, reads the destination (triggering bounces), and compares the
cost against an eager ``memcpy`` — the essence of Figure 10.

Any registered copy backend can stand in for the lazy side: pass
``--backend rowclone`` (or mirror / zio / eager / mclazy) to time that
mechanism through the same :mod:`repro.copyengine` dispatch the
workloads use.

Run:  python examples/quickstart.py [--backend mclazy]
"""

import argparse

from repro import System, SystemConfig
from repro.common.units import KB
from repro.copyengine import ALIASES, backend_names
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops
from repro.workloads.common import engine_needs_ctt, make_engine

SIZE = 16 * KB


def timed_copy(backend: str) -> int:
    """Cycles to complete one 16KB copy (plus fence) under ``backend``."""
    config = SystemConfig()                   # Table I machine
    if not engine_needs_ctt(backend):
        config = config.with_overrides(mcsquare_enabled=False)
    system = System(config)
    engine = make_engine(backend, system)
    src = system.alloc(SIZE, align=16 * KB)
    dst = system.alloc(SIZE, align=16 * KB)
    system.backing.fill(src, SIZE, 0xAB)

    def program():
        yield from engine.copy_ops(dst, src, SIZE)
        yield ops.mfence()

    cycles = system.run_program(program())
    system.drain()
    # Either way, the destination must hold the copied bytes.
    assert system.read_memory(dst, SIZE) == b"\xAB" * SIZE
    return cycles


def lazy_copy_then_read() -> None:
    """Show the mechanism: tracking, bouncing, resolution."""
    system = System(SystemConfig())
    src = system.alloc(SIZE, align=4096)
    dst = system.alloc(SIZE, align=4096)
    system.backing.fill(src, SIZE, 0x42)

    system.run_program(memcpy_lazy_ops(system, dst, src, SIZE))
    print(f"after memcpy_lazy: CTT tracks {system.ctt.tracked_bytes()} "
          f"bytes in {len(system.ctt)} entr{'y' if len(system.ctt)==1 else 'ies'}; "
          f"destination bytes in DRAM are still stale")

    def reader():
        for off in range(0, SIZE, 64):
            yield ops.load(dst + off, 8)
        yield ops.mfence()

    system.run_program(reader())
    system.drain()
    bounces = sum(int(mc.stats.counters["bounces"].value)
                  for mc in system.controllers)
    print(f"reading the destination bounced {bounces} cachelines to the "
          f"source and resolved them; CTT now holds {len(system.ctt)} "
          f"entries")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", default="mclazy",
        choices=sorted(set(backend_names()) | set(ALIASES)),
        help="copy backend to compare against the eager loop "
             "(default: mclazy)")
    args = parser.parse_args()

    eager = timed_copy("eager")
    other = timed_copy(args.backend)
    print(f"eager memcpy of 16KB:  {eager} cycles ({eager/4:.0f} ns)")
    print(f"{args.backend:8s} copy of 16KB: {other} cycles "
          f"({other/4:.0f} ns)  -> {eager/other:.1f}x faster when the "
          f"copy is not accessed")
    print()
    lazy_copy_then_read()


if __name__ == "__main__":
    main()
