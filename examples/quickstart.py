#!/usr/bin/env python3
"""Quickstart: lazy memcpy on the Table I machine.

Builds the paper's simulated system, performs a lazy copy, shows that no
data moved, reads the destination (triggering bounces), and compares the
cost against an eager ``memcpy`` — the essence of Figure 10.

Run:  python examples/quickstart.py
"""

from repro import System, SystemConfig
from repro.common.units import KB
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops, memcpy_ops

SIZE = 16 * KB


def timed_copy(lazy: bool) -> int:
    """Cycles to complete one 16KB copy (plus fence)."""
    system = System(SystemConfig())           # Table I, (MC)² enabled
    src = system.alloc(SIZE, align=4096)
    dst = system.alloc(SIZE, align=4096)
    system.backing.fill(src, SIZE, 0xAB)

    if lazy:
        cycles = system.run_program(memcpy_lazy_ops(system, dst, src, SIZE))
    else:
        cycles = system.run_program(memcpy_ops(system, dst, src, SIZE))

    # Either way, the destination must hold the copied bytes.
    assert system.read_memory(dst, SIZE) == b"\xAB" * SIZE
    return cycles


def lazy_copy_then_read() -> None:
    """Show the mechanism: tracking, bouncing, resolution."""
    system = System(SystemConfig())
    src = system.alloc(SIZE, align=4096)
    dst = system.alloc(SIZE, align=4096)
    system.backing.fill(src, SIZE, 0x42)

    system.run_program(memcpy_lazy_ops(system, dst, src, SIZE))
    print(f"after memcpy_lazy: CTT tracks {system.ctt.tracked_bytes()} "
          f"bytes in {len(system.ctt)} entr{'y' if len(system.ctt)==1 else 'ies'}; "
          f"destination bytes in DRAM are still stale")

    def reader():
        for off in range(0, SIZE, 64):
            yield ops.load(dst + off, 8)
        yield ops.mfence()

    system.run_program(reader())
    system.drain()
    bounces = sum(int(mc.stats.counters["bounces"].value)
                  for mc in system.controllers)
    print(f"reading the destination bounced {bounces} cachelines to the "
          f"source and resolved them; CTT now holds {len(system.ctt)} "
          f"entries")


def main() -> None:
    eager = timed_copy(lazy=False)
    lazy = timed_copy(lazy=True)
    print(f"eager memcpy of 16KB: {eager} cycles ({eager/4:.0f} ns)")
    print(f"lazy  memcpy of 16KB: {lazy} cycles ({lazy/4:.0f} ns)  "
          f"-> {eager/lazy:.1f}x faster when the copy is not accessed")
    print()
    lazy_copy_then_read()


if __name__ == "__main__":
    main()
