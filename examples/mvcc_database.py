#!/usr/bin/env python3
"""MVCC database: tuple-wise copying with (MC)² (§V-B, Figs. 16-17).

A Cicada-style multi-version database copies the whole 8KB tuple on every
update for transactional isolation, even when the transaction changes a
few bytes.  (MC)² makes the copy prospective, so only the updated
fraction ever pays the copy penalty.

Run:  python examples/mvcc_database.py
"""

from repro.workloads.mvcc import run_mvcc


def main() -> None:
    print("read-modify-write transactions over 8KB tuples, 1 thread")
    print(f"{'updated':>9s} {'memcpy kOps/s':>14s} {'(MC)^2 kOps/s':>14s} "
          f"{'gain':>7s}")
    for fraction in (0.0625, 0.125, 0.25, 0.5, 1.0):
        base = run_mvcc("memcpy", fraction, txns_per_thread=20)
        mc2 = run_mvcc("mcsquare", fraction, txns_per_thread=20)
        gain = mc2["kops_per_sec"] / base["kops_per_sec"] - 1
        print(f"{fraction:>8.1%} {base['kops_per_sec']:>14.1f} "
              f"{mc2['kops_per_sec']:>14.1f} {gain:>+7.0%}")

    print()
    print("same sweep with 8 threads (memory-bandwidth bound)")
    print(f"{'updated':>9s} {'memcpy kOps/s':>14s} {'(MC)^2 kOps/s':>14s} "
          f"{'gain':>7s}")
    for fraction in (0.0625, 0.25, 1.0):
        base = run_mvcc("memcpy", fraction, num_threads=8,
                        txns_per_thread=8)
        mc2 = run_mvcc("mcsquare", fraction, num_threads=8,
                       txns_per_thread=8)
        gain = mc2["kops_per_sec"] / base["kops_per_sec"] - 1
        print(f"{fraction:>8.1%} {base['kops_per_sec']:>14.1f} "
              f"{mc2['kops_per_sec']:>14.1f} {gain:>+7.0%}")

    print()
    print("The gain is largest for small update fractions: the baseline")
    print("reads the whole tuple from memory to copy it, while (MC)^2")
    print("reads only the lines the transaction actually modifies.")


if __name__ == "__main__":
    main()
