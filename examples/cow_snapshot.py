#!/usr/bin/env python3
"""Copy-on-write snapshots with huge pages (§V-B, Fig. 18).

An in-memory database forks to take a consistent snapshot.  With huge
pages the first write to each 2MB page triggers a COW fault whose
handler copies the whole page — a latency spike of two-plus orders of
magnitude.  The (MC)²-modified kernel replaces the copy in
``copy_user_huge_page`` with a single MCLAZY; ``--backend`` swaps in
any other registered copy backend (rowclone / mirror / zio / eager)
as the fault handler's copy mechanism instead.

Run:  python examples/cow_snapshot.py [--backend mcsquare]
"""

import argparse

from repro.common.units import MB
from repro.copyengine import ALIASES, backend_names
from repro.workloads.hugepage import run_hugepage_cow


def sparkline(values, width=60):
    """Crude log-scale latency strip."""
    import math
    marks = " .:-=+*#%@"
    lo = math.log10(max(min(values), 1))
    hi = math.log10(max(values))
    span = max(hi - lo, 1e-9)
    out = []
    for v in values[:width]:
        level = (math.log10(max(v, 1)) - lo) / span
        out.append(marks[min(int(level * (len(marks) - 1)), len(marks) - 1)])
    return "".join(out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", default="mcsquare",
        choices=sorted(set(backend_names()) | set(ALIASES)),
        help="copy backend for the COW fault handler "
             "(default: mcsquare, the paper's modified kernel)")
    args = parser.parse_args()

    region = 16 * MB
    updates = 40
    print(f"fork() a {region // MB}MB huge-page dataset, then perform "
          f"{updates} random 8-byte updates\n")

    native_max = None
    for engine in ("native", args.backend):
        r = run_hugepage_cow(engine, region_size=region,
                             num_updates=updates)
        lat = r["latencies"]
        print(f"{r['engine']:9s}: min {r['min_latency']:>8d} cycles, "
              f"max {r['max_latency']:>9d} cycles "
              f"(spikes {r['spike_ratio']:.0f}x), "
              f"{r['cow_faults']} COW faults")
        print(f"           per-access latency (log scale): "
              f"{sparkline(lat)}")
        if engine == "native":
            native_max = r["max_latency"]
        else:
            print(f"\nworst-case fault latency is "
                  f"{native_max / r['max_latency']:.0f}x lower with "
                  f"{r['engine']} (the paper reports up to 250x for "
                  f"(MC)^2)")


if __name__ == "__main__":
    main()
