"""Unit tests for the software memcpy variants (Fig. 8 wrapper etc.)."""

import pytest

from repro import System, small_system
from repro.common.units import CACHELINE_SIZE, PAGE_SIZE
from repro.isa.ops import OpKind
from repro.sw.memcpy import (interposed_memcpy_ops, memcpy_lazy_ops,
                             memcpy_ops, touch_ops)

CL = CACHELINE_SIZE


def build():
    return System(small_system())


def kinds(opstream):
    return [op.kind for op in opstream]


def pattern(n, seed=5):
    return bytes(((i * 37) + seed) & 0xFF for i in range(n))


class TestEagerMemcpy:
    @pytest.mark.parametrize("size", [1, 31, 32, 64, 100, 1024, 4097])
    def test_data_exact(self, size):
        system = build()
        src = system.alloc(size + 64)
        dst = system.alloc(size + 64)
        data = pattern(size)
        system.backing.write(src, data)
        system.run_program(memcpy_ops(system, dst, src, size))
        system.drain()
        assert system.read_memory(dst, size) == data

    def test_misaligned_src_and_dst(self):
        system = build()
        src = system.alloc(4096) + 13
        dst = system.alloc(4096) + 7
        data = pattern(500)
        system.backing.write(src, data)
        system.run_program(memcpy_ops(system, dst, src, 500))
        system.drain()
        assert system.read_memory(dst, 500) == data

    def test_ops_stay_within_lines(self):
        system = build()
        for op in memcpy_ops(system, 1000, 5000, 256):
            if op.kind in (OpKind.LOAD, OpKind.STORE):
                start_line = op.addr // CL
                end_line = (op.addr + op.size - 1) // CL
                assert start_line == end_line


class TestLazyMemcpy:
    @pytest.mark.parametrize("size", [64, 100, 1024, 4096, 8192, 10000])
    def test_data_exact(self, size):
        system = build()
        src = system.alloc(size + PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(size + PAGE_SIZE, align=PAGE_SIZE)
        data = pattern(size)
        system.backing.write(src, data)
        system.run_program(memcpy_lazy_ops(system, dst, src, size))
        system.drain()
        assert system.read_memory(dst, size) == data

    def test_data_exact_misaligned(self):
        system = build()
        src = system.alloc(8192, align=PAGE_SIZE) + 37
        dst = system.alloc(8192, align=PAGE_SIZE) + 11
        data = pattern(5000)
        system.backing.write(src, data)
        system.run_program(memcpy_lazy_ops(system, dst, src, 5000))
        system.drain()
        assert system.read_memory(dst, 5000) == data

    def test_splits_at_page_boundaries(self):
        system = build()
        src = system.alloc(3 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(3 * PAGE_SIZE, align=PAGE_SIZE)
        mclazys = [op for op in
                   memcpy_lazy_ops(system, dst, src, 2 * PAGE_SIZE)
                   if op.kind is OpKind.MCLAZY]
        assert len(mclazys) == 2
        for op in mclazys:
            assert op.size <= PAGE_SIZE
            # MCLAZY never crosses a page in either buffer (§III-C).
            assert op.addr // PAGE_SIZE == \
                (op.addr + op.size - 1) // PAGE_SIZE
            assert op.src_addr // PAGE_SIZE == \
                (op.src_addr + op.size - 1) // PAGE_SIZE

    def test_destinations_are_cacheline_aligned(self):
        system = build()
        src = system.alloc(8192, align=PAGE_SIZE) + 3
        dst = system.alloc(8192, align=PAGE_SIZE) + 21
        for op in memcpy_lazy_ops(system, dst, src, 4000):
            if op.kind is OpKind.MCLAZY:
                assert op.addr % CL == 0
                assert op.size % CL == 0

    def test_small_copies_fall_back_to_eager(self):
        system = build()
        src = system.alloc(128)
        dst = system.alloc(128)
        ops_list = list(memcpy_lazy_ops(system, dst, src, 40))
        assert not any(op.kind is OpKind.MCLAZY for op in ops_list)

    def test_clwb_per_source_line(self):
        system = build()
        src = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        clwbs = [op for op in memcpy_lazy_ops(system, dst, src, 1024)
                 if op.kind is OpKind.CLWB]
        assert len(clwbs) == 1024 // CL

    def test_no_clwb_when_disabled(self):
        system = build()
        src = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        ops_list = list(memcpy_lazy_ops(system, dst, src, 1024,
                                        clwb_sources=False))
        assert not any(op.kind is OpKind.CLWB for op in ops_list)

    def test_ends_with_mfence(self):
        system = build()
        src = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        ops_list = list(memcpy_lazy_ops(system, dst, src, 1024))
        assert ops_list[-1].kind is OpKind.MFENCE


class TestInterposer:
    def test_small_copy_eager(self):
        system = build()
        src = system.alloc(4096, align=PAGE_SIZE)
        dst = system.alloc(4096, align=PAGE_SIZE)
        ops_list = list(interposed_memcpy_ops(system, dst, src, 512))
        assert not any(op.kind is OpKind.MCLAZY for op in ops_list)

    def test_large_copy_lazy(self):
        system = build()
        src = system.alloc(4096, align=PAGE_SIZE)
        dst = system.alloc(4096, align=PAGE_SIZE)
        ops_list = list(interposed_memcpy_ops(system, dst, src, 2048))
        assert any(op.kind is OpKind.MCLAZY for op in ops_list)

    def test_threshold_boundary(self):
        system = build()
        src = system.alloc(4096, align=PAGE_SIZE)
        dst = system.alloc(4096, align=PAGE_SIZE)
        at = list(interposed_memcpy_ops(system, dst, src, 1024))
        below = list(interposed_memcpy_ops(system, dst, src, 1023))
        assert any(op.kind is OpKind.MCLAZY for op in at)
        assert not any(op.kind is OpKind.MCLAZY for op in below)


class TestTouchOps:
    def test_touch_pulls_into_cache(self):
        system = build()
        addr = system.alloc(1024)
        system.run_program(touch_ops(addr, 1024))
        for off in range(0, 1024, CL):
            assert system.hierarchy.l1s[0].probe(addr + off) or \
                system.hierarchy.l2.probe(addr + off)
