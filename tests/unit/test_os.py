"""Unit tests for the OS substrate: VM, fork/COW, pipes."""

import pytest

from repro import System, small_system
from repro.common import params
from repro.common.errors import ProtectionFault
from repro.common.units import HUGE_PAGE_SIZE, KB, MB, PAGE_SIZE
from repro.isa import ops
from repro.os.pipes import Pipe
from repro.os.vm import CowFault, OperatingSystem
from repro.sw.engine import EagerEngine, KernelEagerEngine
from repro.workloads.common import fill_pattern


def build(dram=256 * MB):
    system = System(small_system(mcsquare_enabled=False, dram_size=dram))
    return system, OperatingSystem(system)


class TestAddressSpace:
    def test_map_and_translate(self):
        system, osys = build()
        space = osys.create_space()
        space.map_region(0x10000, 2 * PAGE_SIZE)
        pa0 = space.translate(0x10000)
        pa1 = space.translate(0x10000 + PAGE_SIZE)
        assert pa0 != pa1
        assert space.translate(0x10010) == pa0 + 0x10

    def test_unmapped_raises(self):
        system, osys = build()
        space = osys.create_space()
        with pytest.raises(ProtectionFault):
            space.translate(0x999000)

    def test_readonly_write_raises(self):
        system, osys = build()
        space = osys.create_space()
        space.map_region(0x10000, PAGE_SIZE, writable=False)
        space.translate(0x10000)  # read ok
        with pytest.raises(ProtectionFault):
            space.translate(0x10000, write=True)

    def test_translate_range_splits_at_pages(self):
        system, osys = build()
        space = osys.create_space()
        space.map_region(0x10000, 2 * PAGE_SIZE)
        pieces = space.translate_range(0x10000 + PAGE_SIZE - 100, 200)
        assert len(pieces) == 2
        assert pieces[0][1] == 100
        assert pieces[1][1] == 100

    def test_unmap_releases(self):
        system, osys = build()
        space = osys.create_space()
        space.map_region(0x10000, PAGE_SIZE)
        space.unmap_region(0x10000, PAGE_SIZE)
        with pytest.raises(ProtectionFault):
            space.translate(0x10000)

    def test_huge_page_space(self):
        system, osys = build()
        space = osys.create_space(page_size=HUGE_PAGE_SIZE)
        space.map_region(0x40000000, 2 * HUGE_PAGE_SIZE)
        assert len(space.ptes) == 2


class TestFork:
    def test_fork_marks_both_cow(self):
        system, osys = build()
        parent = osys.create_space()
        parent.map_region(0x10000, 2 * PAGE_SIZE)
        child, cost_ops = osys.fork(parent)
        list(cost_ops)
        for space in (parent, child):
            with pytest.raises(CowFault):
                space.translate(0x10000, write=True)

    def test_fork_shares_frames_for_reads(self):
        system, osys = build()
        parent = osys.create_space()
        parent.map_region(0x10000, PAGE_SIZE)
        child, _ = osys.fork(parent)
        assert parent.translate(0x10000) == child.translate(0x10000)

    def test_fork_cost_scales_with_ptes(self):
        system, osys = build()
        small = osys.create_space()
        small.map_region(0, PAGE_SIZE)
        big = osys.create_space()
        big.map_region(0, 64 * PAGE_SIZE)
        _, c1 = osys.fork(small)
        _, c2 = osys.fork(big)
        assert next(iter(c2)).cycles > next(iter(c1)).cycles

    def test_cow_fault_resolution(self):
        system, osys = build()
        parent = osys.create_space()
        parent.map_region(0x10000, PAGE_SIZE)
        old_pa = parent.translate(0x10000)
        system.backing.fill(old_pa, PAGE_SIZE, 0x5E)
        child, _ = osys.fork(parent)

        old_frame, new_frame = osys.begin_cow_fault(parent, 0x10000)
        assert new_frame != old_frame
        system.backing.copy(new_frame, old_frame, PAGE_SIZE)
        osys.complete_cow_fault(parent, 0x10000, new_frame)

        # Parent now writable at a private frame; child untouched.
        assert parent.translate(0x10000, write=True) == new_frame
        assert child.translate(0x10000) == old_frame
        assert system.backing.read(new_frame, 8) == b"\x5E" * 8

    def test_sole_owner_skips_copy(self):
        system, osys = build()
        parent = osys.create_space()
        parent.map_region(0x10000, PAGE_SIZE)
        child, _ = osys.fork(parent)
        # Resolve the child's fault first (copy)...
        old, new = osys.begin_cow_fault(child, 0x10000)
        osys.complete_cow_fault(child, 0x10000, new)
        # ...then the parent is sole owner: no copy needed.
        old2, new2 = osys.begin_cow_fault(parent, 0x10000)
        assert old2 == new2

    def test_cow_store_ops_end_to_end(self):
        system, osys = build()
        engine = KernelEagerEngine(system)
        parent = osys.create_space()
        parent.map_region(0x10000, PAGE_SIZE)
        pa = parent.translate(0x10000)
        system.backing.fill(pa, PAGE_SIZE, 0x21)
        child, _ = osys.fork(parent)

        def prog():
            yield from osys.cow_store_ops(parent, 0x10050, 8, engine,
                                          data=b"COWWRITE")
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        system.hierarchy.flush_all()
        system.drain()
        new_pa = parent.translate(0x10000)
        child_pa = child.translate(0x10000)
        assert system.backing.read(new_pa + 0x50, 8) == b"COWWRITE"
        assert system.backing.read(new_pa, 8) == b"\x21" * 8
        assert system.backing.read(child_pa + 0x50, 8) == b"\x21" * 8
        assert osys.cow_faults == 1


class TestPipes:
    def _pipe(self):
        system = System(small_system(mcsquare_enabled=False))
        engine = KernelEagerEngine(system)
        return system, Pipe(system, engine)

    def test_transfer_moves_data(self):
        system, pipe = self._pipe()
        src = system.alloc(8 * KB, align=4096)
        dst = system.alloc(8 * KB, align=4096)
        fill_pattern(system, src, 4 * KB)
        expected = system.read_memory(src, 4 * KB)

        def prog():
            yield from pipe.transfer_ops(src, dst, 4 * KB)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 4 * KB) == expected
        assert pipe.bytes_written == 4 * KB
        assert pipe.bytes_read == 4 * KB

    def test_overflow_rejected(self):
        system, pipe = self._pipe()
        src = system.alloc(params.PIPE_BUFFER_SIZE * 2)
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError):
            list(pipe.write_ops(src, params.PIPE_BUFFER_SIZE + 1))

    def test_underflow_rejected(self):
        system, pipe = self._pipe()
        dst = system.alloc(4096)
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError):
            list(pipe.read_ops(dst, 64))

    def test_ring_wraparound(self):
        system, pipe = self._pipe()
        chunk = pipe.buffer_size // 2 + 1024  # force wrap on 2nd write
        src = system.alloc(2 * chunk, align=4096)
        dst = system.alloc(2 * chunk, align=4096)
        fill_pattern(system, src, 2 * chunk)
        expected = system.read_memory(src, 2 * chunk)

        def prog():
            yield from pipe.transfer_ops(src, dst, chunk)
            yield from pipe.transfer_ops(src + chunk, dst + chunk, chunk)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 2 * chunk) == expected

    def test_syscall_cost_charged(self):
        system, pipe = self._pipe()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield from pipe.transfer_ops(src, dst, 64)

        t = system.run_program(prog())
        assert t >= 2 * params.SYSCALL_CYCLES
