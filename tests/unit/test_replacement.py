"""Unit tests for the pluggable cache replacement policies."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import (LruPolicy, RandomPolicy, SrripPolicy,
                                     make_policy)
from repro.common.errors import ConfigError
from repro.sim.stats import StatGroup

CL = 64


def build(policy):
    # 1 set x 4 ways.
    return Cache("t", size=4 * CL, assoc=4, stats=StatGroup("t"),
                 policy=policy)


class TestFactory:
    def test_names(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)
        assert isinstance(make_policy("srrip"), SrripPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("mru")


class TestLru:
    def test_evicts_least_recent(self):
        cache = build(LruPolicy())
        for i in range(4):
            cache.fill(i * CL, bytes(CL), now=i)
        cache.lookup(0, now=10)   # refresh line 0
        victim = cache.fill(4 * CL, bytes(CL), now=11)
        assert victim.addr == CL  # line 1 is now the oldest


class TestRandom:
    def test_victim_is_member_and_deterministic(self):
        cache = build(RandomPolicy())
        for i in range(4):
            cache.fill(i * CL, bytes(CL), now=i)
        cset = cache._sets[0]
        v1 = cache.policy.victim(cset, now=123)
        v2 = cache.policy.victim(cset, now=123)
        assert v1 == v2
        assert v1 in cset

    def test_different_cycles_vary(self):
        cache = build(RandomPolicy())
        for i in range(4):
            cache.fill(i * CL, bytes(CL), now=i)
        cset = cache._sets[0]
        victims = {cache.policy.victim(cset, now=t) for t in range(50)}
        assert len(victims) > 1


class TestSrrip:
    def test_scan_resistance(self):
        """A hot line survives a stream of single-use fills."""
        cache = build(SrripPolicy())
        hot = 0
        cache.fill(hot, bytes(CL), now=0)
        cache.lookup(hot, now=1)       # promote to near-reuse
        for i in range(1, 12):
            cache.fill(i * 4 * CL, bytes(CL), now=i + 1)  # same set scans
            cache.lookup(hot, now=i + 2)
        assert cache.probe(hot), "hot line was evicted by the scan"

    def test_victim_always_found(self):
        cache = build(SrripPolicy())
        for i in range(4):
            cache.fill(i * CL, bytes(CL), now=i)
            cache.lookup(i * CL, now=i)  # everything promoted
        # Even with all lines "near", aging must produce a victim.
        victim = cache.fill(4 * CL, bytes(CL), now=99)
        assert victim is not None


class TestEndToEnd:
    def test_system_runs_with_alternate_policy(self):
        from repro import System, small_system
        from repro.isa import ops
        system = System(small_system())
        # Swap the shared L2's policy before running.
        system.hierarchy.l2.policy = SrripPolicy()
        addr = system.alloc(8192)

        def prog():
            for off in range(0, 8192, 64):
                yield ops.load(addr + off, 8)

        system.run_program(prog())
        assert system.stats.get("caches.l2.misses") > 0
