"""Tests for the tie-order perturbation sanitizer (``REPRO_TIE_ORDER``).

The engine's equal-cycle dispatch order is not part of the simulator's
semantics; these tests cover the spec parsing, the per-order sub-run
capture (StatGroup trees + event streams), the divergence diagnosis,
the perf-runner wiring (paired dispatch, cache bypass), and the
two-sided oracle over the planted race in ``raceorder_plants.py``.
"""

import json

import pytest

from repro.analysis import simsan
from repro.common.errors import ConfigError, SanitizerError
from repro.perf.cache import MISS, SimCache, point_key
from repro.perf.runner import SimPoint, _tie_orders, sim_map
from repro.sim import engine as sim_engine
from repro.sim import stats as sim_stats
from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup

from . import raceorder_plants as plants


@pytest.fixture(autouse=True)
def _clean_process_defaults():
    """Every test starts and ends with pristine engine/stats defaults."""
    yield
    sim_engine.set_default_tie_break(None)
    sim_engine.set_default_trace_hook(None)
    sim_stats.set_construction_hook(None)


# ------------------------------------------------------------------ parsing
def test_spec_off_values(monkeypatch):
    for raw in ("", "0", "off", "none", "false", "OFF"):
        monkeypatch.setenv("REPRO_TIE_ORDER", raw)
        assert simsan.tie_order_spec() == []
        assert _tie_orders() == []
    monkeypatch.delenv("REPRO_TIE_ORDER")
    assert simsan.tie_order_spec() == []


def test_spec_single_paired_and_list(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "lifo")
    assert simsan.tie_order_spec() == ["lifo"]
    monkeypatch.setenv("REPRO_TIE_ORDER", "paired")
    assert simsan.tie_order_spec() == ["fifo", "lifo"]
    monkeypatch.setenv("REPRO_TIE_ORDER", " fifo , lifo , seeded:7 ")
    assert simsan.tie_order_spec() == ["fifo", "lifo", "seeded:7"]


def test_spec_rejects_malformed(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "bogus")
    with pytest.raises(ConfigError):
        simsan.tie_order_spec()
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,seeded:xyz")
    with pytest.raises(ConfigError):
        simsan.tie_order_spec()


def test_tie_break_for_shapes():
    assert simsan.tie_break_for("fifo") is None
    lifo = simsan.tie_break_for("lifo")
    assert [lifo(s) for s in (0, 1, 2)] == [0, -1, -2]
    s3 = simsan.tie_break_for("seeded:3")
    s4 = simsan.tie_break_for("seeded:4")
    keys = [s3(s) for s in range(64)]
    assert len(set(keys)) == 64  # injective over a small window
    assert any(s3(s) != s4(s) for s in range(8))
    # Keys must stay below the engine's phase stride so phases keep
    # strict priority under any order.
    assert all(0 <= k < sim_engine._PHASE_STRIDE for k in keys)


# ------------------------------------------------------ engine/stats hooks
def test_default_trace_hook_adopted_by_new_simulators():
    seen = []
    sim_engine.set_default_trace_hook(lambda label, now: seen.append((now,
                                                                      label)))
    sim = Simulator()
    sim.schedule(2, lambda: None, label="tick")
    sim.run()
    assert seen == [(2, "tick")]
    sim_engine.set_default_trace_hook(None)
    assert Simulator()._trace_hook is None


def test_stat_construction_hook_sees_children():
    captured = []
    sim_stats.set_construction_hook(captured.append)
    root = StatGroup("root")
    child = root.group("child")
    sim_stats.set_construction_hook(None)
    assert captured == [root, child]
    StatGroup("after")  # hook removed: not captured
    assert len(captured) == 2


# ------------------------------------------------------------- divergence
def test_first_divergence_ignores_pure_permutation():
    a = [(1, "x"), (1, "y"), (3, "z")]
    b = [(1, "y"), (1, "x"), (3, "z")]
    assert simsan._first_divergence(a, b) is None


def test_first_divergence_names_cycle_and_labels():
    a = [(1, "x"), (2, "p"), (2, "q")]
    b = [(1, "x"), (2, "p"), (2, "r")]
    cycle, only_a, only_b = simsan._first_divergence(a, b)
    assert (cycle, only_a, only_b) == (2, ["q"], ["r"])
    # One stream ends early: the tail cycle is the divergence point.
    cycle, only_a, only_b = simsan._first_divergence(a, a[:1])
    assert cycle == 2 and only_a == ["p", "q"] and only_b == []


def test_first_diff_walks_nested_structures():
    a = {"t": {"counters": {"c": {"value": 1}}}, "list": [1, 2]}
    b = {"t": {"counters": {"c": {"value": 2}}}, "list": [1, 2]}
    path, left, right = simsan._first_diff(a, b)
    assert path == "$.t.counters.c.value" and (left, right) == (1, 2)
    assert simsan._first_diff(a, a) is None


# ----------------------------------------------------------- paired calls
def test_paired_tie_call_passes_clean_point(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo,seeded:7")
    result = simsan.paired_tie_call(plants.planted_clean_point, (), {},
                                    "plants.clean")
    assert result == {"total": 6.0}


def test_paired_tie_call_catches_planted_race(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo")
    with pytest.raises(SanitizerError) as excinfo:
        simsan.paired_tie_call(plants.planted_tie_race, (), {},
                               "plants.tie_race")
    message = str(excinfo.value)
    assert "tie-order" in message
    assert "fifo" in message and "lifo" in message
    assert "MC26" in message
    # The capture hooks never leak past the call, even on divergence.
    assert sim_engine.default_tie_break() is None
    assert sim_engine.default_trace_hook() is None
    assert sim_stats.construction_hook() is None


def test_paired_tie_call_warn_mode_continues(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo")
    monkeypatch.setenv("REPRO_SIMSAN", "warn")
    result = simsan.paired_tie_call(plants.planted_tie_race, (), {},
                                    "plants.tie_race")
    assert result["winner"] in (1.0, 2.0)  # first order's answer returned
    assert "tie-order" in capsys.readouterr().err


def test_tie_run_trees_bit_identical_for_clean_point():
    runs = [simsan._tie_run(order, plants.planted_clean_point, (), {})
            for order in ("fifo", "lifo", "seeded:3")]
    trees = [json.dumps(run["trees"], sort_keys=True) for run in runs]
    assert trees[0] == trees[1] == trees[2]
    assert runs[0]["result"] == runs[1]["result"] == runs[2]["result"]
    # The plant point builds exactly one root StatGroup.
    assert len(runs[0]["trees"]) == 1
    assert runs[0]["trees"][0]["name"] == "plant"


def test_divergence_artifact_written_when_tracing(monkeypatch, tmp_path):
    from repro.obs import runtime as obs_runtime
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo")
    monkeypatch.setenv("REPRO_SIMSAN", "warn")
    assert obs_runtime.configure_from_spec("on", out_dir=str(tmp_path))
    try:
        simsan.paired_tie_call(plants.planted_tie_race, (), {},
                               "plants.tie_race")
    finally:
        obs_runtime.unconfigure()
    artifacts = list(tmp_path.glob("tie-divergence.*.json"))
    assert len(artifacts) == 1
    payload = json.loads(artifacts[0].read_text())
    assert payload["orders"] == ["fifo", "lifo"]
    assert payload["problems"]


# ---------------------------------------------------------- runner wiring
def test_sim_map_paired_catches_race(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo")
    with pytest.raises(SanitizerError):
        sim_map([SimPoint(plants.planted_tie_race)], jobs=1, cache=False)


def test_sim_map_paired_clean_point_matches_plain_run(monkeypatch):
    plain = sim_map([SimPoint(plants.planted_clean_point, (4,))], jobs=1,
                    cache=False)
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo,seeded:9")
    paired = sim_map([SimPoint(plants.planted_clean_point, (4,))], jobs=1,
                     cache=False)
    assert paired == plain == [{"total": 10.0}]


def test_sim_map_single_order_runs_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_ORDER", "lifo")
    result = sim_map([SimPoint(plants.planted_clean_point, (2,))], jobs=1,
                     cache=False)
    assert result == [{"total": 3.0}]
    assert sim_engine.default_tie_break() is None


def test_tie_order_sweep_bypasses_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TIE_ORDER", "fifo,lifo")
    store = SimCache(tmp_path)
    point = SimPoint(plants.planted_clean_point, (2,))
    sim_map([point], jobs=1, store=store)
    key = point_key(point.name, point.args, point.kwargs, "quick")
    assert store.get(key) is MISS  # nothing stored: the sweep ran uncached
