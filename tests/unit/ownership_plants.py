"""Deliberately planted shard-ownership violations.

This module is the shared fixture for the MC27xx two-sided oracle
check: the same planted violation must be caught *statically* by the
ownership inference (``MC2701``/``MC2702``/``MC2703``/``MC2704``/
``MC2705`` in ``test_ownership.py``) and — where a runtime analogue
exists — *dynamically* by the ``REPRO_SIMSAN=own`` ownership audit.
It is excluded from lint sweeps (``--exclude
tests/unit/ownership_plants.py`` in CI and the Makefile) precisely
because its findings are intentional.
"""

from repro.sim.engine import Simulator
from repro.sim.shard import rendezvous, shard_local, shared


@shard_local
class PlantController:
    """A channel-owned component that violates the partition three ways.

    * ``poke`` (MC2701) mutates another shard's counter directly —
      no declared port anywhere on the path;
    * ``steal`` (MC2702) retains the cross-owner handle in its own
      instance state;
    * ``kick`` (MC2703) schedules its declared rendezvous port at
      phase 0 instead of the shared-rendezvous phase 2.
    """

    def __init__(self, sim: Simulator, channel_id: int):
        self.sim = sim
        self.channel_id = channel_id
        self.pressure = 0
        self.stolen = None
        self.peers = []

    def _owner_of(self, addr: int) -> "PlantController":
        return self.peers[addr % len(self.peers)]

    def poke(self, addr: int) -> None:
        owner = self._owner_of(addr)
        owner.pressure += 1  # MC2701: cross-shard write, no port

    def steal(self, addr: int) -> None:
        self.stolen = self._owner_of(addr)  # MC2702: retained handle

    def kick(self) -> None:
        # MC2703: a rendezvous port racing ordinary phase-0 events.
        self.sim.schedule(1, self.grant, label="plant-grant", phase=0)

    @rendezvous("plant-grant")
    def grant(self) -> None:
        self.pressure = 0

    @rendezvous("plant-push")
    def push_to(self, peer: "PlantController") -> None:
        # The control case: the same cross-shard mutation as ``poke``,
        # but inside a declared port — neither oracle may flag it.
        peer.pressure += 1


@shared
class PlantTable:
    """MC2705 — declared shared, but the wiring pins it to one channel."""

    def __init__(self, channel_id: int):
        self.channel_id = channel_id
        self.rows = {}

    def put(self, key, value) -> None:
        self.rows[key] = value


class PlantOrphan:
    """MC2704 — mutable component state with no ownership declaration."""

    def __init__(self):
        self.backlog = []

    def push(self, item) -> None:
        self.backlog.append(item)
