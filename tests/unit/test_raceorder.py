"""Tests for the schedule-order independence rules (MC26xx).

Positive and negative fixtures per rule, the phase-separation and
commutativity escape hatches, the helper/sub-object effect closure,
``# noqa`` suppression (including the MC2901 stale-marker interplay),
and the planted fixtures in ``raceorder_plants.py`` staying caught.
"""

from pathlib import Path

from repro.analysis import engine
from repro.analysis.core import all_rules

PLANTS_PATH = str(Path(__file__).resolve().with_name("raceorder_plants.py"))

RACE_CODES = ["MC2601", "MC2602", "MC2603"]


def analyze_source(tmp_path, source, name="fixture.py", select=None):
    path = tmp_path / name
    path.write_text(source)
    return engine.run([str(path)], select=select or RACE_CODES)


def codes(report):
    return sorted(f.rule for f in report.findings if not f.suppressed)


# ------------------------------------------------------------------ MC2601
RACY = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.slot = 0

    def start(self):
        self.sim.schedule(1, self._a)
        self.sim.schedule(1, self._b)

    def _a(self):
        self.slot = 1

    def _b(self):
        self.slot = 2
"""


def test_mc2601_flags_same_cycle_write_write(tmp_path):
    report = analyze_source(tmp_path, RACY)
    assert codes(report) == ["MC2601"]
    assert "'_a'" in report.findings[0].message
    assert "'_b'" in report.findings[0].message


def test_mc2601_phase_separation_is_an_ordering_edge(tmp_path):
    separated = RACY.replace("self.sim.schedule(1, self._b)",
                             "self.sim.schedule(1, self._b, phase=1)")
    assert codes(analyze_source(tmp_path, separated)) == []


def test_mc2601_commutative_accumulation_is_exempt(tmp_path):
    commutative = RACY.replace("self.slot = 1", "self.slot += 1") \
                      .replace("self.slot = 2", "self.slot += 1")
    assert codes(analyze_source(tmp_path, commutative)) == []


def test_mc2601_write_read_conflict(tmp_path):
    racy_read = RACY.replace("self.slot = 2", "self.seen = self.slot")
    report = analyze_source(tmp_path, racy_read)
    assert codes(report) == ["MC2601"]


def test_mc2601_follows_helper_into_event_frame(tmp_path):
    source = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.table = {}

    def start(self):
        self.sim.schedule(1, self._a)
        self.sim.schedule(1, self._b)

    def _a(self):
        self._insert(1)

    def _insert(self, x):
        self.table[x] = x

    def _b(self):
        self.table.clear()
"""
    report = analyze_source(tmp_path, source)
    assert codes(report) == ["MC2601"]
    assert "table" in report.findings[0].message


def test_mc2601_descends_into_typed_sub_object(tmp_path):
    source = """\
class Table:
    def __init__(self):
        self.entries = {}

    def insert(self, k):
        self.entries[k] = k

    def evict(self):
        self.entries.clear()


class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.table = Table()

    def start(self):
        self.sim.schedule(1, self._a)
        self.sim.schedule(1, self._b)

    def _a(self):
        self.table.insert(1)

    def _b(self):
        self.table.evict()
"""
    report = analyze_source(tmp_path, source)
    assert codes(report) == ["MC2601"]
    assert "table.entries" in report.findings[0].message


def test_mc2601_plumbing_attrs_exempt(tmp_path):
    source = RACY.replace("self.slot = 1", "self.stats = 1") \
                 .replace("self.slot = 2", "self.stats = 2")
    assert codes(analyze_source(tmp_path, source)) == []


# ------------------------------------------------------------------ MC2602
NOW_KEYED = """\
class Comp:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = {}

    def record(self, v):
        self.arrivals[self.sim.now] = v

    def drain(self):
        return [v for k, v in self.arrivals.items()]
"""


def test_mc2602_flags_now_keyed_iteration(tmp_path):
    assert codes(analyze_source(tmp_path, NOW_KEYED)) == ["MC2602"]


def test_mc2602_sorted_iteration_is_clean(tmp_path):
    clean = NOW_KEYED.replace("self.arrivals.items()",
                              "sorted(self.arrivals.items())")
    assert codes(analyze_source(tmp_path, clean)) == []


# ------------------------------------------------------------------ MC2603
def test_mc2603_flags_non_commutative_rmw(tmp_path):
    source = "def boost(counter):\n    counter.value *= 2\n"
    report = analyze_source(tmp_path, source)
    assert codes(report) == ["MC2603"]


def test_mc2603_commutative_augassign_is_clean(tmp_path):
    source = ("def bump(counter, d):\n"
              "    counter.value += d\n"
              "    counter.value -= 1\n")
    assert codes(analyze_source(tmp_path, source)) == []


# ------------------------------------------------------------- suppression
def test_mc2601_noqa_suppresses_and_is_not_stale(tmp_path):
    report = analyze_source(tmp_path, RACY)
    line = report.findings[0].line
    lines = RACY.splitlines()
    lines[line - 1] += "  # noqa: MC2601"
    report = analyze_source(tmp_path, "\n".join(lines) + "\n",
                            name="suppressed.py",
                            select=RACE_CODES + ["MC2901"])
    assert report.ok
    suppressed = [f for f in report.findings if f.suppressed]
    assert [f.rule for f in suppressed] == ["MC2601"]


def test_stale_mc26xx_noqa_flagged_by_mc2901(tmp_path):
    source = ("def clean(counter, d):\n"
              "    counter.value += d  # noqa: MC2603\n")
    report = analyze_source(tmp_path, source,
                            select=["MC2603", "MC2901"])
    assert codes(report) == ["MC2901"]


def test_mc26xx_noqa_for_unran_rule_is_not_stale(tmp_path):
    # Select-aware staleness: MC2603 did not run in this pass, so its
    # marker cannot be judged stale.
    source = ("def clean(counter, d):\n"
              "    counter.value += d  # noqa: MC2603\n")
    report = analyze_source(tmp_path, source,
                            select=["MC2601", "MC2901"])
    assert codes(report) == []


# ------------------------------------------------------------------ plants
def test_planted_fixtures_stay_caught():
    report = engine.run([PLANTS_PATH], select=RACE_CODES)
    assert codes(report) == ["MC2601", "MC2602", "MC2603"]
    assert not report.ok


def test_registry_lists_race_rules():
    listed = {rule.code for rule in all_rules()}
    assert set(RACE_CODES) <= listed
