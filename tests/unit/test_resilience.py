"""Unit tests for the supervised-sweep layer (repro.resilience)."""

import json

import pytest

from repro.common import params
from repro.common.errors import ConfigError, DeadlineError
from repro.resilience.deadline import (Backoff, backoff_from_env,
                                       cycle_budget, max_attempts,
                                       point_timeout)
from repro.resilience.report import (FailureReport, Hole, PointFailure,
                                     SweepJournal, is_hole, load_report)


class TestBackoff:
    def test_doubles_per_attempt(self):
        backoff = Backoff(base=0.25, cap=8.0)
        assert backoff.delay(1) == 0.25
        assert backoff.delay(2) == 0.5
        assert backoff.delay(3) == 1.0

    def test_capped(self):
        backoff = Backoff(base=0.25, cap=1.0)
        assert backoff.delay(10) == 1.0

    def test_non_positive_attempt_is_free(self):
        assert Backoff().delay(0) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRY_BACKOFF", raising=False)
        assert backoff_from_env().base == params.SWEEP_BACKOFF_BASE_S
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        assert backoff_from_env().base == 0.01
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "off")
        assert backoff_from_env().delay(5) == 0.0
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "garbage")
        assert backoff_from_env().base == params.SWEEP_BACKOFF_BASE_S


class TestPointTimeout:
    def test_scale_derived_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert point_timeout("quick") == params.SWEEP_POINT_TIMEOUT_QUICK_S
        assert point_timeout("full") == params.SWEEP_POINT_TIMEOUT_FULL_S
        assert point_timeout() == params.SWEEP_POINT_TIMEOUT_QUICK_S

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "12.5")
        assert point_timeout("full") == 12.5

    def test_env_disables(self, monkeypatch):
        for token in ("0", "off", "none"):
            monkeypatch.setenv("REPRO_POINT_TIMEOUT", token)
            assert point_timeout("quick") is None

    def test_malformed_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "soon")
        assert point_timeout("quick") == params.SWEEP_POINT_TIMEOUT_QUICK_S


class TestCycleBudget:
    def test_opt_in_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CYCLE_DEADLINE", raising=False)
        assert cycle_budget() is None
        assert cycle_budget(default=5000) == 5000

    def test_env_sets_and_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE_DEADLINE", "123456")
        assert cycle_budget() == 123456
        monkeypatch.setenv("REPRO_CYCLE_DEADLINE", "off")
        assert cycle_budget(default=5000) is None


class TestMaxAttempts:
    def test_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_POINT_RETRIES", raising=False)
        assert max_attempts() == params.SWEEP_MAX_ATTEMPTS
        monkeypatch.setenv("REPRO_POINT_RETRIES", "5")
        assert max_attempts() == 5
        monkeypatch.setenv("REPRO_POINT_RETRIES", "0")
        assert max_attempts() == 1  # at least one attempt always runs
        monkeypatch.setenv("REPRO_POINT_RETRIES", "lots")
        assert max_attempts() == params.SWEEP_MAX_ATTEMPTS


class TestWatchdogCycleDeadline:
    def _system(self, deadline):
        from repro.system.config import SystemConfig
        from repro.system.system import System
        system = System(SystemConfig())
        system.attach_watchdog(cycle_deadline=deadline)
        return system

    def test_deadline_trips(self):
        system = self._system(deadline=50)
        with pytest.raises(DeadlineError) as excinfo:
            for i in range(1000):
                system.sim.schedule(i * 10, lambda: None, "tick")
                system.sim.run()
        assert "deadline" in str(excinfo.value)
        assert excinfo.value.post_mortem  # carries the flight recorder

    def test_no_deadline_no_trip(self):
        system = self._system(deadline=None)
        for i in range(20):
            system.sim.schedule(i * 10, lambda: None, "tick")
        system.sim.run()

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ConfigError):
            self._system(deadline=0)


class TestFailureReport:
    def _report(self):
        report = FailureReport(sweep_id="cafe0123", policy="strict",
                               scale="quick", total=4, completed=3)
        report.add(PointFailure(index=2, name="mod.fn", kind="crash",
                                cause="worker died", attempts=3,
                                key="ab" + "0" * 62))
        return report

    def test_summary_names_the_poison_point(self):
        text = self._report().summary()
        assert "point[2] mod.fn" in text
        assert "crash after 3 attempt(s)" in text

    def test_write_and_load_roundtrip(self, tmp_path):
        path = self._report().write(tmp_path)
        assert path.name == "cafe0123.report.json"
        payload = load_report(path)
        assert payload["quarantined"] == 1
        assert payload["failures"][0]["name"] == "mod.fn"
        assert payload["failures"][0]["kind"] == "crash"
        assert not list(tmp_path.glob("*.tmp.*"))  # atomic write cleaned up

    def test_failures_sorted_by_index(self):
        report = FailureReport(sweep_id="x", policy="partial",
                               scale="quick", total=3)
        report.add(PointFailure(index=2, name="b", kind="error",
                                cause="c", attempts=1))
        report.add(PointFailure(index=0, name="a", kind="error",
                                cause="c", attempts=1))
        indices = [f["index"] for f in report.to_dict()["failures"]]
        assert indices == [0, 2]


class TestHole:
    def test_is_hole(self):
        hole = Hole(index=1, name="mod.fn", kind="timeout",
                    cause="deadline", attempts=2)
        assert is_hole(hole)
        assert not is_hole(None)
        assert not is_hole({"index": 1})

    def test_holes_are_not_json_encodable(self):
        hole = Hole(index=1, name="f", kind="error", cause="c", attempts=1)
        with pytest.raises(TypeError):
            json.dumps(hole)  # can never be silently persisted


class TestSweepJournal:
    def test_records_progress(self, tmp_path):
        journal = SweepJournal(tmp_path, "deadbeef")
        journal.start(total=3, cached=1, fresh=2)
        journal.record_done(0, "mod.fn", "ab" + "0" * 62)
        journal.record_done(2, "mod.fn", None)
        journal.record_end(completed=3, quarantined=0)
        journal.close()
        state = SweepJournal(tmp_path, "deadbeef").load()
        assert state["runs"] == 1
        assert state["done_indices"] == {0, 2}
        assert state["done_keys"] == {"ab" + "0" * 62}
        assert state["ended"]

    def test_interrupted_run_shows_not_ended(self, tmp_path):
        journal = SweepJournal(tmp_path, "feed0000")
        journal.start(total=2, cached=0, fresh=2)
        journal.record_done(0, "mod.fn", None)
        journal.close()  # no end record: the process died here
        state = SweepJournal(tmp_path, "feed0000").load()
        assert state["runs"] == 1 and not state["ended"]
        assert state["done_indices"] == {0}

    def test_second_run_appends(self, tmp_path):
        first = SweepJournal(tmp_path, "0a0b0c0d")
        first.start(total=1, cached=0, fresh=1)
        first.close()
        second = SweepJournal(tmp_path, "0a0b0c0d")
        second.start(total=1, cached=0, fresh=1)
        second.record_done(0, "mod.fn", None)
        second.record_end(completed=1, quarantined=0)
        second.close()
        state = SweepJournal(tmp_path, "0a0b0c0d").load()
        assert state["runs"] == 2 and state["ended"]

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        journal = SweepJournal(tmp_path, "00ff00ff")
        journal.start(total=2, cached=0, fresh=2)
        journal.record_done(0, "mod.fn", None)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "ind')  # SIGKILL mid-write
        state = SweepJournal(tmp_path, "00ff00ff").load()
        assert state["done_indices"] == {0}

    def test_quarantine_lines_survive(self, tmp_path):
        journal = SweepJournal(tmp_path, "ace0ace0")
        journal.start(total=1, cached=0, fresh=1)
        journal.record_quarantine(PointFailure(
            index=0, name="mod.bad", kind="error", cause="boom",
            attempts=3))
        journal.close()
        state = SweepJournal(tmp_path, "ace0ace0").load()
        [entry] = state["quarantined"]
        assert entry["name"] == "mod.bad" and entry["attempts"] == 3

    def test_missing_journal_loads_empty(self, tmp_path):
        state = SweepJournal(tmp_path, "nothere0").load()
        assert state["runs"] == 0 and not state["ended"]
