"""Boundary tests for the calendar queue's heap-backed far list.

The ring only holds events less than one day (``day_length`` cycles)
out; everything at or past the horizon sits in a heap until its cycle
comes around.  These tests pin the seams of that split: delays beyond
one (and several) full rotations, the degenerate one-slot calendar,
``schedule_at`` in the past, ``run(until)`` stopping short of the far
head, ``step()`` across a promotion, and ``max_events`` off-by-one
behaviour matching the retired heap engine (a budget exhausted with
only cancelled events left still livelocks, exactly as a non-empty
heap did).
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class TestBeyondOneRotation:
    def test_delay_past_one_rotation_goes_far_and_fires_in_order(self):
        sim = Simulator(day_length=8)
        fired = []
        # Interleave near (ring) and far delays; several share cycles.
        for delay in (50, 3, 8, 7, 9, 0, 23, 23, 15, 2):
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        assert len(sim._far) == 6  # delays >= day_length (8)
        sim.run()
        assert fired == sorted(fired, key=lambda pair: pair[0])
        assert [pair[0] for pair in fired] == [0, 2, 3, 7, 8, 9, 15, 23,
                                              23, 50]
        # Same-cycle far events fire in schedule (seq) order.
        assert fired[7] == (23, 23) and fired[8] == (23, 23)

    def test_multiple_empty_rotations_are_skipped(self):
        sim = Simulator(day_length=4)
        fired = []
        sim.schedule(4 * 3 + 2, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [14]
        assert sim.now == 14

    def test_rearming_across_the_horizon_round_trips(self):
        # An event that re-schedules itself exactly one day out keeps
        # crossing ring -> far -> promotion without losing a beat.
        sim = Simulator(day_length=8)
        fired = []

        def rearm():
            fired.append(sim.now)
            if len(fired) < 5:
                sim.schedule(8, rearm)

        sim.schedule(8, rearm)
        sim.run()
        assert fired == [8, 16, 24, 32, 40]

    def test_day_length_one_degenerates_to_a_pure_heap(self):
        sim = Simulator(day_length=1)
        fired = []
        for delay in (5, 0, 2, 2, 9, 1):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        # Only the delay-0 event fits the single-slot ring.
        assert len(sim._far) == 5
        sim.run()
        assert fired == [0, 1, 2, 2, 5, 9]


class TestPastScheduling:
    def test_schedule_at_in_the_past_raises(self):
        sim = Simulator(day_length=8)
        sim.schedule(10, lambda: None)
        sim.run()
        assert sim.now == 10
        with pytest.raises(SimulationError):
            sim.schedule_at(9, lambda: None)

    def test_schedule_at_now_is_fine_even_past_a_rotation(self):
        sim = Simulator(day_length=4)
        sim.schedule(17, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(17, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [17]

    def test_schedule_at_in_the_past_raises_from_a_callback(self):
        sim = Simulator(day_length=4)
        boom = []

        def tardy():
            try:
                sim.schedule_at(sim.now - 1, lambda: None)
            except SimulationError:
                boom.append(sim.now)

        sim.schedule(9, tardy)
        sim.run()
        assert boom == [9]


class TestRunUntilAndStepAcrossTheHorizon:
    def test_until_before_far_head_stops_and_advances_clock(self):
        sim = Simulator(day_length=4)
        fired = []
        sim.schedule(30, lambda: fired.append(sim.now))
        assert sim.run(until=20) == 20
        assert sim.now == 20 and fired == []
        assert sim.pending == 1
        sim.run()
        assert fired == [30]

    def test_until_exactly_at_far_head_fires_it(self):
        sim = Simulator(day_length=4)
        fired = []
        sim.schedule(30, lambda: fired.append(sim.now))
        sim.run(until=30)
        assert fired == [30] and sim.now == 30

    def test_step_promotes_and_fires_exactly_one_event(self):
        sim = Simulator(day_length=4)
        fired = []
        sim.schedule(21, lambda: fired.append("a"))
        sim.schedule(21, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"] and sim.now == 21
        assert sim.step() is True
        assert fired == ["a", "b"]
        assert sim.step() is False


class TestMaxEventsParity:
    def test_budget_spent_with_far_work_remaining_raises(self):
        sim = Simulator(day_length=4)
        for i in range(6):
            sim.schedule(10 * (i + 1), lambda: None)  # all far
        with pytest.raises(SimulationError):
            sim.run(max_events=5)

    def test_budget_spent_on_final_far_event_does_not_raise(self):
        sim = Simulator(day_length=4)
        fired = []
        for i in range(5):
            sim.schedule(10 * (i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=5)
        assert fired == [0, 1, 2, 3, 4]

    def test_budget_spent_with_only_tombstones_left_raises(self):
        # Heap-engine parity: cancelled-but-unreclaimed events kept the
        # old queue non-empty at budget exhaustion, so it raised; the
        # calendar queue's stored count includes tombstones the same way.
        sim = Simulator(day_length=4)
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        doomed = sim.schedule(40, lambda: None)
        doomed.cancel()
        with pytest.raises(SimulationError):
            sim.run(max_events=5)
