"""Unit tests for the CPU core model (issue, window, fences, blocking)."""

import pytest

from repro import System, small_system
from repro.common import params
from repro.isa import ops


def build():
    return System(small_system())


class TestBasicExecution:
    def test_compute_program_finishes(self):
        system = build()
        def prog():
            yield ops.compute(100)
            yield ops.compute(50)
        t = system.run_program(prog())
        assert t >= 150

    def test_loads_return_memory_data(self):
        system = build()
        addr = system.alloc(64)
        system.backing.write(addr, b"\xDE\xAD\xBE\xEF" + bytes(60))
        seen = {}
        def prog():
            op = ops.load(addr, 4, blocking=True)
            value = yield op
            seen["v"] = value
        system.run_program(prog())
        assert seen["v"] == b"\xDE\xAD\xBE\xEF"

    def test_store_then_load_same_line(self):
        system = build()
        addr = system.alloc(64)
        seen = {}
        def prog():
            yield ops.store(addr, 8, data=b"ABCDEFGH")
            value = yield ops.load(addr, 8, blocking=True)
            seen["v"] = value
        system.run_program(prog())
        assert seen["v"] == b"ABCDEFGH"

    def test_idle_after_finish(self):
        system = build()
        def prog():
            yield ops.compute(10)
        system.run_program(prog())
        assert system.cores[0].idle

    def test_busy_core_rejects_second_program(self):
        system = build()
        core = system.cores[0]
        def prog():
            yield ops.compute(10)
        core.run_program(prog())
        with pytest.raises(RuntimeError):
            core.run_program(prog())
        system.sim.run()


class TestParallelismLimits:
    def test_independent_loads_overlap(self):
        """N independent uncached loads finish much faster than N x RT."""
        system = build()
        base = system.alloc(64 * 64)
        def prog():
            for i in range(8):
                yield ops.load(base + i * 2 * 64, 8)
        t = system.run_program(prog())
        one_rt = 300  # approx uncached round trip in cycles
        assert t < 8 * one_rt * 0.7

    def test_blocking_loads_serialize(self):
        # Irregular (unprefetchable) offsets, one load per line.
        offsets = [0, 13, 3, 30, 7, 22, 17, 9]

        def run(blocking):
            system = System(small_system(prefetch_enabled=False))
            base = system.alloc(64 * 64)
            def prog():
                for off in offsets:
                    yield ops.load(base + off * 64, 8, blocking=blocking)
            return system.run_program(prog())

        t_ind = run(False)
        t_chain = run(True)
        assert t_chain > t_ind * 1.5

    def test_retirement_in_order(self):
        system = build()
        addr = system.alloc(4096)
        order = []
        def prog():
            # A slow uncached load then a fast compute: compute retires
            # after the load despite completing first.
            yield ops.load(addr, 8,
                           on_retire=lambda op, t: order.append("load"))
            yield ops.compute(1,)
            yield ops.store(addr + 64, 8,
                            on_retire=lambda op, t: order.append("store"))
        system.run_program(prog())
        assert order == ["load", "store"]


class TestFences:
    def test_mfence_orders_clwb(self):
        """Fence completion waits for the CLWB writeback to be accepted."""
        system = build()
        addr = system.alloc(64)
        def no_fence():
            yield ops.store(addr, 8, data=b"x" * 8)
            yield ops.clwb(addr)
        def with_fence():
            yield ops.store(addr, 8, data=b"x" * 8)
            yield ops.clwb(addr)
            yield ops.mfence()
        t1 = System(small_system()).run_program(no_fence()) if False else None
        sys_a = System(small_system())
        a = sys_a.alloc(64)
        def prog_a():
            yield ops.store(a, 8, data=b"x" * 8)
            yield ops.clwb(a)
        t_no = sys_a.run_program(prog_a())
        sys_b = System(small_system())
        b = sys_b.alloc(64)
        def prog_b():
            yield ops.store(b, 8, data=b"x" * 8)
            yield ops.clwb(b)
            yield ops.mfence()
        t_yes = sys_b.run_program(prog_b())
        assert t_yes >= t_no

    def test_fence_blocks_younger_ops(self):
        system = build()
        addr = system.alloc(4096)
        times = {}
        def prog():
            yield ops.load(addr, 8,
                           on_retire=lambda op, t: times.__setitem__("l", t))
            yield ops.mfence()
            yield ops.compute(1)
            yield ops.store(addr + 128, 8,
                            on_retire=lambda op, t: times.__setitem__("s", t))
        system.run_program(prog())
        assert times["s"] >= times["l"] + params.MFENCE_CYCLES


class TestStats:
    def test_mem_miss_cycles_accumulate(self):
        system = build()
        addr = system.alloc(4096)
        def prog():
            for i in range(4):
                yield ops.load(addr + i * 128, 8)
        system.run_program(prog())
        assert system.cores[0].mem_miss_cycles.value > 0

    def test_ops_retired_counted(self):
        system = build()
        def prog():
            for _ in range(5):
                yield ops.compute(1)
        system.run_program(prog())
        assert system.cores[0].ops_retired.value == 5


class TestNtStore:
    def test_nt_store_bypasses_cache(self):
        system = build()
        addr = system.alloc(64)
        def prog():
            yield ops.nt_store(addr, 64, data=b"\x3C" * 64)
            yield ops.mfence()
        system.run_program(prog())
        system.drain()
        # Data in memory, not in any cache.
        assert system.backing.read_line(addr) == b"\x3C" * 64
        assert system.hierarchy.read_functional(addr, 8) is None
