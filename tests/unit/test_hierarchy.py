"""Unit tests for the cache hierarchy (timing + functional data)."""

import pytest

from repro import System, small_system
from repro.common import params
from repro.isa import ops

CL = 64


def build(**kw):
    return System(small_system(**kw))


class TestLoadPath:
    def test_first_load_misses_second_hits(self):
        system = build()
        addr = system.alloc(4096)
        times = []

        def prog():
            yield ops.load(addr, 8, blocking=True,
                           on_retire=lambda op, t: times.append(t))
            yield ops.load(addr, 8, blocking=True,
                           on_retire=lambda op, t: times.append(t))

        system.run_program(prog())
        l1 = system.stats.children["caches"].children["l1_0"].counters
        assert l1["misses"].value >= 1
        assert l1["hits"].value >= 1
        # Second access (L1 hit) is far faster than the first.
        assert times[1] - times[0] < 50

    def test_l2_hit_path(self):
        system = build()
        addr = system.alloc(4096)

        def prog_a():
            yield ops.load(addr, 8)

        system.run_program(prog_a())
        # Evict from L1 only: invalidate L1 copy, keep L2.
        system.hierarchy.l1s[0].invalidate(addr)

        def prog_b():
            yield ops.load(addr, 8)

        system.run_program(prog_b())
        l2 = system.stats.children["caches"].children["l2"].counters
        assert l2["hits"].value >= 1

    def test_load_value_correct_through_hierarchy(self):
        system = build()
        addr = system.alloc(4096)
        system.backing.write(addr, b"\x12\x34\x56\x78" * 2)
        got = {}

        def prog():
            got["v"] = (yield ops.load(addr, 8, blocking=True))

        system.run_program(prog())
        assert got["v"] == b"\x12\x34\x56\x78" * 2


class TestCoherence:
    def test_peer_core_sees_dirty_data(self):
        system = build()
        addr = system.alloc(4096)
        got = {}

        def writer():
            yield ops.store(addr, 8, data=b"WRITTEN!")
            yield ops.mfence()

        def reader():
            got["v"] = (yield ops.load(addr, 8, blocking=True))

        system.run_program(writer(), core=0)
        system.run_program(reader(), core=1)
        assert got["v"] == b"WRITTEN!"

    def test_store_invalidates_peer_copy(self):
        system = build()
        addr = system.alloc(4096)

        def reader():
            yield ops.load(addr, 8)

        system.run_program(reader(), core=1)
        assert system.hierarchy.l1s[1].probe(addr)

        def writer():
            yield ops.store(addr, 8, data=b"AAAAAAAA")

        system.run_program(writer(), core=0)
        assert not system.hierarchy.l1s[1].probe(addr)


class TestWritebackPath:
    def test_dirty_eviction_reaches_memory(self):
        system = build()
        # Write many lines mapping to the same L1 set to force eviction
        # all the way through L2.
        base = system.alloc(1 << 21, align=1 << 21)

        def prog():
            for i in range(600):
                yield ops.store(base + i * 4096, 8, data=b"\xEE" * 8)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        for mc in system.controllers:
            mc.drain_wpq_fully()
        # At least some of the early stores must have reached backing.
        hit = any(system.backing.read(base + i * 4096, 8) == b"\xEE" * 8
                  for i in range(10))
        assert hit

    def test_flush_all_writes_back_everything(self):
        system = build()
        addr = system.alloc(4096)

        def prog():
            yield ops.store(addr, 8, data=b"FLUSHME!")

        system.run_program(prog())
        system.hierarchy.flush_all()
        system.drain()
        assert system.backing.read(addr, 8) == b"FLUSHME!"


class TestClwb:
    def test_clwb_writes_back_and_keeps_line(self):
        system = build()
        addr = system.alloc(4096)

        def prog():
            yield ops.store(addr, 8, data=b"CLWBDATA")
            yield ops.clwb(addr)
            yield ops.mfence()

        system.run_program(prog())
        assert system.backing.read(addr, 8) == b"CLWBDATA"
        line = system.hierarchy.l1s[0].lookup(addr, 0, touch=False)
        assert line is not None and not line.dirty

    def test_clwb_parallelism_limit_serializes_long_trains(self):
        def run(n_lines):
            system = build()
            base = system.alloc(n_lines * CL, align=4096)

            def prog():
                for i in range(n_lines):
                    yield ops.clwb(base + i * CL)
                yield ops.mfence()

            return system.run_program(prog())

        short = run(4)
        long = run(64)
        # 16x the lines should cost clearly more than 3x once the LFB
        # pool saturates (drain-rate bound, not issue bound).
        assert long > short * 3


class TestMclazyAtCaches:
    def test_dest_lines_invalidated(self):
        system = build()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield ops.load(dst, 8)   # cache a dest line
            yield ops.mclazy(dst, src, 4096)
            yield ops.mfence()

        system.run_program(prog())
        assert not system.hierarchy.l1s[0].probe(dst)

    def test_dirty_source_written_back_before_insert(self):
        system = build()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield ops.store(src, 8, data=b"NEWSRC!!")
            # No CLWB: the MCLAZY packet itself must flush the line.
            yield ops.mclazy(dst, src, 4096)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 8) == b"NEWSRC!!"


class TestBulkCopy:
    def test_bulk_copy_moves_data(self):
        system = build()
        src = system.alloc(8192, align=4096)
        dst = system.alloc(8192, align=4096)
        system.backing.fill(src, 8192, 0x3A)

        def prog():
            yield ops.bulk_copy(dst, src, 8192)

        system.run_program(prog())
        assert system.read_memory(dst, 8192) == b"\x3A" * 8192

    def test_bulk_copy_includes_cached_dirty_source(self):
        system = build()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield ops.store(src, 8, data=b"DIRTYSRC")
            yield ops.bulk_copy(dst, src, 4096)

        system.run_program(prog())
        assert system.read_memory(dst, 8) == b"DIRTYSRC"

    def test_bulk_copy_invalidates_stale_dest_cache(self):
        system = build()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.backing.fill(src, 4096, 0x99)
        got = {}

        def prog():
            yield ops.load(dst, 8)  # cache stale zeros
            yield ops.bulk_copy(dst, src, 4096)
            got["v"] = (yield ops.load(dst, 8, blocking=True))

        system.run_program(prog())
        assert got["v"] == b"\x99" * 8
