"""MC27xx shard-ownership analyzer and the ``REPRO_SIMSAN=own`` audit.

The two-sided oracle contract: every plant in ``ownership_plants.py``
is caught *statically* by the ownership inference and — where a runtime
analogue exists — *dynamically* by the installed ownership audit, while
the real tree stays clean on both sides.  Also covers the CLI surface
(``--ownership-report``, ``--stats``), the ``# noqa``/MC2901
interaction for MC27xx codes, and the canonical baseline round trip.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis import engine, ownership, simsan
from repro.analysis.cli import main as cli_main
from repro.analysis.core import all_rules
from repro.common.errors import SanitizerError
from repro.sim.engine import Simulator
from repro.sim.shard import OWNER_SLOT

from . import ownership_plants as plants

PLANTS_PATH = str(Path(__file__).resolve().with_name("ownership_plants.py"))
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src" / "repro")

OWN_CODES = ["MC2701", "MC2702", "MC2703", "MC2704", "MC2705"]

#: The only port names a cross-shard edge in the real tree may use.
DECLARED_PORTS = {"dram-request", "dram-grant", "wpq-probe",
                  "bpq-probe", "bpq-supersede", "dram-access"}


def codes(report):
    return sorted(f.rule for f in report.findings if not f.suppressed)


def analyze_paths(paths, **kwargs):
    files = engine.collect_files(paths, **kwargs)
    return ownership.analyze(engine.parse_modules(files))


# ------------------------------------------------------------ static side


def test_planted_violations_stay_caught():
    report = engine.run([PLANTS_PATH], select=OWN_CODES)
    assert codes(report) == OWN_CODES
    assert not report.ok


def test_plant_findings_name_the_right_sites():
    report = engine.run([PLANTS_PATH], select=OWN_CODES)
    by_rule = {f.rule: f for f in report.findings}
    assert "poke" in by_rule["MC2701"].message
    assert "stolen" in by_rule["MC2702"].message
    assert "plant-grant" in by_rule["MC2703"].message
    assert "PlantOrphan" in by_rule["MC2704"].message
    assert "PlantTable" in by_rule["MC2705"].message


def test_declared_port_is_not_flagged():
    # push_to performs the same cross-shard mutation as poke, but
    # inside a declared rendezvous port: exactly one MC2701 (poke's).
    report = engine.run([PLANTS_PATH], select=["MC2701"])
    assert len(report.active) == 1
    assert "poke" in report.active[0].message


def test_registry_lists_ownership_rules():
    listed = {rule.code for rule in all_rules()}
    assert set(OWN_CODES) <= listed


def test_repo_partition_is_proven():
    report = analyze_paths([REPO_SRC])
    assert report.unknown_classes() == []
    assert report.problems == []
    assert report.ok
    shards = report.shards()
    assert "repro.memctrl.controller.MemoryController" in shards["channel"]
    assert "repro.mcsquare.bpq.BouncePendingQueue" in shards["channel"]
    assert "repro.cache.hierarchy.CacheHierarchy" in shards["cpu"]
    assert report.classes["repro.interconnect.bus.Interconnect"].declared \
        == "shared"
    # Every cross-shard edge goes through a declared rendezvous port.
    assert report.edges, "inference found no cross-shard edges (vacuous)"
    assert {edge.port for edge in report.edges} <= DECLARED_PORTS


def test_repo_edges_cover_the_load_bearing_ports():
    ports = {edge.port for edge in analyze_paths([REPO_SRC]).edges}
    # The remote-WPQ probe, the BPQ probe, and the peer DRAM path are
    # the crossings the sharded engine must turn into messages.
    assert {"wpq-probe", "bpq-probe", "dram-access"} <= ports


# -------------------------------------------------------------- CLI


def test_cli_ownership_report_proves_repo(tmp_path):
    out = tmp_path / "own.txt"
    assert cli_main([REPO_SRC, "--ownership-report",
                     "--output", str(out)]) == 0
    assert "partition PROVEN" in out.read_text()


def test_cli_ownership_report_json_shape(tmp_path):
    out = tmp_path / "own.json"
    assert cli_main([REPO_SRC, "--ownership-report", "--format", "json",
                     "--output", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["summary"]["unknown_classes"] == 0
    assert payload["summary"]["problems"] == 0
    assert payload["edges"]
    for edge in payload["edges"]:
        assert edge["port"] in DECLARED_PORTS


def test_cli_ownership_report_gates_on_plants(tmp_path):
    out = tmp_path / "own.txt"
    assert cli_main([PLANTS_PATH, "--ownership-report",
                     "--output", str(out)]) == 1
    assert "NOT proven" in out.read_text()


def test_cli_stats_text_and_json(tmp_path):
    out = tmp_path / "stats.txt"
    cli_main([PLANTS_PATH, "--select", "MC2701", "--stats",
              "--output", str(out)])
    text = out.read_text()
    assert "per-rule stats" in text
    assert "MC2701" in text

    out_json = tmp_path / "stats.json"
    cli_main([PLANTS_PATH, "--select", "MC2701", "--stats",
              "--format", "json", "--output", str(out_json)])
    payload = json.loads(out_json.read_text())
    assert payload["stats"]["MC2701"]["findings"] == 1
    assert payload["stats"]["MC2701"]["seconds"] >= 0.0


def test_stats_absent_without_flag(tmp_path):
    out = tmp_path / "plain.json"
    cli_main([PLANTS_PATH, "--select", "MC2701", "--format", "json",
              "--output", str(out)])
    assert "stats" not in json.loads(out.read_text())


# ------------------------------------------------- noqa / MC2901 interplay


def write_fixture(tmp_path, body):
    path = tmp_path / "fixture.py"
    path.write_text("from repro.sim.shard import shard_local\n\n" + body)
    return str(path)


CROSS_WRITE = """\
@shard_local
class Ctrl:
    def __init__(self, channel_id):
        self.channel_id = channel_id
        self.pressure = 0
        self.peers = []

    def _owner_of(self, addr):
        return self.peers[addr % len(self.peers)]

    def poke(self, addr):
        owner = self._owner_of(addr)
        owner.pressure += 1{marker}
"""


def test_noqa_suppresses_mc2701(tmp_path):
    path = write_fixture(tmp_path,
                         CROSS_WRITE.format(marker="  # noqa: MC2701"))
    report = engine.run([path], select=["MC2701", "MC2901"])
    assert report.ok
    assert [f.rule for f in report.suppressed] == ["MC2701"]


def test_stale_mc2701_noqa_is_flagged(tmp_path):
    # Same suppression on a line where MC2701 no longer fires -> MC2901.
    body = CROSS_WRITE.format(marker="")
    body = body.replace("owner.pressure += 1",
                        "self.pressure += 1  # noqa: MC2701")
    path = write_fixture(tmp_path, body)
    report = engine.run([path], select=["MC2701", "MC2901"])
    assert [f.rule for f in report.active] == ["MC2901"]


# ------------------------------------------------------ baseline round trip


def test_baseline_save_is_canonical_and_keeps_justifications(tmp_path):
    target = str(tmp_path / "baseline.json")
    report = engine.run([PLANTS_PATH], select=OWN_CODES)
    baseline_mod.save(target, report.findings)

    # Annotate one entry the way a reviewer would.
    payload = json.loads(Path(target).read_text())
    payload["entries"][0]["justification"] = "deliberate plant"
    kept = payload["entries"][0]["fingerprint"]
    Path(target).write_text(json.dumps(payload) + "\n")

    # Re-saving the same findings is byte-stable modulo the edit and
    # carries the justification over by fingerprint.
    baseline_mod.save(target, report.findings)
    first = Path(target).read_bytes()
    baseline_mod.save(target, report.findings)
    assert Path(target).read_bytes() == first
    assert first.endswith(b"\n")
    entries = {e["fingerprint"]: e
               for e in json.loads(first)["entries"]}
    assert entries[kept]["justification"] == "deliberate plant"

    # Round trip: everything saved is baselined on the next run.
    known = baseline_mod.load(target)
    applied = baseline_mod.apply(report.findings, known)
    assert all(f.baselined for f in applied)


def test_baseline_entry_order_is_content_sorted(tmp_path):
    target = str(tmp_path / "baseline.json")
    report = engine.run([PLANTS_PATH], select=OWN_CODES)
    baseline_mod.save(target, report.findings)
    entries = json.loads(Path(target).read_text())["entries"]
    keys = [(e["path"], e["rule"], e["snippet"], e["fingerprint"])
            for e in entries]
    assert keys == sorted(keys)


# ------------------------------------------------------------ dynamic side


@pytest.fixture
def own_audit(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN", "own")
    monkeypatch.delenv("REPRO_SIMSAN_OWN_SAMPLE", raising=False)
    simsan.install_ownership_audit()
    yield
    simsan.uninstall_ownership_audit()


def wired_pair(sim):
    a = plants.PlantController(sim, channel_id=0)
    b = plants.PlantController(sim, channel_id=1)
    a.peers = [a, b]
    b.peers = [a, b]
    return a, b


def test_audit_stamps_owners(own_audit):
    sim = Simulator()
    a, b = wired_pair(sim)
    assert getattr(a, OWNER_SLOT) == ("channel", 0)
    assert getattr(b, OWNER_SLOT) == ("channel", 1)


def test_dynamic_cross_shard_write_is_caught(own_audit):
    a, _b = wired_pair(Simulator())
    with pytest.raises(SanitizerError, match="MC2701"):
        a.poke(1)  # mutates b's counter from a's shard


def test_dynamic_ownership_leak_is_caught(own_audit):
    a, _b = wired_pair(Simulator())
    with pytest.raises(SanitizerError, match="MC2702"):
        a.steal(1)  # retains the handle to b


def test_dynamic_phase_violation_is_caught(own_audit):
    sim = Simulator()
    a, _b = wired_pair(sim)
    with pytest.raises(SanitizerError, match="MC2703"):
        a.kick()  # schedules the plant-grant port at phase 0


def test_declared_port_mutation_is_allowed(own_audit):
    a, b = wired_pair(Simulator())
    a.push_to(b)  # same write as poke, but inside a rendezvous port
    assert b.pressure == 1


def test_port_scheduled_at_rendezvous_phase_is_allowed(own_audit):
    sim = Simulator()
    a, _b = wired_pair(sim)
    a.pressure = 5
    sim.schedule(1, a.grant, label="plant-grant", phase=2)
    sim.run()
    assert a.pressure == 0


def test_sampling_skips_unsampled_mutations(own_audit, monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN_OWN_SAMPLE", "1000000")
    a, b = wired_pair(Simulator())
    a.poke(1)  # sampled out: no report
    assert b.pressure == 1


def test_real_components_run_clean_under_audit(own_audit):
    from repro import System, small_system
    from repro.isa import ops

    system = System(small_system())
    src_a = system.alloc(4096)
    dst_a = system.alloc(4096)

    def prog():
        yield ops.store(src_a, 64, data=b"x" * 64)
        yield ops.mclazy(dst_a, src_a, 4096)
        yield ops.load(dst_a, 8, blocking=True)
        yield ops.mcfree(dst_a, 4096)

    system.run_program(prog())  # no SanitizerError
    for channel_id, mc in enumerate(system.controllers):
        assert getattr(mc, OWNER_SLOT) == ("channel", channel_id)
        assert getattr(mc.channel, OWNER_SLOT) == ("channel", channel_id)


def test_uninstall_restores_everything(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN", "own")
    schedule_before = Simulator.schedule
    init_before = plants.PlantController.__dict__["__init__"]
    simsan.install_ownership_audit()
    assert Simulator.schedule is not schedule_before
    simsan.uninstall_ownership_audit()
    assert Simulator.schedule is schedule_before
    assert plants.PlantController.__dict__["__init__"] is init_before
    assert "__setattr__" not in plants.PlantController.__dict__
    assert not simsan._own_state["installed"]


def test_maybe_install_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    simsan.maybe_install_ownership()
    assert not simsan._own_state["installed"]
    monkeypatch.setenv("REPRO_SIMSAN", "own")
    assert simsan.mode() == "strict"
    assert simsan.ownership_enabled()
    simsan.maybe_install_ownership()
    try:
        assert simsan._own_state["installed"]
    finally:
        simsan.uninstall_ownership_audit()
