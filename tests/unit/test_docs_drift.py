"""docs/ANALYSIS.md must track the live rule registry.

The rule catalogue in the doc is hand-written; this test holds it to
``mc2-analyze --list-rules`` so a rule added, renamed, or reworded in
code cannot silently drift from its documentation.
"""

import re
from pathlib import Path

from repro.analysis.core import all_rules

DOC = Path(__file__).resolve().parents[2] / "docs" / "ANALYSIS.md"

#: | MC2601 | same-cycle-race | two same-phase handlers ... |
_TABLE_ROW = re.compile(r"^\|\s*(MC\d{4})\s*\|\s*([a-z0-9-]+)\s*\|\s*(.+?)\s*\|\s*$")
#: **MC2401 fork-global-write** — ...
_BOLD_ENTRY = re.compile(r"\*\*(MC\d{4})\s+([a-z0-9-]+)\*\*")
_ANY_CODE = re.compile(r"\bMC\d{4}\b")


def _normalize(text: str) -> str:
    # Markdown adds backticks and spacing around code spans; compare
    # the bare characters.
    return "".join(text.replace("`", "").split())


def _doc_entries():
    table, bold = {}, {}
    for line in DOC.read_text().splitlines():
        row = _TABLE_ROW.match(line)
        if row:
            table[row.group(1)] = (row.group(2), _normalize(row.group(3)))
        for code, name in _BOLD_ENTRY.findall(line):
            bold[code] = name
    return table, bold


def test_every_rule_is_documented():
    table, bold = _doc_entries()
    documented = set(table) | set(bold)
    registry = {rule.code for rule in all_rules()}
    missing = registry - documented
    assert not missing, f"rules absent from docs/ANALYSIS.md: {sorted(missing)}"


def test_doc_mentions_no_unknown_rules():
    registry = {rule.code for rule in all_rules()}
    mentioned = set(_ANY_CODE.findall(DOC.read_text()))
    # Prose may reference families as MC2xxx; only concrete codes count.
    unknown = {code for code in mentioned if code in mentioned} - registry
    assert not unknown, f"docs reference unregistered rules: {sorted(unknown)}"


def test_table_rows_match_registry_name_and_summary():
    table, bold = _doc_entries()
    by_code = {rule.code: rule for rule in all_rules()}
    for code, (name, summary) in table.items():
        rule = by_code[code]
        assert name == rule.name, f"{code}: doc name {name!r} != {rule.name!r}"
        assert summary == _normalize(rule.summary), \
            f"{code}: doc summary drifted from registry"
    for code, name in bold.items():
        assert name == by_code[code].name, \
            f"{code}: doc name {name!r} != {by_code[code].name!r}"
