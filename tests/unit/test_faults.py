"""Unit tests for the fault-injection subsystem (`repro.faults`).

Covers the SEC-DED ECC model, the fault-spec parser, the deterministic
injector (link faults, structure drops), the livelock watchdog, the
System snapshot/post-mortem plumbing, and end-to-end poison containment
through the (MC)² copy paths.
"""

import random

import pytest

from repro import System, small_system
from repro.common.errors import FaultSpecError, LivelockError
from repro.common.units import CACHELINE_SIZE
from repro.faults import (EccModel, EccOutcome, FaultInjector, Watchdog,
                          classify, from_specs, parse_fault_spec)
from repro.isa import ops
from repro.sim.engine import Simulator
from repro.sw.memcpy import memcpy_lazy_ops

CL = CACHELINE_SIZE


def fault_stat(system, name):
    return system.stats.children["faults"].counters[name].value


def ecc_stat(system, name):
    return (system.stats.children["faults"].children["ecc"]
            .counters[name].value)


class TestEccClassify:
    def test_single_bit_is_corrected(self):
        assert classify(1) is EccOutcome.CORRECTED

    def test_double_bit_is_detected(self):
        assert classify(2) is EccOutcome.DETECTED

    def test_three_plus_bits_are_silent(self):
        assert classify(3) is EccOutcome.SILENT
        assert classify(7) is EccOutcome.SILENT

    def test_zero_or_negative_rejected(self):
        with pytest.raises(ValueError):
            classify(0)
        with pytest.raises(ValueError):
            classify(-2)


class TestEccModel:
    def _fresh(self):
        system = System(small_system())
        addr = system.alloc(4096, align=4096)
        system.backing.fill(addr, 4096, 0xA5)
        return system, addr

    def test_corrected_leaves_data_intact(self):
        system, addr = self._fresh()
        model = EccModel(system.backing)
        outcome = model.corrupt_line(addr, 1, random.Random(0))
        assert outcome is EccOutcome.CORRECTED
        assert system.backing.read_line(addr) == b"\xA5" * CL
        assert not system.backing.line_poisoned(addr)
        assert model.stats.counters["corrected"].value == 1

    def test_detected_corrupts_and_poisons(self):
        system, addr = self._fresh()
        model = EccModel(system.backing)
        outcome = model.corrupt_line(addr + 8, 2, random.Random(0))
        assert outcome is EccOutcome.DETECTED
        # The flip is applied at line granularity regardless of offset.
        line = system.backing.read_line(addr)
        assert line != b"\xA5" * CL
        assert system.backing.line_poisoned(addr)
        assert model.stats.counters["detected"].value == 1

    def test_silent_corrupts_without_poison(self):
        system, addr = self._fresh()
        model = EccModel(system.backing)
        outcome = model.corrupt_line(addr, 3, random.Random(0))
        assert outcome is EccOutcome.SILENT
        line = system.backing.read_line(addr)
        flipped = sum(bin(a ^ b).count("1")
                      for a, b in zip(line, b"\xA5" * CL))
        assert flipped == 3
        assert not system.backing.line_poisoned(addr)
        assert model.stats.counters["silent"].value == 1


class TestSpecParser:
    def test_bitflip_with_hex_address(self):
        spec = parse_fault_spec("bitflip:addr=0x1000,bits=2,at=5000")
        assert spec == {"kind": "bitflip", "addr": 0x1000,
                        "bits": 2, "at": 5000}

    def test_probability_parses_as_float(self):
        assert parse_fault_spec("pkt-drop:p=0.01")["p"] == 0.01

    def test_kind_without_fields(self):
        assert parse_fault_spec("ctt-drop") == {"kind": "ctt-drop"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_fault_spec("meteor-strike:at=1")

    def test_malformed_field_rejected(self):
        with pytest.raises(FaultSpecError, match="malformed"):
            parse_fault_spec("pkt-drop:p")

    def test_duplicate_field_rejected(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            parse_fault_spec("bitflip:addr=1,addr=2")

    def test_foreign_field_rejected(self):
        with pytest.raises(FaultSpecError, match="not valid"):
            parse_fault_spec("pkt-drop:cycles=40")

    def test_unparseable_value_rejected(self):
        with pytest.raises(FaultSpecError, match="cannot parse"):
            parse_fault_spec("bitflip:addr=banana")

    def test_bitflip_requires_addr(self):
        with pytest.raises(FaultSpecError, match="requires addr"):
            parse_fault_spec("bitflip:bits=2")

    def test_probability_range_checked(self):
        with pytest.raises(FaultSpecError, match="outside"):
            parse_fault_spec("pkt-drop:p=1.5")


class TestInjector:
    def _copy_system(self, **overrides):
        system = System(small_system(**overrides))
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.backing.fill(src, 4096, 0x5C)
        return system, src, dst

    def test_same_seed_same_corruption(self):
        images = []
        for _ in range(2):
            system, src, _dst = self._copy_system()
            injector = FaultInjector(system, seed=1234)
            injector.flip_bits(src, bits=3)
            images.append(system.backing.read_line(src))
        assert images[0] == images[1]
        assert images[0] != b"\x5C" * CL

    def test_install_and_uninstall(self):
        system, _src, _dst = self._copy_system()
        injector = FaultInjector(system).install()
        assert system.interconnect.fault_hook == injector._packet_fault
        injector.uninstall()
        assert system.interconnect.fault_hook is None

    def test_packet_delays_slow_the_run_and_are_counted(self):
        def run(delay_p):
            system, src, dst = self._copy_system()
            injector = FaultInjector(system, seed=7).install()
            injector.pkt_delay_p = delay_p
            injector.pkt_delay_cycles = 40

            def prog():
                yield from memcpy_lazy_ops(system, dst, src, 4096)
                yield ops.load(dst, 8, blocking=True)

            cycles = system.run_program(prog())
            system.drain()
            assert system.read_memory(dst, 4096) == b"\x5C" * 4096
            return cycles, fault_stat(system, "pkt_delays")

        healthy_cycles, healthy_count = run(0.0)
        faulty_cycles, faulty_count = run(1.0)
        assert healthy_count == 0
        assert faulty_count > 0
        assert faulty_cycles > healthy_cycles

    def test_retransmissions_preserve_copy_semantics(self):
        system, src, dst = self._copy_system()
        injector = FaultInjector(system, seed=3).install()
        injector.pkt_drop_p = 0.2

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            for off in range(0, 4096, CL):
                yield ops.load(dst + off, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 4096) == b"\x5C" * 4096
        assert fault_stat(system, "pkt_retransmits") > 0

    def test_duplicate_deliveries_are_idempotent(self):
        system, src, dst = self._copy_system()
        injector = FaultInjector(system, seed=11).install()
        injector.pkt_dup_p = 1.0

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            for off in range(0, 4096, CL):
                yield ops.store(src + off, CL, data=b"\x22" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(src + off)
            yield ops.mfence()
            yield ops.load(dst, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 4096) == b"\x5C" * 4096
        assert system.read_memory(src, 4096) == b"\x22" * 4096
        assert fault_stat(system, "pkt_dups") > 0

    def test_ctt_drop_loses_tracking(self):
        system, src, dst = self._copy_system()
        injector = FaultInjector(system, seed=0)
        assert not injector.drop_random_ctt_entry()  # empty table
        system.run_program(memcpy_lazy_ops(system, dst, src, 4096))
        before = len(system.ctt)
        assert before >= 1
        assert injector.drop_random_ctt_entry()
        assert len(system.ctt) < before
        assert fault_stat(system, "ctt_drops") == 1

    def test_bpq_drop_without_parked_writes(self):
        system, _src, _dst = self._copy_system()
        injector = FaultInjector(system, seed=0)
        assert not injector.drop_random_bpq_entry()
        assert fault_stat(system, "bpq_drops") == 0

    def test_from_specs_arms_knobs_and_events(self):
        system, src, _dst = self._copy_system()
        injector = from_specs(
            system,
            ["pkt-delay:p=0.5,cycles=10", f"bitflip:addr={src},bits=2"],
            seed=42)
        assert injector.installed
        assert injector.pkt_delay_p == 0.5
        assert injector.pkt_delay_cycles == 10
        # at= omitted means "now": the flip already landed.
        assert fault_stat(system, "bitflips") == 1
        assert system.backing.line_poisoned(src)
        assert ecc_stat(system, "detected") == 1

    def test_scheduled_bitflip_fires_at_cycle(self):
        system, src, _dst = self._copy_system()
        from_specs(system, [f"bitflip:addr={src},bits=2,at=500"], seed=0)
        assert not system.backing.line_poisoned(src)
        system.sim.run(until=1_000)
        assert system.backing.line_poisoned(src)


class TestWatchdog:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Watchdog(check_every=0)
        with pytest.raises(ValueError):
            Watchdog(stall_checks=0)

    def test_zero_time_churn_raises_with_post_mortem(self):
        sim = Simulator()
        sim.watchdog = Watchdog(
            snapshot_fn=lambda: {"widgets": 42},
            check_every=100, stall_checks=2)

        def spin():
            sim.schedule(0, spin, label="spinner")

        sim.schedule(0, spin, label="spinner")
        with pytest.raises(LivelockError) as excinfo:
            sim.run(max_events=1_000_000)
        assert "clock stuck" in str(excinfo.value)
        assert "spinner" in excinfo.value.post_mortem
        assert "widgets: 42" in excinfo.value.post_mortem

    def test_slow_progress_is_not_a_livelock(self):
        sim = Simulator()
        sim.watchdog = Watchdog(check_every=10, stall_checks=2)
        state = {"left": 500}

        def crawl():
            state["left"] -= 1
            if state["left"]:
                sim.schedule(1, crawl, label="crawler")

        sim.schedule(1, crawl, label="crawler")
        sim.run()
        assert state["left"] == 0

    def test_event_budget_post_mortem(self):
        sim = Simulator()
        sim.watchdog = Watchdog(check_every=1_000_000, stall_checks=3)

        def spin():
            sim.schedule(0, spin, label="spinner")

        sim.schedule(0, spin, label="spinner")
        with pytest.raises(LivelockError) as excinfo:
            sim.run(max_events=50)
        assert "event budget" in excinfo.value.post_mortem
        assert "spinner" in excinfo.value.post_mortem


class TestSystemIntegration:
    def test_snapshot_reports_machine_state(self):
        system = System(small_system())
        snap = system.snapshot()
        for key in ("cycle", "events_fired", "events_pending",
                    "queue_labels", "ctt_entries", "ctt_occupancy",
                    "poisoned_lines"):
            assert key in snap
        assert "mc0_bpq" in snap
        assert "mc1_bpq" in snap
        assert snap["poisoned_lines"] == 0

    def test_attach_watchdog_arms_simulator(self):
        system = System(small_system())
        watchdog = system.attach_watchdog(check_every=10, stall_checks=2)
        assert system.sim.watchdog is watchdog
        assert watchdog.snapshot_fn == system.snapshot

    def test_watchdog_does_not_disturb_healthy_runs(self):
        def run(armed):
            system = System(small_system())
            src = system.alloc(4096, align=4096)
            dst = system.alloc(4096, align=4096)
            system.backing.fill(src, 4096, 0x77)
            if armed:
                system.attach_watchdog()

            def prog():
                yield from memcpy_lazy_ops(system, dst, src, 4096)
                yield ops.load(dst, 8, blocking=True)

            cycles = system.run_program(prog())
            system.drain()
            return cycles, system.read_memory(dst, 4096)

        assert run(True) == run(False)


class TestPoisonContainment:
    def test_poisoned_source_taints_bounced_destination(self):
        system = System(small_system())
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.backing.fill(src, 4096, 0x5C)
        injector = FaultInjector(system, seed=0)
        injector.flip_bits(src, bits=2)
        assert system.backing.line_poisoned(src)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.load(dst, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        # The corrupted line travelled to the destination with its
        # poison; the clean remainder of the copy stayed clean.
        poisoned = system.poisoned_lines()
        assert dst in poisoned
        assert dst + CL not in system.backing.poisoned_lines
        assert system.read_memory(dst + CL, 4096 - CL) == \
            b"\x5C" * (4096 - CL)

    def test_tracked_destination_counts_as_poisoned(self):
        system = System(small_system())
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        FaultInjector(system, seed=0).flip_bits(src + 2 * CL, bits=2)
        system.run_program(memcpy_lazy_ops(system, dst, src, 4096))
        # Nothing materialized yet, but an architectural read of the
        # tracked destination would observe the poisoned source line.
        assert dst + 2 * CL in system.poisoned_lines()

    def test_clean_overwrite_clears_poison(self):
        system = System(small_system())
        addr = system.alloc(4096, align=4096)
        FaultInjector(system, seed=0).flip_bits(addr, bits=2)
        assert system.backing.line_poisoned(addr)

        def prog():
            yield ops.store(addr, CL, data=b"\x00" * CL)
            yield ops.clwb(addr)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert not system.backing.line_poisoned(addr)
        assert addr not in system.poisoned_lines()

    def test_silent_corruption_leaves_no_trace(self):
        system = System(small_system())
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.backing.fill(src, 4096, 0x5C)
        FaultInjector(system, seed=0).flip_bits(src, bits=3)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.load(dst, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        # The hardware cannot see a 3+ bit alias: data is wrong but no
        # line is poisoned.  (This is what the oracle suite catches.)
        assert system.read_memory(dst, CL) != b"\x5C" * CL
        assert system.poisoned_lines() == set()
