"""Unit tests for the copy-engine abstraction (sw/engine.py)."""

import pytest

from repro import System, small_system
from repro.common.units import HUGE_PAGE_SIZE, KB, PAGE_SIZE
from repro.isa.ops import OpKind
from repro.sw.engine import EagerEngine, KernelEagerEngine, LazyEngine
from repro.workloads.common import fill_pattern


def build():
    return System(small_system())


def pattern(n):
    return bytes((i * 23 + 11) & 0xFF for i in range(n))


class TestLazyEngine:
    def test_min_lazy_threshold(self):
        system = build()
        engine = LazyEngine(system, min_lazy=1 * KB)
        src = system.alloc(8 * KB, align=PAGE_SIZE)
        dst = system.alloc(8 * KB, align=PAGE_SIZE)
        small = list(engine.copy_ops(dst, src, 512))
        large = list(engine.copy_ops(dst, src, 2 * KB))
        assert not any(o.kind is OpKind.MCLAZY for o in small)
        assert any(o.kind is OpKind.MCLAZY for o in large)

    def test_free_ops_yield_mcfree(self):
        system = build()
        engine = LazyEngine(system)
        assert [o.kind for o in engine.free_ops(0x4000, 4096)] == \
            [OpKind.MCFREE]

    def test_kernel_page_size_single_mclazy_for_huge_page(self):
        system = System(small_system(dram_size=64 * 1024 * 1024))
        engine = LazyEngine(system, page_size=HUGE_PAGE_SIZE,
                            clwb_sources=False)
        src = system.alloc(HUGE_PAGE_SIZE, align=HUGE_PAGE_SIZE)
        dst = system.alloc(HUGE_PAGE_SIZE, align=HUGE_PAGE_SIZE)
        mclazys = [o for o in engine.copy_ops(dst, src, HUGE_PAGE_SIZE)
                   if o.kind is OpKind.MCLAZY]
        assert len(mclazys) == 1
        assert mclazys[0].size == HUGE_PAGE_SIZE

    def test_kernel_paged_copy_data_exact(self):
        system = build()
        engine = LazyEngine(system, page_size=PAGE_SIZE,
                            clwb_sources=False)
        src = system.alloc(8 * KB, align=PAGE_SIZE)
        dst = system.alloc(8 * KB, align=PAGE_SIZE)
        data = pattern(8 * KB)
        system.backing.write(src, data)
        system.run_program(engine.copy_ops(dst, src, 8 * KB))
        system.drain()
        assert system.read_memory(dst, 8 * KB) == data


class TestKernelEagerEngine:
    def test_line_aligned_uses_bulk_copy(self):
        system = build()
        engine = KernelEagerEngine(system)
        src = system.alloc(4 * KB, align=PAGE_SIZE)
        dst = system.alloc(4 * KB, align=PAGE_SIZE)
        kinds = [o.kind for o in engine.copy_ops(dst, src, 4 * KB)]
        assert OpKind.BULK_COPY in kinds
        assert OpKind.LOAD not in kinds

    def test_relative_misalignment_falls_back_to_chunks(self):
        system = build()
        engine = KernelEagerEngine(system)
        src = system.alloc(4 * KB, align=PAGE_SIZE) + 8
        dst = system.alloc(4 * KB, align=PAGE_SIZE)
        kinds = [o.kind for o in engine.copy_ops(dst, src, 1 * KB)]
        assert OpKind.BULK_COPY not in kinds
        assert OpKind.LOAD in kinds

    def test_sub_line_tail_copied(self):
        system = build()
        engine = KernelEagerEngine(system)
        src = system.alloc(4 * KB, align=PAGE_SIZE)
        dst = system.alloc(4 * KB, align=PAGE_SIZE)
        data = pattern(200)
        system.backing.write(src, data)
        system.run_program(engine.copy_ops(dst, src, 200))
        system.drain()
        system.hierarchy.flush_all()
        system.drain()
        assert system.read_memory(dst, 200) == data


class TestEngineAccessPassthrough:
    def test_reads_and_writes_are_plain_ops(self):
        system = build()
        engine = EagerEngine(system)
        reads = list(engine.read_ops(0x4000, 8))
        writes = list(engine.write_ops(0x4000, 8, data=b"x" * 8))
        nt = list(engine.write_ops(0x4000, 64, nontemporal=True))
        assert [o.kind for o in reads] == [OpKind.LOAD]
        assert [o.kind for o in writes] == [OpKind.STORE]
        assert [o.kind for o in nt] == [OpKind.NT_STORE]
