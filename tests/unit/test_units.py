"""Unit tests for repro.common.units."""

import pytest

from repro.common import units


class TestConversions:
    def test_ns_to_cycles_rounds_up(self):
        assert units.ns_to_cycles(1.0) == 4
        assert units.ns_to_cycles(0.79) == 4  # CTT latency: 3.16 -> 4
        assert units.ns_to_cycles(0.25) == 1

    def test_ns_to_cycles_exact(self):
        assert units.ns_to_cycles(2.0) == 8

    def test_cycles_to_ns_roundtrip(self):
        assert units.cycles_to_ns(8) == 2.0

    def test_cycles_to_us(self):
        assert units.cycles_to_us(4000) == 1.0

    def test_custom_clock(self):
        assert units.ns_to_cycles(1.0, clock_ghz=2.0) == 2

    def test_exact_boundary_no_float_inflation(self):
        # 0.1 * 30.0 floats to 3.0000000000000004; the exact product is
        # 3 cycles and must not ceil to 4.
        assert units.ns_to_cycles(0.1, clock_ghz=30.0) == 3
        # 0.3 * 10.0 floats to 2.9999999999999996; still exactly 3.
        assert units.ns_to_cycles(0.3, clock_ghz=10.0) == 3
        # 0.7 * 10.0 floats low (6.999...); must still be 7, not 7+1
        # from a naive int()+1.
        assert units.ns_to_cycles(0.7, clock_ghz=10.0) == 7

    def test_fractional_boundary_rounds_up_once(self):
        # Just past a boundary rounds up by exactly one cycle.
        assert units.ns_to_cycles(0.2500000001) == 2
        assert units.ns_to_cycles(0.11, clock_ghz=30.0) == 4

    def test_integer_inputs(self):
        assert units.ns_to_cycles(3) == 12
        assert units.ns_to_cycles(5, clock_ghz=3) == 15

    def test_zero(self):
        assert units.ns_to_cycles(0.0) == 0


class TestAlignment:
    def test_align_down(self):
        assert units.align_down(100, 64) == 64
        assert units.align_down(64, 64) == 64
        assert units.align_down(63, 64) == 0

    def test_align_up(self):
        assert units.align_up(100, 64) == 128
        assert units.align_up(64, 64) == 64
        assert units.align_up(0, 64) == 0

    def test_align_rem_matches_paper_macro(self):
        # ALIGN_REM returns bytes needed to reach the next boundary,
        # zero when already aligned (Fig. 8).
        assert units.align_rem(0, 64) == 0
        assert units.align_rem(1, 64) == 63
        assert units.align_rem(63, 64) == 1
        assert units.align_rem(64, 64) == 0

    def test_is_aligned(self):
        assert units.is_aligned(128, 64)
        assert not units.is_aligned(130, 64)

    def test_cacheline_of(self):
        assert units.cacheline_of(130) == 128

    @pytest.mark.parametrize("addr,size,expected", [
        (0, 0, 0),
        (0, 1, 1),
        (0, 64, 1),
        (0, 65, 2),
        (63, 2, 2),
        (64, 64, 1),
        (10, 128, 3),
    ])
    def test_cachelines_spanned(self, addr, size, expected):
        assert units.cachelines_spanned(addr, size) == expected


class TestPrettySize:
    def test_bytes(self):
        assert units.pretty_size(64) == "64B"

    def test_kb(self):
        assert units.pretty_size(4096) == "4KB"

    def test_mb(self):
        assert units.pretty_size(2 * 1024 * 1024) == "2MB"

    def test_non_multiple_falls_back_to_bytes(self):
        assert units.pretty_size(1500) == "1500B"
