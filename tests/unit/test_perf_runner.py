"""Unit tests for the parallel sweep runner (repro.perf.runner)."""

import os

from repro.perf.cache import SimCache
from repro.perf.runner import SimPoint, jobs_from_env, sim_map

# Points must be module-level so they pickle into fork workers.


def square(x):
    return {"x": x, "sq": x * x}


def with_kwargs(x, offset=0):
    return x + offset


def record_env(_i):
    # Deliberately ambient: this probe *verifies* worker env pinning.
    return {"worker": os.environ.get("REPRO_PERF_WORKER", ""),  # noqa: MC2402
            "jobs": os.environ.get("REPRO_JOBS", "")}  # noqa: MC2402


def unkeyable_arg(obj):  # ``obj`` defeats canonicalization
    return 99


class TestSimMap:
    def test_results_in_input_order(self):
        points = [SimPoint(square, (i,)) for i in range(8)]
        results = sim_map(points, jobs=1, cache=False)
        assert [r["x"] for r in results] == list(range(8))

    def test_parallel_matches_serial(self):
        points = [SimPoint(with_kwargs, (i,), {"offset": 100})
                  for i in range(6)]
        serial = sim_map(points, jobs=1, cache=False)
        parallel = sim_map(points, jobs=2, cache=False)
        assert serial == parallel == [100 + i for i in range(6)]

    def test_workers_are_marked_serial(self):
        results = sim_map([SimPoint(record_env, (i,)) for i in range(4)],
                          jobs=2, cache=False)
        # Either forked workers (marked + forced serial) or the serial
        # fallback path (no marker) — both must agree across points.
        assert len({(r["worker"], r["jobs"]) for r in results}) <= 2
        for r in results:
            if r["worker"]:
                assert r["jobs"] == "1"

    def test_jobs_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_WORKER", raising=False)
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert jobs_from_env() == 4
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_PERF_WORKER", "1")
        assert jobs_from_env() == 1  # nested sweeps stay serial


class TestSimMapCaching:
    def test_second_run_hits_the_store(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(square, (i,)) for i in range(3)]
        first = sim_map(points, jobs=1, store=store)
        assert store.info()["entries"] == 3
        second = sim_map(points, jobs=1, store=store)
        assert first == second

    def test_cached_value_is_returned_not_recomputed(self, tmp_path):
        from repro.perf.cache import point_key
        store = SimCache(tmp_path)
        point = SimPoint(square, (5,))
        key = point_key(point.name, point.args, point.kwargs, "quick")
        store.put(key, point.name, {"x": 5, "sq": -1})  # poisoned entry
        [result] = sim_map([point], jobs=1, store=store, scale="quick")
        assert result == {"x": 5, "sq": -1}  # proof the store was used

    def test_unkeyable_points_still_run(self, tmp_path):
        store = SimCache(tmp_path)
        [result] = sim_map([SimPoint(unkeyable_arg, (object(),))],
                           jobs=1, store=store)
        assert result == 99
        assert store.info()["entries"] == 0  # nothing cached

    def test_cache_false_bypasses_store(self, tmp_path):
        store = SimCache(tmp_path)
        sim_map([SimPoint(square, (1,))], jobs=1, cache=False, store=store)
        assert store.info()["entries"] == 0

    def test_scale_partitions_the_store(self, tmp_path):
        store = SimCache(tmp_path)
        sim_map([SimPoint(square, (1,))], jobs=1, store=store,
                scale="quick")
        sim_map([SimPoint(square, (1,))], jobs=1, store=store,
                scale="full")
        assert store.info()["entries"] == 2
