"""Unit tests for the parallel sweep runner (repro.perf.runner)."""

import os

import pytest

from repro.common.errors import ConfigError
from repro.perf.cache import SimCache
from repro.perf.runner import (SimPoint, jobs_from_env, policy_from_env,
                               sim_map)
from repro.resilience.report import SweepJournal, is_hole

# Points must be module-level so they pickle into fork workers.


def square(x):
    return {"x": x, "sq": x * x}


def with_kwargs(x, offset=0):
    return x + offset


def record_env(_i):
    # Deliberately ambient: this probe *verifies* worker env pinning.
    return {"worker": os.environ.get("REPRO_PERF_WORKER", ""),  # noqa: MC2402
            "jobs": os.environ.get("REPRO_JOBS", "")}  # noqa: MC2402


def unkeyable_arg(obj):  # ``obj`` defeats canonicalization
    return 99


def fail_at(x, threshold):
    if x >= threshold:
        raise ValueError(f"point {x} is poison")
    return x


class TestSimMap:
    def test_results_in_input_order(self):
        points = [SimPoint(square, (i,)) for i in range(8)]
        results = sim_map(points, jobs=1, cache=False)
        assert [r["x"] for r in results] == list(range(8))

    def test_parallel_matches_serial(self):
        points = [SimPoint(with_kwargs, (i,), {"offset": 100})
                  for i in range(6)]
        serial = sim_map(points, jobs=1, cache=False)
        parallel = sim_map(points, jobs=2, cache=False)
        assert serial == parallel == [100 + i for i in range(6)]

    def test_workers_are_marked_serial(self):
        results = sim_map([SimPoint(record_env, (i,)) for i in range(4)],
                          jobs=2, cache=False)
        # Either forked workers (marked + forced serial) or the serial
        # fallback path (no marker) — both must agree across points.
        assert len({(r["worker"], r["jobs"]) for r in results}) <= 2
        for r in results:
            if r["worker"]:
                assert r["jobs"] == "1"

    def test_jobs_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_WORKER", raising=False)
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert jobs_from_env() == 4
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_PERF_WORKER", "1")
        assert jobs_from_env() == 1  # nested sweeps stay serial


class TestSimMapCaching:
    def test_second_run_hits_the_store(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(square, (i,)) for i in range(3)]
        first = sim_map(points, jobs=1, store=store)
        assert store.info()["entries"] == 3
        second = sim_map(points, jobs=1, store=store)
        assert first == second

    def test_cached_value_is_returned_not_recomputed(self, tmp_path):
        from repro.perf.cache import point_key
        store = SimCache(tmp_path)
        point = SimPoint(square, (5,))
        key = point_key(point.name, point.args, point.kwargs, "quick")
        store.put(key, point.name, {"x": 5, "sq": -1})  # poisoned entry
        [result] = sim_map([point], jobs=1, store=store, scale="quick")
        assert result == {"x": 5, "sq": -1}  # proof the store was used

    def test_unkeyable_points_still_run(self, tmp_path):
        store = SimCache(tmp_path)
        [result] = sim_map([SimPoint(unkeyable_arg, (object(),))],
                           jobs=1, store=store)
        assert result == 99
        assert store.info()["entries"] == 0  # nothing cached

    def test_cache_false_bypasses_store(self, tmp_path):
        store = SimCache(tmp_path)
        sim_map([SimPoint(square, (1,))], jobs=1, cache=False, store=store)
        assert store.info()["entries"] == 0

    def test_scale_partitions_the_store(self, tmp_path):
        store = SimCache(tmp_path)
        sim_map([SimPoint(square, (1,))], jobs=1, store=store,
                scale="quick")
        sim_map([SimPoint(square, (1,))], jobs=1, store=store,
                scale="full")
        assert store.info()["entries"] == 2


class TestSweepPolicies:
    def test_policy_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_POLICY", raising=False)
        assert policy_from_env() == "strict"
        monkeypatch.setenv("REPRO_SWEEP_POLICY", "partial")
        assert policy_from_env() == "partial"
        monkeypatch.setenv("REPRO_SWEEP_POLICY", "bogus")
        assert policy_from_env() == "strict"

    def test_invalid_policy_argument_rejected(self):
        with pytest.raises(ConfigError):
            sim_map([], policy="yolo")

    def test_strict_serial_raises_the_original_exception(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(fail_at, (i, 2)) for i in range(4)]
        with pytest.raises(ValueError, match="point 2 is poison"):
            sim_map(points, jobs=1, store=store)

    def test_serial_partial_progress_persists(self, tmp_path):
        # Satellite: completed points are cached as they finish, so the
        # failed sweep's survivors are hits on the next run.
        store = SimCache(tmp_path)
        points = [SimPoint(fail_at, (i, 2)) for i in range(4)]
        with pytest.raises(ValueError):
            sim_map(points, jobs=1, store=store)
        assert store.info()["entries"] == 2

    def test_partial_policy_returns_explicit_holes(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(fail_at, (i, 2)) for i in range(4)]
        results = sim_map(points, jobs=1, store=store, policy="partial")
        assert results[0] == 0 and results[1] == 1
        assert is_hole(results[2]) and is_hole(results[3])
        assert results[2].kind == "error"
        assert "poison" in results[2].cause
        assert store.info()["entries"] == 2  # holes are never cached

    def test_strict_failure_writes_report_and_journal(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(fail_at, (i, 1)) for i in range(3)]
        with pytest.raises(ValueError):
            sim_map(points, jobs=1, store=store)
        [report_path] = list(store.sweeps_dir.glob("*.report.json"))
        from repro.resilience.report import load_report
        payload = load_report(report_path)
        assert payload["policy"] == "strict"
        assert payload["failures"][0]["index"] == 1
        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        sweep_id = journal_path.name.split(".")[0]
        state = SweepJournal(store.sweeps_dir, sweep_id).load()
        assert state["done_indices"] == {0}
        assert len(state["quarantined"]) == 1


class TestSweepJournalWiring:
    def test_clean_sweep_journal_is_ended(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(square, (i,)) for i in range(3)]
        sim_map(points, jobs=1, store=store)
        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        sweep_id = journal_path.name.split(".")[0]
        state = SweepJournal(store.sweeps_dir, sweep_id).load()
        assert state["ended"]
        assert state["done_indices"] == {0, 1, 2}

    def test_warm_sweep_touches_no_journal(self, tmp_path):
        store = SimCache(tmp_path)
        points = [SimPoint(square, (i,)) for i in range(3)]
        sim_map(points, jobs=1, store=store)
        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        before = journal_path.read_bytes()
        sim_map(points, jobs=1, store=store)  # all hits: no fresh work
        assert journal_path.read_bytes() == before

    def test_resume_note_on_interrupted_journal(self, tmp_path, capsys):
        store = SimCache(tmp_path)
        points = [SimPoint(square, (i,)) for i in range(3)]
        sim_map(points, jobs=1, store=store)
        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        # Strip the end record, as if the first run was killed mid-sweep,
        # and drop the cached entries so the next run has fresh work.
        lines = journal_path.read_text(encoding="utf-8").splitlines(
            keepends=True)
        journal_path.write_text(
            "".join(line for line in lines if '"event": "end"' not in line),
            encoding="utf-8")
        for entry in list(store._entry_files()):
            entry.unlink()
        capsys.readouterr()
        results = sim_map(points, jobs=1, store=store)
        assert [r["x"] for r in results] == [0, 1, 2]
        assert "resuming interrupted sweep" in capsys.readouterr().err
