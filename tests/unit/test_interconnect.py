"""Unit tests for the memory interconnect."""

import pytest

from repro.common import params
from repro.dram.address_map import AddressMap
from repro.interconnect.bus import Interconnect
from repro.mem.backing_store import BackingStore
from repro.memctrl.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.stats import StatGroup

CL = 64


@pytest.fixture
def rig():
    sim = Simulator()
    amap = AddressMap(channels=2, banks_per_channel=16, row_bytes=8192)
    backing = BackingStore(1 << 22)
    mcs = [MemoryController(sim, ch, amap, backing, StatGroup(f"mc{ch}"))
           for ch in range(2)]
    xbar = Interconnect(sim, mcs, StatGroup("xbar"))
    return sim, xbar, mcs, backing


class TestRouting:
    def test_routes_by_cacheline_interleave(self, rig):
        sim, xbar, mcs, backing = rig
        received = []
        for ch, mc in enumerate(mcs):
            orig = mc.receive
            mc.receive = (lambda pkt, ch=ch, orig=orig:
                          (received.append((ch, pkt.addr)), orig(pkt))[1])
        xbar.send(Packet(PacketType.READ, 0, CL))
        xbar.send(Packet(PacketType.READ, CL, CL))
        sim.run()
        assert (0, 0) in received
        assert (1, CL) in received

    def test_constant_latency(self, rig):
        sim, xbar, mcs, backing = rig
        arrivals = []
        mcs[0].receive = lambda pkt: arrivals.append(sim.now)
        xbar.send(Packet(PacketType.READ, 0, CL))
        sim.run()
        assert arrivals == [params.INTERCONNECT_HOP_CYCLES]


class TestOrdering:
    def test_deliveries_never_reorder(self, rig):
        """The FIFO property the MCLAZY consistency argument needs."""
        sim, xbar, mcs, backing = rig
        order = []
        packets = [Packet(PacketType.READ, i * CL, CL) for i in range(20)]
        seq = {id(pkt): i for i, pkt in enumerate(packets)}
        for mc in mcs:
            mc.receive = lambda pkt: order.append(seq[id(pkt)])
        # Issue at staggered times; some same-cycle.
        for i, pkt in enumerate(packets):
            sim.schedule(i // 3, lambda p=pkt: xbar.send(p))
        sim.run()
        assert order == sorted(order)

    def test_writeback_beats_mclazy(self, rig):
        """A write issued before MCLAZY must reach memory first."""
        sim, xbar, mcs, backing = rig
        order = []
        for mc in mcs:
            orig = mc.receive
            mc.receive = (lambda pkt, orig=orig:
                          (order.append(pkt.ptype), orig(pkt))[1])
        wb = Packet(PacketType.WRITE, 0, CL)
        wb.data = b"\x01" * CL
        lazy = Packet(PacketType.MCLAZY, 0, CL, src_addr=4096)
        xbar.send(wb)
        xbar.send(lazy)
        sim.run()
        assert order.index(PacketType.WRITE) < order.index(PacketType.MCLAZY)


class TestBroadcast:
    def test_control_packets_counted_as_broadcasts(self, rig):
        sim, xbar, mcs, backing = rig
        for mc in mcs:
            mc.receive = lambda pkt: pkt.complete(sim.now)
        xbar.send(Packet(PacketType.MCFREE, 0, 4096))
        sim.run()
        assert xbar.stats.counters["broadcasts"].value == 1
        assert xbar.stats.counters["packets"].value == 1
