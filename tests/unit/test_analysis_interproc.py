"""Tests for the interprocedural analyzer layers added in PR 4.

Covers the shared call-graph IR, the fork-safety (MC2401-MC2404) and
cache-soundness (MC2501-MC2503) rule families, suppression hygiene
(MC2901), the baseline ``--diff`` mode, and the SARIF round trip.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis import engine, sarif
from repro.analysis.callgraph import CallGraph, ProjectContext
from repro.analysis.cli import main as cli_main


def analyze_source(tmp_path, source, name="fixture.py", select=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return engine.run([str(path)], select=select)


def codes(report):
    return sorted(f.rule for f in report.findings)


SWEEP = ("\ndef sweep():\n"
         "    return sim_map([SimPoint(point, (i,)) for i in range(2)])\n")

# ------------------------------------------------------------------ fixtures
POSITIVE = {
    "MC2401": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "RESULTS = []\n\n"
               "def point(x):\n"
               "    RESULTS.append(x)\n"
               "    return {'x': x}\n" + SWEEP),
    "MC2402": ("import os\n"
               "from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    scale = os.environ.get('REPRO_SCALE', 'quick')\n"
               "    return {'x': x, 'scale': scale}\n" + SWEEP),
    "MC2403": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def sweep():\n"
               "    return sim_map([SimPoint(lambda x: {'x': x}, (1,))])\n"),
    "MC2404": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': x}\n\n"
               "def sweep(cfgs):\n"
               "    names = set(cfgs)\n"
               "    rows = []\n"
               "    for name in names:\n"
               "        rows.extend(sim_map([SimPoint(point, (name,))]))\n"
               "    return rows\n"),
    "MC2501": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "KNOB = {'v': 1}\n\n"
               "def tune(v):\n"
               "    KNOB['v'] = v\n\n"
               "def point(x):\n"
               "    return {'x': x, 'k': KNOB['v']}\n" + SWEEP),
    "MC2502": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return (x, x * x)\n" + SWEEP),
    "MC2503": ("import numpy\n"
               "from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': float(numpy.float64(x))}\n" + SWEEP),
}

NEGATIVE = {
    # State threaded through locals and return values, not globals.
    "MC2401": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    out = []\n"
               "    out.append(x)\n"
               "    return {'x': x, 'n': len(out)}\n" + SWEEP),
    # Ambient read happens in the parent; workers get it as a parameter.
    "MC2402": ("import os\n"
               "from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x, scale):\n"
               "    return {'x': x, 'scale': scale}\n\n"
               "def sweep():\n"
               "    scale = os.environ.get('REPRO_SCALE', 'quick')\n"
               "    return sim_map([SimPoint(point, (i, scale))\n"
               "                    for i in range(2)])\n"),
    "MC2403": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': x}\n" + SWEEP),
    "MC2404": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': x}\n\n"
               "def sweep(cfgs):\n"
               "    names = set(cfgs)\n"
               "    rows = []\n"
               "    for name in sorted(names):\n"
               "        rows.extend(sim_map([SimPoint(point, (name,))]))\n"
               "    return rows\n"),
    # Never-mutated module container: a constant table, not an input.
    "MC2501": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "TABLE = {'v': 1}\n\n"
               "def point(x):\n"
               "    return {'x': x, 'k': TABLE['v']}\n" + SWEEP),
    "MC2502": ("from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': x, 'sq': x * x}\n" + SWEEP),
    "MC2503": ("import math\n"
               "from repro.perf.runner import SimPoint, sim_map\n\n"
               "def point(x):\n"
               "    return {'x': math.sqrt(x)}\n" + SWEEP),
}


@pytest.mark.parametrize("code", sorted(POSITIVE))
def test_rule_flags_positive_fixture(tmp_path, code):
    report = analyze_source(tmp_path, POSITIVE[code], select=[code])
    assert codes(report) == [code], report.findings


@pytest.mark.parametrize("code", sorted(NEGATIVE))
def test_rule_silent_on_negative_fixture(tmp_path, code):
    report = analyze_source(tmp_path, NEGATIVE[code], select=[code])
    assert codes(report) == [], report.findings


def test_global_iterator_advance_is_a_write(tmp_path):
    # The sim.packet bug class: next() on a module-global itertools
    # counter mutates shared state from inside a worker.
    src = ("import itertools\n"
           "from repro.perf.runner import SimPoint, sim_map\n\n"
           "_ids = itertools.count()\n\n"
           "def point(x):\n"
           "    return {'x': x, 'id': next(_ids)}\n" + SWEEP)
    report = analyze_source(tmp_path, src, select=["MC2401"])
    assert codes(report) == ["MC2401"]
    assert "_ids" in report.findings[0].message


def test_next_on_local_iterator_is_clean(tmp_path):
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "def point(x):\n"
           "    it = iter(range(x))\n"
           "    return {'x': next(it, 0)}\n" + SWEEP)
    report = analyze_source(tmp_path, src, select=["MC2401"])
    assert codes(report) == []


def test_finding_message_names_the_worker_route(tmp_path):
    report = analyze_source(tmp_path, POSITIVE["MC2401"], select=["MC2401"])
    [finding] = report.findings
    assert "RESULTS" in finding.message and "point" in finding.message


def test_no_workers_means_no_worker_path_findings(tmp_path):
    # Global writes without any SimPoint dispatch: not this family's job.
    src = ("STATE = []\n\n"
           "def collect(x):\n"
           "    STATE.append(x)\n")
    for code in ("MC2401", "MC2402", "MC2501", "MC2502", "MC2503"):
        report = analyze_source(tmp_path, src, select=[code])
        assert codes(report) == [], code


def test_mc2403_nested_function_dispatch(tmp_path):
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "def sweep():\n"
           "    def point(x):\n"
           "        return {'x': x}\n"
           "    return sim_map([SimPoint(point, (1,))])\n")
    report = analyze_source(tmp_path, src, select=["MC2403"])
    assert codes(report) == ["MC2403"]
    assert "nested" in report.findings[0].message


def test_mc2403_fork_unsafe_resource_argument(tmp_path):
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "def point(x, handle):\n"
           "    return {'x': x}\n\n"
           "def sweep():\n"
           "    return sim_map([SimPoint(point, (1, open('data.txt')))])\n")
    report = analyze_source(tmp_path, src, select=["MC2403"])
    assert codes(report) == ["MC2403"]
    assert "open" in report.findings[0].message


def test_mc2403_relative_import_module_attr_is_clean(tmp_path):
    # ``plants.fn`` where ``plants`` is a relatively-imported module is a
    # module-level function, not a bound method dragging an object.
    src = ("from repro.perf.runner import SimPoint, sim_map\n"
           "from . import plants\n\n"
           "def sweep():\n"
           "    return sim_map([SimPoint(plants.fn, (1,))])\n")
    report = analyze_source(tmp_path, src, select=["MC2403"])
    assert codes(report) == []


def test_worker_facts_found_through_helper_calls(tmp_path):
    # The write sits two calls below the dispatched function.
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "LOG = []\n\n"
           "def helper(x):\n"
           "    LOG.append(x)\n\n"
           "def middle(x):\n"
           "    helper(x)\n\n"
           "def point(x):\n"
           "    middle(x)\n"
           "    return {'x': x}\n" + SWEEP)
    report = analyze_source(tmp_path, src, select=["MC2401"])
    assert codes(report) == ["MC2401"]
    assert "helper" in report.findings[0].message  # route names the culprit


def test_infra_packages_exempt_from_worker_rules(tmp_path):
    # Same source, but under src/repro/perf/: the orchestration layer.
    src = POSITIVE["MC2401"]
    path = tmp_path / "src" / "repro" / "perf" / "fixture.py"
    path.parent.mkdir(parents=True)
    path.write_text(src)
    report = engine.run([str(path)], select=["MC2401"])
    assert codes(report) == []


# ------------------------------------------------------------- call-graph IR
def test_callgraph_resolution_and_reachability(tmp_path):
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "class Engine:\n"
           "    def __init__(self):\n"
           "        self.t = 0\n"
           "    def step(self):\n"
           "        self.t += 1\n\n"
           "def helper(x):\n"
           "    return x + 1\n\n"
           "def point(x):\n"
           "    eng = Engine()\n"
           "    eng.step()\n"
           "    return {'x': helper(x)}\n" + SWEEP)
    path = tmp_path / "mod.py"
    path.write_text(src)
    modules = engine.parse_modules([str(path)])
    project = ProjectContext(modules)

    assert set(project.workers) == {"mod.point"}
    reached = project.reached
    # Same-module call, constructor edge, and bare-name method edge.
    assert "mod.helper" in reached
    assert "mod.Engine.__init__" in reached
    assert "mod.Engine.step" in reached
    assert project.route("mod.helper") == "point -> helper"


def test_callgraph_propagate_up(tmp_path):
    src = ("def leaf():\n"
           "    return 1\n\n"
           "def caller():\n"
           "    return leaf()\n\n"
           "def outsider():\n"
           "    return 2\n")
    path = tmp_path / "mod.py"
    path.write_text(src)
    modules = engine.parse_modules([str(path)])
    graph = CallGraph.build(modules)
    holds = graph.propagate_up(seed=lambda fn: fn.name == "leaf")
    assert holds == {"mod.leaf", "mod.caller"}


def test_nested_facts_deduplicated(tmp_path):
    # The write inside program() is attributed once, not once per level.
    src = ("from repro.perf.runner import SimPoint, sim_map\n\n"
           "TRACE = []\n\n"
           "def point(x):\n"
           "    def program():\n"
           "        TRACE.append(x)\n"
           "        yield 1\n"
           "    return {'x': x, 'n': sum(program())}\n" + SWEEP)
    report = analyze_source(tmp_path, src, select=["MC2401"])
    assert codes(report) == ["MC2401"]  # exactly one finding


# ------------------------------------------------------------ MC2901 hygiene
def test_stale_bare_noqa_flagged_on_full_run(tmp_path):
    report = analyze_source(tmp_path, "x = 1  # noqa\n")
    assert codes(report) == ["MC2901"]
    assert not report.findings[0].suppressed  # cannot self-suppress


def test_stale_coded_noqa_flagged(tmp_path):
    src = "def f(a, b):\n    return a + b  # noqa: MC2004\n"
    report = analyze_source(tmp_path, src, select=["MC2901", "MC2004"])
    assert codes(report) == ["MC2901"]


def test_active_suppression_not_flagged(tmp_path):
    src = "def f(a, b):\n    return a / 2 == b  # noqa: MC2004\n"
    report = analyze_source(tmp_path, src, select=["MC2901", "MC2004"])
    assert codes(report) == ["MC2004"]
    assert report.findings[0].suppressed


def test_foreign_tool_codes_left_alone(tmp_path):
    report = analyze_source(tmp_path, "import os  # noqa: F401\n")
    assert codes(report) == []


def test_unrun_code_is_indeterminate(tmp_path):
    # MC2004 did not run, so its suppression cannot be judged stale.
    src = "x = 1  # noqa: MC2004\n"
    report = analyze_source(tmp_path, src, select=["MC2901", "MC2003"])
    assert codes(report) == []


def test_bare_noqa_indeterminate_under_select(tmp_path):
    report = analyze_source(tmp_path, "x = 1  # noqa\n",
                            select=["MC2901", "MC2004"])
    assert codes(report) == []


def test_noqa_in_string_literal_is_data(tmp_path):
    report = analyze_source(tmp_path, 'MARKER = "x = 1  # noqa"\n')
    assert codes(report) == []


def test_noqa_mention_in_prose_comment_is_not_a_marker(tmp_path):
    src = "x = 1  # matched a `# noqa` comment earlier\n"
    report = analyze_source(tmp_path, src)
    assert codes(report) == []


# ---------------------------------------------------------------- --diff mode
@pytest.fixture
def diff_tree(tmp_path):
    src_file = tmp_path / "mod.py"
    src_file.write_text("def enqueue(item, queue=[]):\n"
                        "    queue.append(item)\n")
    base_file = tmp_path / "baseline.json"
    assert cli_main([str(src_file), "--baseline", str(base_file),
                     "--write-baseline"]) == 0
    return src_file, base_file


def test_diff_clean_against_baseline(diff_tree, capsys):
    src_file, base_file = diff_tree
    code = cli_main([str(src_file), "--baseline", str(base_file), "--diff"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 new finding(s)" in out


def test_diff_flags_only_new_findings(diff_tree, capsys):
    src_file, base_file = diff_tree
    src_file.write_text("import random\n\n"
                        "def enqueue(item, queue=[]):\n"
                        "    queue.append(item)\n\n"
                        "def pick(items):\n"
                        "    return random.choice(items)\n")
    code = cli_main([str(src_file), "--baseline", str(base_file), "--diff"])
    out = capsys.readouterr().out
    assert code == 1
    assert "+ " in out and "MC2002" in out
    assert "1 new finding(s)" in out
    assert "MC2005" not in out.replace("0 new", "")  # old debt not re-flagged


def test_diff_reports_fixed_entries(diff_tree, capsys):
    src_file, base_file = diff_tree
    src_file.write_text("def enqueue(item, queue=None):\n"
                        "    queue = queue or []\n"
                        "    queue.append(item)\n")
    code = cli_main([str(src_file), "--baseline", str(base_file), "--diff"])
    out = capsys.readouterr().out
    assert code == 0
    assert "- " in out and "MC2005" in out
    assert "1 fixed baseline entry" in out


def test_diff_without_baseline_file_treats_all_as_new(tmp_path, capsys):
    src_file = tmp_path / "mod.py"
    src_file.write_text("def enqueue(item, queue=[]):\n"
                        "    queue.append(item)\n")
    code = cli_main([str(src_file), "--baseline",
                     str(tmp_path / "missing.json"), "--diff"])
    assert code == 1
    assert "1 new finding(s)" in capsys.readouterr().out


# ------------------------------------------------------------------- --exclude
def test_exclude_drops_files(tmp_path):
    (tmp_path / "clean.py").write_text("x = 1\n")
    (tmp_path / "dirty.py").write_text("def f(q=[]):\n    q.append(1)\n")
    report = engine.run([str(tmp_path)],
                        exclude=[str(tmp_path / "dirty.py")])
    assert report.files_analyzed == 1
    assert codes(report) == []


def test_exclude_directory_prefix(tmp_path):
    sub = tmp_path / "plants"
    sub.mkdir()
    (sub / "bad.py").write_text("def f(q=[]):\n    q.append(1)\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    report = engine.run([str(tmp_path)], exclude=[str(sub)])
    assert report.files_analyzed == 1


# ------------------------------------------------------------ SARIF round trip
def _sample_findings(tmp_path):
    src = ("import time\n\n"
           "def tick(sim):\n"
           "    return time.time()\n\n"
           "def tock(sim):\n"
           "    return time.time()  # noqa: MC2001\n")
    path = tmp_path / "mod.py"
    path.write_text(src)
    report = engine.run([str(path)])
    assert report.findings, "fixture must produce findings"
    return report.findings


def test_sarif_required_fields(tmp_path):
    log = sarif.to_sarif(_sample_findings(tmp_path))
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    [run] = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "mc2-analyze"
    assert driver["rules"], "rule catalogue must be embedded"
    for rule in driver["rules"]:
        assert rule["id"] and rule["shortDescription"]["text"]
    for result in run["results"]:
        assert result["ruleId"]
        assert result["message"]["text"]
        [loc] = result["locations"]
        physical = loc["physicalLocation"]
        assert physical["artifactLocation"]["uri"]
        assert physical["region"]["startLine"] >= 1
        assert physical["region"]["startColumn"] >= 1
        assert result["partialFingerprints"]["mc2AnalyzeFingerprint/v1"]


def test_sarif_round_trip_is_lossless(tmp_path):
    findings = _sample_findings(tmp_path)
    assert sarif.to_findings(sarif.to_sarif(findings)) == findings


def test_sarif_round_trip_preserves_suppression_kinds(tmp_path):
    findings = _sample_findings(tmp_path)
    assert any(f.suppressed for f in findings)
    back = sarif.to_findings(sarif.to_sarif(findings))
    assert [f.suppressed for f in back] == [f.suppressed for f in findings]


def test_sarif_round_trip_through_json_text(tmp_path):
    findings = _sample_findings(tmp_path)
    assert sarif.to_findings(json.loads(sarif.dumps(findings))) == findings


def test_sarif_snippet_emitted(tmp_path):
    findings = _sample_findings(tmp_path)
    log = sarif.to_sarif(findings)
    regions = [r["locations"][0]["physicalLocation"]["region"]
               for r in log["runs"][0]["results"]]
    assert any("snippet" in region for region in regions)


# --------------------------------------------------- taint re-host regression
def test_mc2301_findings_unchanged_on_repo():
    # The re-hosted taint pass must not change verdicts on real code.
    src_repro = Path(__file__).resolve().parents[2] / "src" / "repro"
    report = engine.run([str(src_repro)], select=["MC2301"])
    assert codes(report) == []


def test_baseline_diff_helper_split(tmp_path):
    findings = _sample_findings(tmp_path)
    paired = baseline_mod.fingerprints(findings)
    known = {digest: {"rule": f.rule, "path": f.path}
             for f, digest in paired[:1]}
    new, fixed = baseline_mod.diff(findings, known)
    assert len(new) == len([f for f in findings if not f.suppressed]) - 1
    assert fixed == []
