"""Unit tests for the persistent sim-result cache (repro.perf.cache)."""

import json

import pytest

from repro.perf.cache import (MISS, SimCache, Unkeyable, cache_enabled,
                              canonicalize, code_stamp, point_key)
from repro.system.config import SystemConfig


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (1, 1.5, "x", True, None):
            assert canonicalize(value) == value

    def test_tuples_become_lists(self):
        assert canonicalize((1, (2, 3))) == [1, [2, 3]]

    def test_dict_keys_sorted(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]

    def test_config_encodes_field_by_field(self):
        out = canonicalize(SystemConfig(l1_size=1234))
        assert out["__dataclass__"].endswith("SystemConfig")
        assert out["fields"]["l1_size"] == 1234

    def test_unkeyable_raises(self):
        with pytest.raises(Unkeyable):
            canonicalize(object())
        with pytest.raises(Unkeyable):
            canonicalize({1: "non-string key"})


class TestPointKey:
    def test_stable_across_calls(self):
        a = point_key("f", (1,), {"size": 2}, "quick")
        b = point_key("f", (1,), {"size": 2}, "quick")
        assert a == b

    def test_distinguishes_everything(self):
        base = point_key("f", (1,), {"size": 2}, "quick")
        assert point_key("g", (1,), {"size": 2}, "quick") != base
        assert point_key("f", (2,), {"size": 2}, "quick") != base
        assert point_key("f", (1,), {"size": 3}, "quick") != base
        assert point_key("f", (1,), {"size": 2}, "full") != base

    def test_config_values_reach_the_key(self):
        small = point_key("f", (), {"config": SystemConfig(l1_size=1)},
                          "quick")
        large = point_key("f", (), {"config": SystemConfig(l1_size=2)},
                          "quick")
        assert small != large

    def test_code_stamp_is_hex_and_cached(self):
        assert code_stamp() == code_stamp()
        int(code_stamp(), 16)


class TestSimCache:
    def test_get_put_roundtrip(self, tmp_path):
        store = SimCache(tmp_path)
        key = "ab" + "0" * 62
        assert store.get(key) is MISS
        assert store.put(key, "f", {"cycles": 7})
        assert store.get(key) == {"cycles": 7}

    def test_unjsonable_value_is_refused(self, tmp_path):
        store = SimCache(tmp_path)
        key = "cd" + "0" * 62
        assert not store.put(key, "f", {"cycles": object()})
        assert store.get(key) is MISS

    def test_lossy_roundtrip_is_refused(self, tmp_path):
        # Tuples decode as lists — not bit-identical, so not cached.
        store = SimCache(tmp_path)
        key = "ef" + "0" * 62
        assert not store.put(key, "f", {"pair": (1, 2)})
        assert store.get(key) is MISS

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = SimCache(tmp_path)
        key = "12" + "0" * 62
        store.put(key, "f", [1, 2, 3])
        store._path(key).write_text("{not json", encoding="utf-8")
        assert store.get(key) is MISS

    def test_clear_and_info(self, tmp_path):
        store = SimCache(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "0" * 62, "f", i)
        info = store.info()
        assert info["entries"] == 3 and info["bytes"] > 0
        assert store.clear() == 3
        assert store.info()["entries"] == 0

    def test_files_are_valid_json_with_fn_name(self, tmp_path):
        store = SimCache(tmp_path)
        key = "34" + "0" * 62
        store.put(key, "repro.workloads.x", {"cycles": 1})
        data = json.loads(store._path(key).read_text())
        assert data["fn"] == "repro.workloads.x"


class TestQuarantine:
    def test_corrupt_entry_is_renamed_aside(self, tmp_path):
        store = SimCache(tmp_path)
        key = "56" + "0" * 62
        store.put(key, "f", {"cycles": 1})
        store._path(key).write_text("{not json", encoding="utf-8")
        assert store.get(key) is MISS
        assert not store._path(key).exists()
        assert store._path(key).with_suffix(".corrupt").exists()
        # The second read takes the cheap missing-file path.
        assert store.get(key) is MISS

    def test_wrong_shape_entry_is_quarantined(self, tmp_path):
        store = SimCache(tmp_path)
        key = "78" + "0" * 62
        path = store._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"unexpected": True}), encoding="utf-8")
        assert store.get(key) is MISS
        assert path.with_suffix(".corrupt").exists()

    def test_info_counts_quarantined(self, tmp_path):
        store = SimCache(tmp_path)
        key = "9a" + "0" * 62
        store.put(key, "f", 1)
        store._path(key).write_text("junk", encoding="utf-8")
        store.get(key)
        info = store.info()
        assert info["quarantined"] == 1
        assert info["entries"] == 0

    def test_clear_removes_quarantined(self, tmp_path):
        store = SimCache(tmp_path)
        key = "bc" + "0" * 62
        store.put(key, "f", 1)
        store._path(key).write_text("junk", encoding="utf-8")
        store.get(key)
        store.clear()
        assert store.info()["quarantined"] == 0


class TestStaleTmpSweep:
    def test_dead_writer_droppings_are_swept(self, tmp_path):
        store = SimCache(tmp_path)
        shard = tmp_path / "ab"
        shard.mkdir()
        # Pid 2**22+1 exceeds any real pid_max; never a live process.
        stale = shard / ("ab" + "0" * 62 + ".tmp.4194305")
        stale.write_text("torn", encoding="utf-8")
        unparsable = shard / ("ab" + "0" * 62 + ".tmp.bogus")
        unparsable.write_text("torn", encoding="utf-8")
        info = store.info()
        assert info["stale_tmp_swept"] == 2
        assert not stale.exists() and not unparsable.exists()

    def test_live_writer_tmp_is_kept(self, tmp_path):
        import os
        store = SimCache(tmp_path)
        shard = tmp_path / "cd"
        shard.mkdir()
        mine = shard / ("cd" + "0" * 62 + f".tmp.{os.getpid()}")
        mine.write_text("in progress", encoding="utf-8")
        assert store.info()["stale_tmp_swept"] == 0
        assert mine.exists()

    def test_failed_put_leaves_no_tmp(self, tmp_path, monkeypatch):
        import pathlib
        store = SimCache(tmp_path)
        key = "de" + "0" * 62
        original = pathlib.Path.write_text

        def exploding_write(self, *args, **kwargs):
            original(self, *args, **kwargs)  # the file exists on disk...
            raise OSError("disk full")       # ...but the write "failed"

        monkeypatch.setattr(pathlib.Path, "write_text", exploding_write)
        with pytest.raises(OSError):
            store.put(key, "f", {"cycles": 1})
        monkeypatch.undo()
        assert not list(tmp_path.rglob("*.tmp.*"))
        assert store.get(key) is MISS


class TestSweepsDir:
    def test_journals_excluded_from_entry_count(self, tmp_path):
        store = SimCache(tmp_path)
        store.put("e0" + "0" * 62, "f", 1)
        store.sweeps_dir.mkdir(parents=True)
        (store.sweeps_dir / "abcd.journal.jsonl").write_text(
            "{}\n", encoding="utf-8")
        (store.sweeps_dir / "abcd.report.json").write_text(
            "{}\n", encoding="utf-8")
        info = store.info()
        assert info["entries"] == 1
        assert info["journals"] == 1

    def test_clear_removes_sweep_state(self, tmp_path):
        store = SimCache(tmp_path)
        store.sweeps_dir.mkdir(parents=True)
        (store.sweeps_dir / "abcd.journal.jsonl").write_text(
            "{}\n", encoding="utf-8")
        store.clear()
        assert store.info()["journals"] == 0


class TestEnableSwitch:
    def test_simcache_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCACHE", "off")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_SIMCACHE", "OFF")
        assert not cache_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMCACHE", raising=False)
        assert cache_enabled()
