"""Unit tests for the persistent sim-result cache (repro.perf.cache)."""

import json

import pytest

from repro.perf.cache import (MISS, SimCache, Unkeyable, cache_enabled,
                              canonicalize, code_stamp, point_key)
from repro.system.config import SystemConfig


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (1, 1.5, "x", True, None):
            assert canonicalize(value) == value

    def test_tuples_become_lists(self):
        assert canonicalize((1, (2, 3))) == [1, [2, 3]]

    def test_dict_keys_sorted(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]

    def test_config_encodes_field_by_field(self):
        out = canonicalize(SystemConfig(l1_size=1234))
        assert out["__dataclass__"].endswith("SystemConfig")
        assert out["fields"]["l1_size"] == 1234

    def test_unkeyable_raises(self):
        with pytest.raises(Unkeyable):
            canonicalize(object())
        with pytest.raises(Unkeyable):
            canonicalize({1: "non-string key"})


class TestPointKey:
    def test_stable_across_calls(self):
        a = point_key("f", (1,), {"size": 2}, "quick")
        b = point_key("f", (1,), {"size": 2}, "quick")
        assert a == b

    def test_distinguishes_everything(self):
        base = point_key("f", (1,), {"size": 2}, "quick")
        assert point_key("g", (1,), {"size": 2}, "quick") != base
        assert point_key("f", (2,), {"size": 2}, "quick") != base
        assert point_key("f", (1,), {"size": 3}, "quick") != base
        assert point_key("f", (1,), {"size": 2}, "full") != base

    def test_config_values_reach_the_key(self):
        small = point_key("f", (), {"config": SystemConfig(l1_size=1)},
                          "quick")
        large = point_key("f", (), {"config": SystemConfig(l1_size=2)},
                          "quick")
        assert small != large

    def test_code_stamp_is_hex_and_cached(self):
        assert code_stamp() == code_stamp()
        int(code_stamp(), 16)


class TestSimCache:
    def test_get_put_roundtrip(self, tmp_path):
        store = SimCache(tmp_path)
        key = "ab" + "0" * 62
        assert store.get(key) is MISS
        assert store.put(key, "f", {"cycles": 7})
        assert store.get(key) == {"cycles": 7}

    def test_unjsonable_value_is_refused(self, tmp_path):
        store = SimCache(tmp_path)
        key = "cd" + "0" * 62
        assert not store.put(key, "f", {"cycles": object()})
        assert store.get(key) is MISS

    def test_lossy_roundtrip_is_refused(self, tmp_path):
        # Tuples decode as lists — not bit-identical, so not cached.
        store = SimCache(tmp_path)
        key = "ef" + "0" * 62
        assert not store.put(key, "f", {"pair": (1, 2)})
        assert store.get(key) is MISS

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = SimCache(tmp_path)
        key = "12" + "0" * 62
        store.put(key, "f", [1, 2, 3])
        store._path(key).write_text("{not json", encoding="utf-8")
        assert store.get(key) is MISS

    def test_clear_and_info(self, tmp_path):
        store = SimCache(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "0" * 62, "f", i)
        info = store.info()
        assert info["entries"] == 3 and info["bytes"] > 0
        assert store.clear() == 3
        assert store.info()["entries"] == 0

    def test_files_are_valid_json_with_fn_name(self, tmp_path):
        store = SimCache(tmp_path)
        key = "34" + "0" * 62
        store.put(key, "repro.workloads.x", {"cycles": 1})
        data = json.loads(store._path(key).read_text())
        assert data["fn"] == "repro.workloads.x"


class TestEnableSwitch:
    def test_simcache_off_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCACHE", "off")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_SIMCACHE", "OFF")
        assert not cache_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMCACHE", raising=False)
        assert cache_enabled()
