"""Tests for the shard-locality report (``mc2-analyze --sharding-report``).

Synthetic fixtures pin the role assignment and receiver-typing rules;
the whole-repo run pins the acceptance bar (fewer than 10 unknowns) and
the load-bearing classifications the per-channel engine split depends
on: the DRAM grant arbiter state, the interconnect, and the remote-WPQ
probe must read as cross-shard with named rendezvous points.
"""

import json
from pathlib import Path

from repro.analysis import engine, sharding
from repro.analysis.cli import main as cli_main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src" / "repro")


def classify_source(tmp_path, source, name="repro/memctrl/fixture.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (tmp_path / "repro" / "memctrl" / "__init__.py").write_text("")
    path.write_text(source)
    files = engine.collect_files([str(tmp_path)])
    return sharding.classify(engine.parse_modules(files))


SHARDED = """\
class Channel:
    def __init__(self):
        self.busy = 0

    def access(self, when):
        self.busy = when


class Controller:
    def __init__(self, sim, channel_id):
        self.sim = sim
        self.channel_id = channel_id
        self.channel = Channel()
        self.queue = []

    def receive(self, pkt):
        self.queue.append(pkt)
        self.channel.access(self.sim.now)

    def forward(self, pkt):
        peer = self._owner_of(pkt)
        peer.queue.append(pkt)

    def _owner_of(self, pkt):
        return self


class Fabric:
    def __init__(self, sim, controllers):
        self.sim = sim
        self.controllers = controllers

    def send(self, pkt):
        peer = self.controllers[0]
        peer.queue.append(pkt)
"""


def test_channel_wiring_seeds_sharded_role(tmp_path):
    report = classify_source(tmp_path, SHARDED)
    roles = {qual.rsplit(".", 1)[-1]: info.role
             for qual, info in report.classes.items()}
    assert roles["Controller"] == sharding.ROLE_SHARDED
    assert roles["Channel"] == sharding.ROLE_OWNED
    assert roles["Fabric"] == sharding.ROLE_SHARED


def test_cross_owner_access_marks_state_cross_shard(tmp_path):
    report = classify_source(tmp_path, SHARDED)
    controller = next(info for qual, info in report.classes.items()
                      if qual.endswith("Controller"))
    # Reached synchronously through the _owner_of() accessor idiom
    # from a sharded peer: provably cross-shard.
    assert controller.attrs["queue"].locality == sharding.CLASS_CROSS
    # Self-only state of the owned sub-component stays local.
    channel = next(info for qual, info in report.classes.items()
                   if qual.endswith("Channel"))
    assert channel.attrs["busy"].locality == sharding.CLASS_LOCAL
    # The foreign access site is recorded as a rendezvous point, and
    # shared-fabric deliveries (message passing) are not: only the
    # synchronous peer access appears.
    targets = [r.target for r in report.rendezvous]
    assert "Controller.queue" in targets
    assert len(targets) == 1


# ------------------------------------------------------------- whole repo
def _repo_report():
    files = engine.collect_files([REPO_SRC])
    return sharding.classify(engine.parse_modules(files))


def test_repo_unknown_bucket_is_small():
    report = _repo_report()
    counts = report.counts()
    assert counts[sharding.CLASS_UNKNOWN] < 10
    assert counts[sharding.CLASS_LOCAL] > 0
    assert counts[sharding.CLASS_CROSS] > 0
    # Every unknown is named, so the remainder is reviewable.
    assert len(report.unknown()) == counts[sharding.CLASS_UNKNOWN]


def test_repo_classifies_load_bearing_state():
    report = _repo_report()
    mc = next(info for qual, info in report.classes.items()
              if qual.endswith("memctrl.controller.MemoryController"))
    # The same-cycle DRAM grant arbiter accepts requests from the
    # (MC)^2 bounce/materialize paths of *other* channels' owners:
    # cross-shard by design, the rendezvous the report must surface.
    assert mc.attrs["_dram_pending"].locality == sharding.CLASS_CROSS
    # Remote WPQ fullness probes make the WPQ visible across shards.
    assert mc.attrs["_wpq"].locality == sharding.CLASS_CROSS
    xbar = next(info for qual, info in report.classes.items()
                if qual.endswith("interconnect.bus.Interconnect"))
    assert all(info.locality == sharding.CLASS_CROSS
               for info in xbar.attrs.values())
    assert any("dram_request" in r.via or "MemoryController" in r.target
               for r in report.rendezvous)


# ------------------------------------------------------------------- CLI
def test_cli_sharding_report_text_and_json(tmp_path, capsys):
    assert cli_main([REPO_SRC, "--sharding-report"]) == 0
    text = capsys.readouterr().out
    assert "shard-locality report" in text
    assert "cross-shard" in text

    out = tmp_path / "sharding.json"
    assert cli_main([REPO_SRC, "--sharding-report", "--format", "json",
                     "--output", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert set(payload) == {"classes", "rendezvous", "summary", "unknown"}
    assert payload["summary"]["unknown"] < 10
