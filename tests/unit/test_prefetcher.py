"""Unit tests for the stride prefetcher."""

from repro.cache.prefetcher import StridePrefetcher
from repro.sim.stats import StatGroup

CL = 64


def make(enabled=True, degree=4, threshold=2):
    return StridePrefetcher(StatGroup("pf"), degree=degree,
                            confidence_threshold=threshold, enabled=enabled)


class TestTraining:
    def test_needs_confidence_before_prefetching(self):
        pf = make()
        base = 0x10000
        assert pf.observe(0, base) == []               # allocate entry
        assert pf.observe(0, base + CL) == []          # stride learned
        targets = pf.observe(0, base + 2 * CL)         # stride confirmed
        assert targets and targets[0] == base + 3 * CL

    def test_degree_controls_lookahead(self):
        pf = make(degree=8)
        base = 0x10000
        for i in range(4):
            out = pf.observe(0, base + i * CL)
        assert len(out) == 8

    def test_stride_change_resets_confidence(self):
        pf = make()
        base = 0x10000
        for i in range(4):
            pf.observe(0, base + i * CL)
        assert pf.observe(0, base + 10 * CL) == []  # new stride, conf 1

    def test_negative_stride_supported(self):
        pf = make()
        base = 0x10000
        addrs = [base - i * CL for i in range(5)]
        out = []
        for a in addrs:
            out = pf.observe(0, a)
        assert out and out[0] < addrs[-1]

    def test_disabled_returns_nothing(self):
        pf = make(enabled=False)
        base = 0x10000
        for i in range(10):
            assert pf.observe(0, base + i * CL) == []


class TestStreamSeparation:
    def test_interleaved_page_streams_train_independently(self):
        """memcpy's alternating src/dst access must still prefetch."""
        pf = make()
        src, dst = 0x100000, 0x200000
        got_src = got_dst = False
        for i in range(8):
            if pf.observe(0, src + i * CL):
                got_src = True
            if pf.observe(0, dst + i * CL):
                got_dst = True
        assert got_src and got_dst

    def test_same_page_different_cores_are_separate(self):
        pf = make()
        base = 0x100000
        for i in range(6):
            pf.observe(0, base + i * CL)
        # Core 1 has no history: no prefetch on its first access.
        assert pf.observe(1, base + 6 * CL) == []

    def test_table_capacity_evicts(self):
        pf = make()
        pf.table_entries = 2
        pf.observe(0, 0x1000)
        pf.observe(0, 0x10000)
        pf.observe(0, 0x20000)  # evicts the first stream
        assert len(pf._table) <= 2

    def test_zero_stride_ignored(self):
        pf = make()
        pf.observe(0, 0x1000)
        assert pf.observe(0, 0x1000) == []
