"""Unit tests for the statistics registry."""

import math

from repro.sim.stats import Counter, Distribution, StatGroup


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_reset(self):
        c = Counter("x")
        c.inc(10)
        c.reset()
        assert c.value == 0


class TestDistribution:
    def test_streaming_moments(self):
        d = Distribution("lat")
        for v in (10, 20, 30):
            d.record(v)
        assert d.count == 3
        assert d.mean == 20
        assert d.min == 10
        assert d.max == 30

    def test_empty_mean_is_zero(self):
        assert Distribution("x").mean == 0.0

    def test_percentile_nearest_rank(self):
        d = Distribution("lat")
        for v in range(1, 101):
            d.record(v)
        assert d.percentile(50) == 50
        assert d.percentile(99) == 99
        assert d.percentile(100) == 100

    def test_percentile_empty(self):
        assert Distribution("x").percentile(50) == 0.0

    def test_keep_samples_false_drops_samples(self):
        d = Distribution("x", keep_samples=False)
        d.record(5)
        assert d.samples == []
        assert d.count == 1

    def test_reset(self):
        d = Distribution("x")
        d.record(1)
        d.reset()
        assert d.count == 0
        assert d.min == math.inf


class TestStatGroup:
    def test_counter_is_memoized(self):
        g = StatGroup("g")
        assert g.counter("a") is g.counter("a")

    def test_nested_groups_and_get(self):
        root = StatGroup("root")
        root.group("l1").counter("hits").inc(7)
        assert root.get("l1.hits") == 7

    def test_flatten_paths(self):
        root = StatGroup("root")
        root.counter("top").inc(1)
        root.group("a").group("b").counter("deep").inc(2)
        flat = root.flatten()
        assert flat["top"] == 1
        assert flat["a.b.deep"] == 2

    def test_reset_recurses(self):
        root = StatGroup("root")
        root.group("a").counter("x").inc(5)
        root.distribution("d").record(1)
        root.reset()
        assert root.get("a.x") == 0
        assert root.distributions["d"].count == 0

    def test_report_contains_names(self):
        root = StatGroup("root")
        root.counter("requests", "total requests").inc(3)
        text = root.report()
        assert "requests" in text
        assert "[root]" in text
