"""Unit tests for the statistics registry."""

import json
import math

from repro.sim.stats import (DEFAULT_MAX_SAMPLES, Counter, Distribution,
                             StatGroup)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_reset(self):
        c = Counter("x")
        c.inc(10)
        c.reset()
        assert c.value == 0


class TestDistribution:
    def test_streaming_moments(self):
        d = Distribution("lat")
        for v in (10, 20, 30):
            d.record(v)
        assert d.count == 3
        assert d.mean == 20
        assert d.min == 10
        assert d.max == 30

    def test_empty_mean_is_zero(self):
        assert Distribution("x").mean == 0.0

    def test_percentile_nearest_rank(self):
        d = Distribution("lat")
        for v in range(1, 101):
            d.record(v)
        assert d.percentile(50) == 50
        assert d.percentile(99) == 99
        assert d.percentile(100) == 100

    def test_percentile_empty(self):
        assert Distribution("x").percentile(50) == 0.0

    def test_keep_samples_false_drops_samples(self):
        d = Distribution("x", keep_samples=False)
        d.record(5)
        assert d.samples == []
        assert d.count == 1

    def test_reset(self):
        d = Distribution("x")
        d.record(1)
        d.reset()
        assert d.count == 0
        assert d.min == math.inf

    def test_samples_capped_by_reservoir(self):
        d = Distribution("lat")
        for v in range(DEFAULT_MAX_SAMPLES * 3):
            d.record(v)
        assert len(d.samples) == DEFAULT_MAX_SAMPLES
        assert d.count == DEFAULT_MAX_SAMPLES * 3
        # Streaming moments are exact regardless of the reservoir.
        assert d.min == 0
        assert d.max == DEFAULT_MAX_SAMPLES * 3 - 1
        assert d.total == sum(range(DEFAULT_MAX_SAMPLES * 3))

    def test_reservoir_is_deterministic_per_name(self):
        def run(name):
            d = Distribution(name, max_samples=64)
            for v in range(1000):
                d.record(v)
            return list(d.samples)

        assert run("lat") == run("lat")
        # Different stat names seed different reservoirs.
        assert run("lat") != run("other")

    def test_reservoir_quantiles_stay_plausible(self):
        d = Distribution("lat", max_samples=256)
        for v in range(10_000):
            d.record(v)
        # A uniform stream's reservoir median should land mid-range.
        assert 2_000 < d.percentile(50) < 8_000

    def test_small_max_samples_reset_reseeds(self):
        d = Distribution("lat", max_samples=4)
        for v in range(100):
            d.record(v)
        first = list(d.samples)
        d.reset()
        for v in range(100):
            d.record(v)
        assert list(d.samples) == first


class TestFormula:
    def test_value_evaluates_on_read(self):
        g = StatGroup("g")
        hits = g.counter("hits")
        misses = g.counter("misses")
        rate = g.formula("hit_rate", "hits fraction",
                         lambda: hits.value / (hits.value + misses.value)
                         if (hits.value + misses.value) else 0.0)
        assert rate.value == 0.0
        hits.inc(3)
        misses.inc(1)
        assert rate.value == 0.75

    def test_report_includes_formulas(self):
        g = StatGroup("g")
        g.formula("ratio", "a ratio", lambda: 0.5)
        assert "ratio" in g.report()


class TestStatGroupSerialization:
    def _tree(self):
        root = StatGroup("system")
        root.counter("ticks", "cycles simulated").inc(123)
        l1 = root.group("l1")
        l1.counter("hits", "lookups that hit").inc(7)
        l1.counter("misses", "lookups that missed").inc(3)
        l1.formula("hit_rate", "hits fraction", lambda: 0.7)
        lat = root.group("mc").distribution("read_latency", "cycles")
        for v in (5, 10, 15):
            lat.record(v)
        return root

    def test_to_dict_json_round_trip(self):
        root = self._tree()
        encoded = json.dumps(root.to_dict(), sort_keys=True)
        rebuilt = StatGroup.from_dict(json.loads(encoded))
        assert rebuilt.get("l1.hits") == 7
        assert rebuilt.flatten() == root.flatten()
        d = rebuilt.children["mc"].distributions["read_latency"]
        assert d.count == 3 and d.total == 30
        assert d.min == 5 and d.max == 15 and d.mean == 10
        assert d.samples == [5, 10, 15]
        # Formulas come back frozen at their exported value.
        assert rebuilt.children["l1"].formulas["hit_rate"].value == 0.7
        # The round trip is stable: a second encode matches the first.
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == encoded

    def test_to_dict_empty_distribution_encodes_null_extremes(self):
        root = StatGroup("g")
        root.distribution("lat")
        entry = root.to_dict()["distributions"]["lat"]
        assert entry["min"] is None and entry["max"] is None
        rebuilt = StatGroup.from_dict(root.to_dict())
        assert rebuilt.distributions["lat"].min == math.inf
        assert rebuilt.distributions["lat"].max == -math.inf

    def test_to_dict_without_samples(self):
        root = self._tree()
        snap = root.to_dict(include_samples=False)
        assert "samples" not in snap["children"]["mc"]["distributions"]["read_latency"]


class TestStatGroup:
    def test_counter_is_memoized(self):
        g = StatGroup("g")
        assert g.counter("a") is g.counter("a")

    def test_nested_groups_and_get(self):
        root = StatGroup("root")
        root.group("l1").counter("hits").inc(7)
        assert root.get("l1.hits") == 7

    def test_flatten_paths(self):
        root = StatGroup("root")
        root.counter("top").inc(1)
        root.group("a").group("b").counter("deep").inc(2)
        flat = root.flatten()
        assert flat["top"] == 1
        assert flat["a.b.deep"] == 2

    def test_reset_recurses(self):
        root = StatGroup("root")
        root.group("a").counter("x").inc(5)
        root.distribution("d").record(1)
        root.reset()
        assert root.get("a.x") == 0
        assert root.distributions["d"].count == 0

    def test_report_contains_names(self):
        root = StatGroup("root")
        root.counter("requests", "total requests").inc(3)
        text = root.report()
        assert "requests" in text
        assert "[root]" in text
