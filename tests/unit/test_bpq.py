"""Unit tests for the Bounce Pending Queue."""

import pytest

from repro.common.errors import SimulationError
from repro.mcsquare.bpq import BouncePendingQueue
from repro.sim.packet import Packet, PacketType
from repro.sim.stats import StatGroup


def wpkt(addr):
    p = Packet(PacketType.WRITE, addr, 64)
    p.data = b"\x11" * 64
    return p


@pytest.fixture
def bpq():
    return BouncePendingQueue(capacity=2, stats=StatGroup("bpq"))


class TestPark:
    def test_park_and_lookup(self, bpq):
        entry = bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=5)
        assert bpq.holds(0x1000)
        assert bpq.holds(0x1020)          # any offset within the line
        assert not bpq.holds(0x1040)
        assert bpq.get(0x1000) is entry
        assert entry.parked_at == 5

    def test_duplicate_park_rejected(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        with pytest.raises(SimulationError):
            bpq.park(0x1000, b"\xBB" * 64, wpkt(0x1000), now=1)

    def test_full_park_rejected(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        bpq.park(0x2000, b"\xAA" * 64, wpkt(0x2000), now=0)
        assert bpq.full
        with pytest.raises(SimulationError):
            bpq.park(0x3000, b"\xAA" * 64, wpkt(0x3000), now=0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            BouncePendingQueue(capacity=0)


class TestMergeRelease:
    def test_merge_takes_newest_data(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        entry = bpq.merge(0x1000, b"\xBB" * 64, wpkt(0x1000))
        assert bytes(entry.data) == b"\xBB" * 64
        assert len(entry.packets) == 2

    def test_release_frees_slot(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        entry = bpq.release(0x1000)
        assert not bpq.holds(0x1000)
        assert len(bpq) == 0
        assert bytes(entry.data) == b"\xAA" * 64

    def test_stats_tracked(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        bpq.merge(0x1000, b"\xBB" * 64, wpkt(0x1000))
        bpq.release(0x1000)
        bpq.record_full_stall()
        c = bpq.stats.counters
        assert c["parked"].value == 1
        assert c["merged"].value == 1
        assert c["drained"].value == 1
        assert c["full_stalls"].value == 1
        assert bpq.stats.formulas["peak_occupancy"].value == 1

    def test_entries_snapshot(self, bpq):
        bpq.park(0x1000, b"\xAA" * 64, wpkt(0x1000), now=0)
        bpq.park(0x2000, b"\xBB" * 64, wpkt(0x2000), now=0)
        assert {e.line for e in bpq.entries()} == {0x1000, 0x2000}
