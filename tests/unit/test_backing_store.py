"""Unit tests for the byte-accurate backing store."""

import pytest

from repro.common.errors import AddressError
from repro.mem.backing_store import BackingStore


@pytest.fixture
def store():
    return BackingStore(1 << 20)  # 1 MiB


class TestConstruction:
    def test_rejects_non_line_multiple(self):
        with pytest.raises(AddressError):
            BackingStore(100)

    def test_rejects_zero_capacity(self):
        with pytest.raises(AddressError):
            BackingStore(0)


class TestLineAccess:
    def test_untouched_memory_reads_zero(self, store):
        assert store.read_line(0) == bytes(64)

    def test_write_then_read_line(self, store):
        data = bytes(range(64))
        store.write_line(128, data)
        assert store.read_line(128) == data

    def test_read_line_uses_containing_line(self, store):
        data = bytes(range(64))
        store.write_line(128, data)
        assert store.read_line(150) == data

    def test_write_line_requires_64_bytes(self, store):
        with pytest.raises(AddressError):
            store.write_line(0, b"short")

    def test_out_of_range_rejected(self, store):
        with pytest.raises(AddressError):
            store.read_line(1 << 21)


class TestByteAccess:
    def test_spanning_write_and_read(self, store):
        data = bytes(i & 0xFF for i in range(200))
        store.write(60, data)  # spans 4 lines
        assert store.read(60, 200) == data

    def test_partial_line_write_preserves_rest(self, store):
        store.write_line(0, b"\xAA" * 64)
        store.write(10, b"\xBB" * 4)
        line = store.read_line(0)
        assert line[:10] == b"\xAA" * 10
        assert line[10:14] == b"\xBB" * 4
        assert line[14:] == b"\xAA" * 50

    def test_copy_is_eager_oracle(self, store):
        payload = bytes((i * 7) & 0xFF for i in range(300))
        store.write(1000, payload)
        store.copy(5000, 1000, 300)
        assert store.read(5000, 300) == payload

    def test_copy_misaligned(self, store):
        payload = bytes((i * 13) & 0xFF for i in range(150))
        store.write(101, payload)
        store.copy(507, 101, 150)
        assert store.read(507, 150) == payload

    def test_fill(self, store):
        store.fill(100, 300, 0xCD)
        assert store.read(100, 300) == b"\xCD" * 300

    def test_negative_size_rejected(self, store):
        with pytest.raises(AddressError):
            store.read(0, -1)


class TestResidency:
    def test_resident_lines_counts_written_lines(self, store):
        assert store.resident_lines == 0
        store.write(0, b"x")
        store.write(64, b"y")
        store.write(70, b"z")
        assert store.resident_lines == 2
