"""Deliberately planted sweep-purity violations.

This module is the shared fixture for the two-sided oracle check: the
same planted bug must be caught *statically* by the analyzer
(``MC2401``/``MC2501`` in ``test_simsan.py``) and *dynamically* by the
``REPRO_SIMSAN=1`` runtime sanitizer.  It is excluded from lint sweeps
(``--exclude tests/unit/simsan_plants.py`` in CI and the Makefile)
precisely because its findings are intentional.

Functions are module-level so they pickle into fork workers.
"""

#: Plant 1 — shared mutable global written from a dispatched point.
SHARED_LOG = []


def planted_global_write(x):
    SHARED_LOG.append(x)
    return {"x": x}


#: Plant 2 — module state that influences a cached result but is
#: absent from the cache key (function name + args + scale + stamp).
KNOB = {"value": 1}


def set_knob(value):
    KNOB["value"] = value


def planted_cache_read(x):
    return {"x": x, "knob": KNOB["value"]}


def planted_sweep():
    """Dispatch both plants so the static worker closure includes them."""
    from repro.perf.runner import SimPoint, sim_map

    points = [SimPoint(planted_global_write, (i,)) for i in range(2)]
    points += [SimPoint(planted_cache_read, (i,)) for i in range(2)]
    return sim_map(points, jobs=1, cache=False)
