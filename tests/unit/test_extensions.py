"""Tests for the paper's proposed extensions (§V-A1, §VI).

* ``CLWB_RANGE`` — the wider writeback operation §V-A1 suggests to cut
  the per-line CLWB train that dominates ``memcpy_lazy`` above 1KB.
* ``eager_async_copies`` — §VI's copy-engine pairing: entries start
  resolving in the background right after insertion.
"""

import pytest

from repro import System, small_system
from repro.common.units import KB
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops

CL = 64


class TestClwbRange:
    def test_flushes_only_dirty_lines(self):
        system = System(small_system())
        base = system.alloc(8 * CL, align=4096)

        def prog():
            yield ops.store(base, 8, data=b"DIRTY-0!")
            yield ops.store(base + 4 * CL, 8, data=b"DIRTY-4!")
            yield ops.clwb_range(base, 8 * CL)
            yield ops.mfence()

        system.run_program(prog())
        assert system.backing.read(base, 8) == b"DIRTY-0!"
        assert system.backing.read(base + 4 * CL, 8) == b"DIRTY-4!"
        # Lines stay resident and clean.
        line = system.hierarchy.l1s[0].lookup(base, 0, touch=False)
        assert line is not None and not line.dirty

    def test_clean_range_is_cheap(self):
        def run(wide):
            system = System(small_system())
            base = system.alloc(64 * KB, align=4096)

            def prog():
                if wide:
                    yield ops.clwb_range(base, 64 * KB)
                else:
                    for off in range(0, 64 * KB, CL):
                        yield ops.clwb(base + off)
                yield ops.mfence()

            return system.run_program(prog())

        assert run(wide=True) < run(wide=False) / 4

    def test_equivalent_data_effects(self):
        """CLWB train and CLWB_RANGE leave identical memory."""
        results = []
        for wide in (False, True):
            system = System(small_system())
            base = system.alloc(4 * KB, align=4096)

            def prog():
                for off in range(0, 4 * KB, CL):
                    yield ops.store(base + off, 8,
                                    data=off.to_bytes(8, "little"))
                if wide:
                    yield ops.clwb_range(base, 4 * KB)
                else:
                    for off in range(0, 4 * KB, CL):
                        yield ops.clwb(base + off)
                yield ops.mfence()

            system.run_program(prog())
            results.append(system.backing.read(base, 4 * KB))
        assert results[0] == results[1]

    def test_wide_writeback_wrapper_correct(self):
        system = System(small_system())
        src = system.alloc(8 * KB, align=4096)
        dst = system.alloc(8 * KB, align=4096)
        system.backing.fill(src, 8 * KB, 0x6B)
        system.run_program(memcpy_lazy_ops(system, dst, src, 8 * KB,
                                           wide_writeback=True))
        system.drain()
        assert system.read_memory(dst, 8 * KB) == b"\x6B" * 8 * KB

    def test_wide_writeback_cheaper_for_large_copies(self):
        def run(wide):
            system = System(small_system())
            src = system.alloc(64 * KB, align=4096)
            dst = system.alloc(64 * KB, align=4096)
            return system.run_program(
                memcpy_lazy_ops(system, dst, src, 64 * KB,
                                wide_writeback=wide))

        assert run(True) < run(False)


class TestEagerAsyncCopies:
    def test_entries_resolve_without_threshold(self):
        system = System(small_system(eager_async_copies=True))
        src = system.alloc(8 * KB, align=4096)
        dst = system.alloc(8 * KB, align=4096)
        system.backing.fill(src, 8 * KB, 0x2D)
        system.run_program(memcpy_lazy_ops(system, dst, src, 8 * KB))
        system.drain()
        # The copy engine resolved the entry in the background: data is
        # physically in the destination and the table is empty.
        assert len(system.ctt) == 0
        assert system.backing.read(dst, 8 * KB) == b"\x2D" * 8 * KB

    def test_without_engine_entries_stay(self):
        system = System(small_system(eager_async_copies=False))
        src = system.alloc(8 * KB, align=4096)
        dst = system.alloc(8 * KB, align=4096)
        system.run_program(memcpy_lazy_ops(system, dst, src, 8 * KB))
        system.drain()
        assert len(system.ctt) > 0  # below threshold: nothing resolves

    def test_data_correct_under_source_overwrite(self):
        """Racing the engine with source writes must stay consistent."""
        system = System(small_system(eager_async_copies=True))
        src = system.alloc(4 * KB, align=4096)
        dst = system.alloc(4 * KB, align=4096)
        system.backing.fill(src, 4 * KB, 0x11)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4 * KB)
            for off in range(0, 4 * KB, CL):
                yield ops.store(src + off, CL, data=b"\x22" * CL)
            for off in range(0, 4 * KB, CL):
                yield ops.clwb(src + off)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 4 * KB) == b"\x11" * 4 * KB
        assert system.read_memory(src, 4 * KB) == b"\x22" * 4 * KB
