"""Unit tests for the copy-backend registry, config plumbing, and the
per-backend behaviors the crossover figure depends on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import System, SystemConfig, small_system
from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE, KB, PAGE_SIZE
from repro.copyengine import (ALIASES, BACKENDS, backend_names,
                              canonical_name, known_backend, make_backend,
                              needs_ctt)
from repro.isa import ops

CL = CACHELINE_SIZE


def _run(system, gen):
    system.run_program(gen)
    system.drain()


class TestRegistry:
    def test_all_backends_registered(self):
        assert backend_names() == ["eager", "mclazy", "mirror",
                                   "rowclone", "zio"]

    def test_aliases_resolve_to_registered_backends(self):
        for alias, target in ALIASES.items():
            assert canonical_name(alias) == target
            assert known_backend(alias)
            assert target in BACKENDS

    def test_canonical_names_pass_through(self):
        for name in backend_names():
            assert canonical_name(name) == name

    def test_unknown_backend_rejected_with_known_list(self):
        system = System(small_system())
        with pytest.raises(ConfigError, match="rowclone"):
            make_backend("bogus", system)

    def test_needs_ctt_only_for_mclazy(self):
        assert needs_ctt("mclazy")
        assert needs_ctt("mcsquare")      # via alias
        for name in ("eager", "zio", "rowclone", "mirror", "memcpy"):
            assert not needs_ctt(name)

    def test_mclazy_requires_mcsquare_machine(self):
        system = System(small_system(mcsquare_enabled=False))
        with pytest.raises(ConfigError, match="mcsquare_enabled"):
            make_backend("mclazy", system)

    def test_backend_instance_names_are_canonical(self):
        system = System(small_system())
        for name in backend_names():
            assert make_backend(name, system).name == name


class TestSystemIntegration:
    def test_copy_backend_defaults_to_config(self):
        system = System(small_system(copy_backend="rowclone"))
        assert system.copy_backend().name == "rowclone"

    def test_copy_backend_cached_per_canonical_name(self):
        system = System(small_system())
        assert system.copy_backend("mcsquare") is system.copy_backend("mclazy")
        assert system.copy_backend("eager") is system.copy_backend("memcpy")

    def test_overrides_build_fresh_instances(self):
        system = System(small_system())
        cached = system.copy_backend("mclazy")
        fresh = system.copy_backend("mclazy", min_lazy=1024)
        assert fresh is not cached
        assert fresh.min_lazy == 1024

    def test_config_kwargs_route_fields(self):
        system = System(small_system(copy_min_lazy=2048))
        assert system.copy_backend("mclazy").min_lazy == 2048

    def test_stats_subtree_per_backend(self):
        system = System(small_system(mcsquare_enabled=False))
        backend = make_backend("eager", system)
        src = system.alloc(4 * KB)
        dst = system.alloc(4 * KB)
        _run(system, backend.copy_ops(dst, src, 4 * KB))
        assert system.stats.get("copyengine.eager.copies") == 1
        assert system.stats.get("copyengine.eager.bytes_requested") == 4 * KB


class TestConfigValidation:
    def test_default_config_valid(self):
        SystemConfig().validate()

    def test_rejects_unknown_copy_backend(self):
        with pytest.raises(ConfigError, match="unknown copy_backend"):
            SystemConfig(copy_backend="turbo").validate()

    def test_accepts_aliases_as_copy_backend(self):
        SystemConfig(copy_backend="mcsquare").validate()
        SystemConfig(copy_backend="memcpy",
                     mcsquare_enabled=False).validate()

    def test_rejects_negative_min_lazy(self):
        with pytest.raises(ConfigError, match="copy_min_lazy"):
            SystemConfig(copy_min_lazy=-1).validate()

    def test_rejects_subpage_zio_elision(self):
        with pytest.raises(ConfigError, match="zio_min_elision"):
            SystemConfig(zio_min_elision=PAGE_SIZE // 2).validate()

    def test_rejects_unknown_inmem_layout(self):
        with pytest.raises(ConfigError, match="inmem_layout"):
            SystemConfig(inmem_layout="diagonal").validate()

    def test_rejects_nonpositive_subarray_rows(self):
        with pytest.raises(ConfigError, match="inmem_subarray_rows"):
            SystemConfig(inmem_subarray_rows=0).validate()

    @settings(max_examples=60, deadline=None)
    @given(backend=st.sampled_from(sorted(set(ALIASES) |
                                          {"eager", "mclazy", "zio",
                                           "rowclone", "mirror"})),
           min_lazy=st.integers(0, 1 << 20),
           zio_min=st.integers(PAGE_SIZE, 1 << 22),
           layout=st.sampled_from(("hash", "ideal")),
           rows=st.integers(1, 4096))
    def test_with_overrides_round_trip(self, backend, min_lazy, zio_min,
                                       layout, rows):
        """Any valid field combination survives with_overrides intact."""
        config = SystemConfig().with_overrides(
            copy_backend=backend, copy_min_lazy=min_lazy,
            zio_min_elision=zio_min, inmem_layout=layout,
            inmem_subarray_rows=rows)
        config.validate()
        assert config.copy_backend == backend
        assert config.copy_min_lazy == min_lazy
        assert config.zio_min_elision == zio_min
        assert config.inmem_layout == layout
        assert config.inmem_subarray_rows == rows
        # Round-trip back to defaults reproduces the original.
        base = SystemConfig()
        restored = config.with_overrides(
            copy_backend=base.copy_backend,
            copy_min_lazy=base.copy_min_lazy,
            zio_min_elision=base.zio_min_elision,
            inmem_layout=base.inmem_layout,
            inmem_subarray_rows=base.inmem_subarray_rows)
        assert restored == base


class TestInDramBackends:
    def _system(self, **kwargs):
        return System(small_system(mcsquare_enabled=False, **kwargs))

    def test_eligibility_rules(self):
        system = self._system()
        backend = make_backend("rowclone", system)
        span = system.address_map.channels * CL
        assert backend.eligible(0, span, 4 * KB)
        # Sub-line copies are never worth a row operation.
        assert not backend.eligible(0, span, CL - 1)
        # Line-incongruent: src and dst at different line offsets.
        assert not backend.eligible(0, span + 8, 4 * KB)
        # Channel-incongruent: offset not a multiple of channels*CL.
        assert not backend.eligible(0, span + CL, 4 * KB)

    def test_ineligible_copy_falls_back_whole(self):
        system = self._system()
        backend = make_backend("rowclone", system)
        src = system.alloc(4 * KB, align=4 * KB) + CL  # skew one line
        dst = system.alloc(8 * KB, align=4 * KB)
        system.backing.fill(src, 4 * KB, 0xAB)
        _run(system, backend.copy_ops(dst, src, 4 * KB))
        assert system.read_memory(dst, 4 * KB) == \
            system.read_memory(src, 4 * KB)
        assert system.stats.get("copyengine.rowclone.fallback_bytes") \
            == 4 * KB
        assert system.stats.get("copyengine.rowclone.cloned_lines") == 0

    def test_eligible_copy_offloads_and_counts_lines(self):
        system = self._system()
        backend = make_backend("rowclone", system)
        size = 16 * KB
        src = system.alloc(size, align=16 * KB)
        dst = system.alloc(size, align=16 * KB)
        system.backing.fill(src, size, 0xCD)
        _run(system, backend.copy_ops(dst, src, size))
        assert system.read_memory(dst, size) == system.read_memory(src, size)
        assert system.stats.get("copyengine.rowclone.cloned_lines") \
            == size // CL
        assert system.stats.get("copyengine.rowclone.fallback_bytes") == 0
        # The device performed row copies (not bus accesses) for them.
        copies = sum(
            system.stats.get(f"mc{mc.channel_id}.dram.row_copies_fpm")
            + system.stats.get(f"mc{mc.channel_id}.dram.row_copies_psm")
            for mc in system.controllers)
        assert copies > 0

    def test_mirror_uses_mirror_row_copies(self):
        system = self._system(inmem_layout="ideal")
        backend = make_backend("mirror", system)
        size = 32 * KB  # two full local rows on the 2-channel machine
        src = system.alloc(size, align=16 * KB)
        dst = system.alloc(size, align=16 * KB)
        _run(system, backend.copy_ops(dst, src, size))
        mirrors = sum(
            system.stats.get(f"mc{mc.channel_id}.dram.row_copies_mirror")
            for mc in system.controllers)
        assert mirrors > 0

    def test_ideal_layout_full_rows_use_fpm(self):
        system = self._system(inmem_layout="ideal")
        backend = make_backend("rowclone", system)
        size = 32 * KB
        src = system.alloc(size, align=16 * KB)
        dst = system.alloc(size, align=16 * KB)
        _run(system, backend.copy_ops(dst, src, size))
        fpm = sum(system.stats.get(f"mc{mc.channel_id}.dram.row_copies_fpm")
                  for mc in system.controllers)
        psm = sum(system.stats.get(f"mc{mc.channel_id}.dram.row_copies_psm")
                  for mc in system.controllers)
        assert fpm > 0 and psm == 0


class TestSoftwareBackends:
    def test_mclazy_tracked_bytes_follow_ctt(self):
        system = System(small_system())
        backend = make_backend("mclazy", system)
        src = system.alloc(8 * KB, align=PAGE_SIZE)
        dst = system.alloc(8 * KB, align=PAGE_SIZE)

        def program():
            yield from backend.copy_ops(dst, src, 8 * KB)
            yield ops.mfence()

        _run(system, program())
        assert backend.tracked_bytes() == 8 * KB
        assert backend.tracked_bytes() == system.ctt.tracked_bytes()

    def test_zio_tracked_bytes_and_resolve(self):
        system = System(small_system(mcsquare_enabled=False))
        backend = make_backend("zio", system)
        src = system.alloc(8 * KB, align=PAGE_SIZE)
        dst = system.alloc(8 * KB, align=PAGE_SIZE)
        system.backing.fill(src, 8 * KB, 0x3C)
        _run(system, backend.copy_ops(dst, src, 8 * KB))
        assert backend.tracked_bytes() == 8 * KB
        _run(system, backend.resolve_ops(dst, 8 * KB))
        assert backend.tracked_bytes() == 0
        assert system.read_memory(dst, 8 * KB) == \
            system.read_memory(src, 8 * KB)

    def test_eager_tracks_nothing(self):
        system = System(small_system(mcsquare_enabled=False))
        backend = make_backend("eager", system)
        src = system.alloc(4 * KB)
        dst = system.alloc(4 * KB)
        _run(system, backend.copy_ops(dst, src, 4 * KB))
        assert backend.tracked_bytes() == 0


class TestSpans:
    def test_copy_spans_emitted_with_outcomes(self):
        from repro.obs.runtime import tracing
        from repro.obs.tracer import DEFAULT_CATEGORIES, TraceConfig

        config = TraceConfig(categories=DEFAULT_CATEGORIES | {"copyengine"})
        with tracing(config):
            system = System(small_system(mcsquare_enabled=False))
            backend = make_backend("rowclone", system)
            src = system.alloc(16 * KB, align=16 * KB)
            dst = system.alloc(16 * KB, align=16 * KB)
            _run(system, backend.copy_ops(dst, src, 16 * KB))
            events = [e for e in system.tracer.events if e[1] == "copyengine"]
        assert len(events) == 2
        begin, end = events
        assert begin[0] == "b" and begin[3] == "copy-rowclone"
        assert end[0] == "e" and end[7]["outcome"] == "cloned"

    def test_no_spans_without_category(self):
        from repro.obs.runtime import tracing
        from repro.obs.tracer import TraceConfig

        with tracing(TraceConfig()):   # default categories only
            system = System(small_system(mcsquare_enabled=False))
            backend = make_backend("rowclone", system)
            src = system.alloc(16 * KB, align=16 * KB)
            dst = system.alloc(16 * KB, align=16 * KB)
            _run(system, backend.copy_ops(dst, src, 16 * KB))
            assert not [e for e in system.tracer.events
                        if e[1] == "copyengine"]


class TestHugepageBackendPassThrough:
    def test_arbitrary_backend_names_accepted(self):
        from repro.common.units import MB
        from repro.workloads.hugepage import HugePageCowWorkload
        w = HugePageCowWorkload("rowclone", region_size=2 * MB,
                                num_updates=1)
        assert w.engine_name == "rowclone"
        assert w.system.ctt is None  # no CTT needed for in-DRAM copies
