"""Unit tests for the Copy Tracking Table (§III-A1 table logic)."""

import pytest

from repro.common.errors import AlignmentError
from repro.mcsquare.ctt import CopyTrackingTable

CL = 64


@pytest.fixture
def ctt():
    return CopyTrackingTable(capacity=64)


def addrs(ctt):
    return [(e.dst, e.src, e.size) for e in ctt.entries]


class TestInsertBasics:
    def test_simple_insert(self, ctt):
        assert ctt.insert(0x1000, 0x2000, 4 * CL).ok
        assert addrs(ctt) == [(0x1000, 0x2000, 4 * CL)]
        ctt.verify_invariants()

    def test_zero_size_is_noop(self, ctt):
        assert ctt.insert(0x1000, 0x2000, 0).ok
        assert len(ctt) == 0

    def test_unaligned_dst_rejected(self, ctt):
        with pytest.raises(AlignmentError):
            ctt.insert(0x1010, 0x2000, CL)

    def test_unaligned_size_rejected(self, ctt):
        with pytest.raises(AlignmentError):
            ctt.insert(0x1000, 0x2000, 100)

    def test_misaligned_source_allowed(self, ctt):
        assert ctt.insert(0x1000, 0x2010, 2 * CL).ok
        entry = ctt.entries[0]
        assert entry.src == 0x2010

    def test_oversized_entry_rejected(self, ctt):
        with pytest.raises(AlignmentError):
            ctt.insert(0x1000, 0x2000, 4 * 1024 * 1024)

    def test_capacity_full_returns_not_ok(self):
        small = CopyTrackingTable(capacity=2)
        assert small.insert(0x0000, 0x8000, CL).ok
        assert small.insert(0x1000, 0x9000, CL).ok
        result = small.insert(0x2000, 0xA000, CL)
        assert not result.ok
        assert len(small) == 2


class TestDestLookup:
    def test_lookup_hit_and_miss(self, ctt):
        ctt.insert(0x1000, 0x2000, 4 * CL)
        assert ctt.lookup_dest_line(0x1000).src == 0x2000
        assert ctt.lookup_dest_line(0x1000 + 3 * CL) is not None
        assert ctt.lookup_dest_line(0x1000 + 4 * CL) is None
        assert ctt.lookup_dest_line(0x0FC0) is None

    def test_lookup_mid_line_address(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        assert ctt.lookup_dest_line(0x1020) is not None

    def test_source_lines_aligned(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        assert ctt.source_lines_for_dest(0x1040) == [0x2040]

    def test_source_lines_misaligned_returns_two(self, ctt):
        ctt.insert(0x1000, 0x2010, 2 * CL)
        # dest line 0x1000 draws bytes [0x2010, 0x2050): two source lines
        assert ctt.source_lines_for_dest(0x1000) == [0x2000, 0x2040]

    def test_source_lines_untracked_is_none(self, ctt):
        assert ctt.source_lines_for_dest(0x1000) is None


class TestDestOverwrite:
    """New copies evict overlapping destinations (dest uniqueness)."""

    def test_exact_replacement(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        ctt.insert(0x1000, 0x3000, 2 * CL)
        assert addrs(ctt) == [(0x1000, 0x3000, 2 * CL)]
        ctt.verify_invariants()

    def test_partial_overlap_trims_existing(self, ctt):
        ctt.insert(0x1000, 0x2000, 4 * CL)
        ctt.insert(0x1000 + 2 * CL, 0x3000, 4 * CL)
        assert addrs(ctt) == [
            (0x1000, 0x2000, 2 * CL),
            (0x1000 + 2 * CL, 0x3000, 4 * CL),
        ]
        ctt.verify_invariants()

    def test_overlap_splits_existing_into_two(self, ctt):
        ctt.insert(0x1000, 0x2000, 8 * CL)
        ctt.insert(0x1000 + 2 * CL, 0x3000, 2 * CL)
        assert addrs(ctt) == [
            (0x1000, 0x2000, 2 * CL),
            (0x1000 + 2 * CL, 0x3000, 2 * CL),
            (0x1000 + 4 * CL, 0x2000 + 4 * CL, 4 * CL),
        ]
        ctt.verify_invariants()

    def test_remnant_source_offsets_correct(self, ctt):
        ctt.insert(0x1000, 0x2030, 8 * CL)  # misaligned source
        ctt.insert(0x1000 + 4 * CL, 0x5000, CL)
        right = ctt.lookup_dest_line(0x1000 + 5 * CL)
        assert right.src_for_dst(0x1000 + 5 * CL) == 0x2030 + 5 * CL


class TestRedirection:
    """A→B then B→C must be stored as A→C (no copy chains)."""

    def test_full_redirect(self, ctt):
        ctt.insert(0x1000, 0x2000, 4 * CL)      # A(0x2000) -> B(0x1000)
        ctt.insert(0x5000, 0x1000, 4 * CL)      # B -> C redirects to A -> C
        entry = ctt.lookup_dest_line(0x5000)
        assert entry.src == 0x2000

    def test_partial_redirect_splits(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        # New copy sources 4 lines starting at 0x1000; first 2 tracked.
        ctt.insert(0x5000, 0x1000, 4 * CL)
        first = ctt.lookup_dest_line(0x5000)
        last = ctt.lookup_dest_line(0x5000 + 2 * CL)
        assert first.src == 0x2000
        assert last.src == 0x1000 + 2 * CL
        ctt.verify_invariants()

    def test_redirect_counts_stat(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        ctt.insert(0x5000, 0x1000, CL)
        assert ctt.stats.counters["redirects"].value >= 1

    def test_no_chain_after_many_hops(self, ctt):
        ctt.insert(0x1000, 0x9000, CL)
        ctt.insert(0x2000, 0x1000, CL)
        ctt.insert(0x3000, 0x2000, CL)
        assert ctt.lookup_dest_line(0x3000).src == 0x9000

    def test_misaligned_redirect_reports_eager_lines(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        # Source starts mid-way with an offset that is not line aligned
        # relative to the tracked dest: boundary line mixes two sources.
        result = ctt.insert(0x5000, 0x1000 + 0x20, 2 * CL)
        assert result.ok
        ctt.verify_invariants()
        # Every tracked dest line must have a single consistent source;
        # mixed lines are reported for eager resolution instead.
        for dst_line, pieces in result.eager_lines:
            assert sum(p[2] for p in pieces) == CL


class TestMerging:
    def test_contiguous_entries_merge(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        ctt.insert(0x1000 + CL, 0x2000 + CL, CL)
        assert addrs(ctt) == [(0x1000, 0x2000, 2 * CL)]
        assert ctt.stats.counters["merges"].value == 1

    def test_non_contiguous_source_does_not_merge(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        ctt.insert(0x1000 + CL, 0x9000, CL)
        assert len(ctt) == 2

    def test_non_contiguous_dest_does_not_merge(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        ctt.insert(0x1000 + 2 * CL, 0x2000 + CL, CL)
        assert len(ctt) == 2

    def test_element_by_element_array_copy_merges_to_one(self, ctt):
        for i in range(16):
            ctt.insert(0x1000 + i * CL, 0x2000 + i * CL, CL)
        assert addrs(ctt) == [(0x1000, 0x2000, 16 * CL)]


class TestRemoval:
    def test_remove_whole_entry(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        assert ctt.remove_dest_range(0x1000, 2 * CL) == 1
        assert len(ctt) == 0

    def test_remove_middle_line_splits(self, ctt):
        ctt.insert(0x1000, 0x2000, 3 * CL)
        ctt.remove_dest_range(0x1000 + CL, CL)
        assert addrs(ctt) == [
            (0x1000, 0x2000, CL),
            (0x1000 + 2 * CL, 0x2000 + 2 * CL, CL),
        ]
        ctt.verify_invariants()

    def test_remove_untracked_returns_zero(self, ctt):
        assert ctt.remove_dest_range(0x1000, CL) == 0

    def test_free_hint_drops_contained_dests(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        ctt.insert(0x8000, 0x2000, 2 * CL)
        ctt.free_hint(0x1000, 4096)
        assert ctt.lookup_dest_line(0x1000) is None
        assert ctt.lookup_dest_line(0x8000) is not None


class TestSourceQueries:
    def test_source_overlaps(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        assert len(ctt.source_overlaps(0x2000, CL)) == 1
        assert len(ctt.source_overlaps(0x2000 + 2 * CL, CL)) == 0

    def test_source_overlaps_shared_source(self, ctt):
        ctt.insert(0x1000, 0x2000, CL)
        ctt.insert(0x8000, 0x2000, CL)
        assert len(ctt.source_overlaps(0x2000, CL)) == 2

    def test_dest_lines_for_source_aligned(self, ctt):
        ctt.insert(0x1000, 0x2000, 2 * CL)
        assert ctt.dest_lines_for_source(0x2040, CL) == [0x1040]

    def test_dest_lines_for_source_misaligned_spans_two(self, ctt):
        ctt.insert(0x1000, 0x2010, 2 * CL)
        # Source line 0x2040 feeds dest bytes 0x1030..0x1070: two lines.
        assert ctt.dest_lines_for_source(0x2040, CL) == [0x1000, 0x1040]

    def test_dest_lines_for_untracked_source_empty(self, ctt):
        assert ctt.dest_lines_for_source(0x2000, CL) == []


class TestAsyncFreeSupport:
    def test_pop_smallest_claims_inactive(self, ctt):
        ctt.insert(0x1000, 0x2000, 4 * CL)
        ctt.insert(0x8000, 0x9000, CL)
        entry = ctt.pop_smallest()
        assert entry.size == CL
        assert not entry.active
        # Claimed entries are not re-claimed.
        second = ctt.pop_smallest()
        assert second is not entry

    def test_pop_smallest_empty_returns_none(self, ctt):
        assert ctt.pop_smallest() is None

    def test_occupancy(self, ctt):
        assert ctt.occupancy == 0.0
        ctt.insert(0x1000, 0x2000, CL)
        assert ctt.occupancy == pytest.approx(1 / 64)

    def test_tracked_bytes(self, ctt):
        ctt.insert(0x1000, 0x2000, 3 * CL)
        assert ctt.tracked_bytes() == 3 * CL
