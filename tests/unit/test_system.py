"""Unit tests for the System facade and configuration."""

import pytest

from repro import BASELINE, TABLE1, System, SystemConfig, small_system
from repro.common.errors import ConfigError, SimulationError
from repro.isa import ops
from repro.mcsquare.controller import McSquareController
from repro.memctrl.controller import MemoryController


class TestConfig:
    def test_table1_defaults(self):
        assert TABLE1.num_cpus == 8
        assert TABLE1.clock_ghz == 4.0
        assert TABLE1.dram_channels == 2
        assert TABLE1.ctt_entries == 2048
        assert TABLE1.bpq_entries == 8
        assert TABLE1.mcsquare_enabled

    def test_baseline_has_no_mcsquare(self):
        assert not BASELINE.mcsquare_enabled

    def test_with_overrides_is_a_copy(self):
        modified = TABLE1.with_overrides(ctt_entries=64)
        assert modified.ctt_entries == 64
        assert TABLE1.ctt_entries == 2048

    @pytest.mark.parametrize("bad", [
        dict(num_cpus=0),
        dict(dram_channels=0),
        dict(copy_threshold=0.0),
        dict(copy_threshold=1.5),
        dict(ctt_entries=0),
        dict(bpq_entries=-1),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigError):
            SystemConfig(**bad).validate()


class TestSystemAssembly:
    def test_mcsquare_controllers_when_enabled(self):
        system = System(small_system())
        assert all(isinstance(mc, McSquareController)
                   for mc in system.controllers)
        assert system.ctt is not None

    def test_baseline_controllers_when_disabled(self):
        system = System(small_system(mcsquare_enabled=False))
        assert all(type(mc) is MemoryController
                   for mc in system.controllers)
        assert system.ctt is None

    def test_peers_wired(self):
        system = System(small_system())
        for mc in system.controllers:
            assert len(mc.peers) == system.config.dram_channels - 1

    def test_core_count(self):
        system = System(small_system(num_cpus=3))
        assert len(system.cores) == 3


class TestAllocation:
    def test_alloc_respects_alignment(self):
        system = System(small_system())
        assert system.alloc(100, align=4096) % 4096 == 0
        assert system.alloc(10) % 64 == 0

    def test_alloc_never_returns_page_zero(self):
        system = System(small_system())
        assert system.alloc(64) >= 4096

    def test_alloc_exhaustion(self):
        system = System(small_system())
        with pytest.raises(SimulationError):
            system.alloc(system.config.dram_size)


class TestRunPrograms:
    def test_multi_core_completion_time(self):
        system = System(small_system())

        def make(cycles):
            def prog():
                yield ops.compute(cycles)
            return prog()

        finish = system.run_programs({0: make(100), 1: make(5000)})
        assert finish >= 5000

    def test_unfinished_program_raises(self):
        system = System(small_system())

        def forever():
            while True:
                yield ops.compute(100)

        with pytest.raises(SimulationError):
            system.run_programs({0: forever()}, max_cycles=10_000)

    def test_read_memory_sees_all_layers(self):
        system = System(small_system())
        addr = system.alloc(4096)
        system.backing.write(addr, b"LAYER-0!")
        assert system.read_memory(addr, 8) == b"LAYER-0!"

        def prog():
            yield ops.store(addr, 8, data=b"LAYER-1!")

        system.run_program(prog())
        assert system.read_memory(addr, 8) == b"LAYER-1!"

    def test_total_dram_accesses_counts(self):
        system = System(small_system())
        addr = system.alloc(4096)

        def prog():
            yield ops.load(addr, 8)

        system.run_program(prog())
        assert system.total_dram_accesses() >= 1
