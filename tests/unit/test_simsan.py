"""Tests for the simsan runtime sanitizer (repro.analysis.simsan).

The centerpiece is the two-sided oracle: each planted violation in
``simsan_plants.py`` is caught statically by the analyzer *and*
reproduced dynamically under ``REPRO_SIMSAN=1``.
"""

import multiprocessing
import sys
import types
from pathlib import Path

import pytest

from repro.analysis import engine, simsan
from repro.common.errors import SanitizerError
from repro.perf.cache import SimCache
from repro.perf.runner import SimPoint, sim_map

from . import simsan_plants as plants

PLANTS_PATH = str(Path(__file__).resolve().with_name("simsan_plants.py"))


@pytest.fixture
def strict(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN", "1")
    monkeypatch.setenv("REPRO_SIMSAN_PERIOD", "1")


@pytest.fixture(autouse=True)
def reset_plants():
    yield
    plants.SHARED_LOG.clear()
    plants.KNOB["value"] = 1


# --------------------------------------------------------------- mode parsing
def test_mode_parsing(monkeypatch):
    for raw, expected in [("", "off"), ("0", "off"), ("off", "off"),
                          ("1", "strict"), ("on", "strict"),
                          ("strict", "strict"), ("WARN", "warn")]:
        monkeypatch.setenv("REPRO_SIMSAN", raw)
        assert simsan.mode() == expected
        assert simsan.enabled() == (expected != "off")


def test_period_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN_PERIOD", "3")
    assert simsan.period() == 3
    monkeypatch.setenv("REPRO_SIMSAN_PERIOD", "0")
    assert simsan.period() == 1  # clamped
    monkeypatch.setenv("REPRO_SIMSAN_PERIOD", "junk")
    assert simsan.period() == 8  # default


# ---------------------------------------------------------- snapshot machinery
def test_snapshot_diff_detects_mutation_creation_deletion():
    name = "repro._simsan_probe"
    mod = types.ModuleType(name)
    mod.TABLE = {"a": 1}
    mod.GONE = 7
    sys.modules[name] = mod
    try:
        before = simsan.snapshot()
        assert name in before and "TABLE" in before[name]
        mod.TABLE["b"] = 2          # mutated
        mod.FRESH = []              # created
        del mod.GONE                # deleted
        changes = simsan.diff_snapshots(before, simsan.snapshot())
        ours = {(m, a, c) for m, a, c in changes if m == name}
        assert (name, "TABLE", "mutated") in ours
        assert (name, "FRESH", "created") in ours
        assert (name, "GONE", "deleted") in ours
    finally:
        del sys.modules[name]


def test_infra_modules_not_watched():
    # The cache's process-local memo must not trip the sanitizer.
    assert not any(n.startswith("repro.perf") or n.startswith("repro.analysis")
                   for n in simsan._watched_modules())


def test_module_imported_during_call_is_not_a_violation(strict):
    def lazy_import(x):
        import repro.common.errors  # noqa: F401
        return x

    assert simsan.checked_call(lazy_import, (5,), {}, "lazy") == 5


# ------------------------------------------------------------- the two plants
def test_planted_global_write_caught_statically():
    report = engine.run([PLANTS_PATH], select=["MC2401"])
    assert [f.rule for f in report.active] == ["MC2401"]
    assert "SHARED_LOG" in report.active[0].message


def test_planted_cache_omission_caught_statically():
    report = engine.run([PLANTS_PATH], select=["MC2501"])
    # Two true positives: the KNOB read, and SHARED_LOG (a mutated
    # global consulted on a cached path counts whichever way it is
    # accessed).
    assert {f.rule for f in report.active} == {"MC2501"}
    assert any("KNOB" in f.message for f in report.active)


def test_planted_global_write_caught_dynamically(strict):
    with pytest.raises(SanitizerError, match="global-write"):
        sim_map([SimPoint(plants.planted_global_write, (1,))],
                jobs=1, cache=False)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")
def test_planted_global_write_caught_in_fork_workers(strict):
    with pytest.raises(SanitizerError, match="global-write"):
        sim_map([SimPoint(plants.planted_global_write, (i,))
                 for i in range(4)], jobs=2, cache=False)


def test_planted_cache_omission_caught_dynamically(strict, tmp_path):
    store = SimCache(tmp_path)
    point = SimPoint(plants.planted_cache_read, (3,))
    [first] = sim_map([point], jobs=1, store=store, scale="quick")
    assert first == {"x": 3, "knob": 1}
    plants.set_knob(2)  # the unkeyed input changes...
    with pytest.raises(SanitizerError, match="cache-audit"):
        sim_map([point], jobs=1, store=store, scale="quick")


def test_clean_point_passes_both_audits(strict, tmp_path):
    store = SimCache(tmp_path)
    point = SimPoint(plants.planted_cache_read, (3,))
    [cold] = sim_map([point], jobs=1, store=store, scale="quick")
    [warm] = sim_map([point], jobs=1, store=store, scale="quick")
    assert cold == warm  # audit recomputed and agreed


# ----------------------------------------------------------- warn mode + cache
def test_warn_mode_reports_without_raising(monkeypatch, capfd):
    monkeypatch.setenv("REPRO_SIMSAN", "warn")
    [result] = sim_map([SimPoint(plants.planted_global_write, (9,))],
                       jobs=1, cache=False)
    assert result == {"x": 9}
    assert "simsan[global-write]" in capfd.readouterr().err


def test_round_trip_violation_reported(strict, tmp_path):
    # Deliberate plant: a tuple return breaks the JSON round-trip
    # contract, which is exactly what this test wants simsan to catch.
    def tupler(x):
        return (x, x)  # noqa: MC2502

    store = SimCache(tmp_path)
    with pytest.raises(SanitizerError, match="json-round-trip"):
        sim_map([SimPoint(tupler, (3,))],  # noqa: MC2403
                jobs=1, store=store, scale="quick")


def test_corrupt_cache_entry_reported(strict, tmp_path):
    store = SimCache(tmp_path)
    point = SimPoint(plants.planted_cache_read, (4,))
    sim_map([point], jobs=1, store=store, scale="quick")
    for path in tmp_path.rglob("*.json"):
        path.write_text('{"not": "the schema"}')
    with pytest.raises(SanitizerError, match="cache-entry"):
        sim_map([point], jobs=1, store=store, scale="quick")


def test_corrupt_entry_is_silent_miss_when_off(tmp_path):
    store = SimCache(tmp_path)
    point = SimPoint(plants.planted_cache_read, (4,))
    sim_map([point], jobs=1, store=store, scale="quick")
    for path in tmp_path.rglob("*.json"):
        path.write_text("not json at all")
    [result] = sim_map([point], jobs=1, store=store, scale="quick")
    assert result == {"x": 4, "knob": 1}  # recomputed, no error


def test_audit_period_samples_hits(monkeypatch):
    monkeypatch.setenv("REPRO_SIMSAN_PERIOD", "4")
    monkeypatch.setattr(simsan, "_hit_count", 0)
    audited = [simsan.should_audit_hit() for _ in range(8)]
    assert audited.count(True) == 2
    assert audited[3] and audited[7]


def test_sanitizer_off_by_default(tmp_path):
    # No env var: plants run without any report.
    [result] = sim_map([SimPoint(plants.planted_global_write, (2,))],
                       jobs=1, cache=False)
    assert result == {"x": 2}
