"""Unit tests for the (MC)² consistency checker."""

import pytest

from repro import System, small_system
from repro.isa import ops
from repro.mcsquare.ctt import CttEntry
from repro.mcsquare.verification import ConsistencyChecker, ConsistencyError
from repro.sw.memcpy import memcpy_lazy_ops


class TestVerify:
    def test_clean_system_passes(self):
        system = System(small_system())
        checker = ConsistencyChecker(system)
        checker.verify()
        assert checker.checks_run == 1

    def test_passes_during_real_workload(self):
        system = System(small_system())
        checker = ConsistencyChecker(system)
        src = system.alloc(8192, align=4096)
        dst = system.alloc(8192, align=4096)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 8192)
            for off in range(0, 8192, 64):
                yield ops.store(src + off, 64, data=b"\x01" * 64)
            for off in range(0, 8192, 64):
                yield ops.clwb(src + off)
            yield ops.mfence()

        checker.attach(every_cycles=500)
        system.run_program(prog())
        system.drain()
        checker.verify()
        assert checker.checks_run > 1

    def test_detects_corrupted_ctt(self):
        system = System(small_system())
        # Inject two overlapping destination entries behind the API's back.
        system.ctt._add(CttEntry(0x10000, 0x20000, 128))
        system.ctt._add(CttEntry(0x10040, 0x30000, 128))
        checker = ConsistencyChecker(system)
        with pytest.raises(ConsistencyError):
            checker.verify()

    def test_detects_double_dirty_line(self):
        system = System(small_system())
        addr = system.alloc(4096)
        system.hierarchy.l1s[0].fill(addr, bytes(64), now=0, dirty=True)
        system.hierarchy.l1s[1].fill(addr, bytes(64), now=0, dirty=True)
        checker = ConsistencyChecker(system)
        with pytest.raises(ConsistencyError):
            checker.verify()

    def test_detach_stops_checks(self):
        system = System(small_system())
        checker = ConsistencyChecker(system)
        checker.attach(every_cycles=100)
        checker.detach()
        system.sim.run()
        assert checker.checks_run == 0

    def test_bad_period_rejected(self):
        system = System(small_system())
        with pytest.raises(Exception):
            ConsistencyChecker(system).attach(every_cycles=0)

    def test_baseline_system_trivially_consistent(self):
        system = System(small_system(mcsquare_enabled=False))
        ConsistencyChecker(system).verify()


class TestFailureDiagnostics:
    def _corrupt(self, system):
        system.ctt._add(CttEntry(0x10000, 0x20000, 128))
        system.ctt._add(CttEntry(0x10040, 0x30000, 128))

    def test_failure_carries_cycle_and_check_number(self):
        system = System(small_system())
        self._corrupt(system)
        checker = ConsistencyChecker(system)
        with pytest.raises(ConsistencyError, match=r"cycle \d+, check #1"):
            checker.verify()

    def test_check_number_counts_prior_passes(self):
        system = System(small_system())
        checker = ConsistencyChecker(system)
        checker.verify()
        checker.verify()
        self._corrupt(system)
        with pytest.raises(ConsistencyError, match=r"check #3"):
            checker.verify()

    def test_periodic_failure_detaches_cleanly(self):
        system = System(small_system())
        checker = ConsistencyChecker(system)
        checker.attach(every_cycles=100)
        self._corrupt(system)
        # Keep the queue busy past the first check so the tick fires.
        for i in range(1, 6):
            system.sim.schedule(100 * i, lambda: None, label="filler")
        with pytest.raises(ConsistencyError):
            system.sim.run()
        # The failed tick cleared its event: detach() has nothing stale
        # to cancel and a later attach() starts fresh.
        assert checker._event is None
        checker.detach()
