"""Unit tests for the zIO comparator engine."""

import pytest

from repro import System, small_system
from repro.common import params
from repro.common.units import PAGE_SIZE
from repro.isa.ops import OpKind
from repro.zio.engine import ZioEngine


def build():
    system = System(small_system(mcsquare_enabled=False))
    return system, ZioEngine(system)


def pattern(n):
    return bytes((i * 31 + 7) & 0xFF for i in range(n))


class TestElisionPolicy:
    def test_subpage_copy_not_elided(self):
        system, zio = build()
        src = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(PAGE_SIZE, align=PAGE_SIZE)
        system.run_program(zio.copy_ops(dst, src, 2048))
        assert zio.elisions == 0
        assert zio.fallback_copies == 1

    def test_page_copy_elided(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        system.run_program(zio.copy_ops(dst, src, PAGE_SIZE))
        assert zio.elisions == 1
        assert zio.is_elided(dst)

    def test_unaligned_region_with_no_full_page_falls_back(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE) + 100
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE) + 100
        system.run_program(zio.copy_ops(dst, src, PAGE_SIZE))
        # Destination covers no complete page: cannot remap.
        assert zio.elisions == 0

    def test_fringes_copied_eagerly(self):
        system, zio = build()
        src = system.alloc(3 * PAGE_SIZE, align=PAGE_SIZE) + 512
        dst = system.alloc(3 * PAGE_SIZE, align=PAGE_SIZE) + 512
        size = 2 * PAGE_SIZE
        data = pattern(size)
        system.backing.write(src, data)
        system.run_program(zio.copy_ops(dst, src, size))
        system.drain()
        # Head fringe (before the first whole page) must be real data.
        head = PAGE_SIZE - 512
        assert system.read_memory(dst, head) == data[:head]


class TestCopyOnAccess:
    def test_read_faults_once_and_returns_data(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        data = pattern(PAGE_SIZE)
        system.backing.write(src, data)
        got = {}

        def prog():
            yield from zio.copy_ops(dst, src, PAGE_SIZE)
            got["a"] = (yield from _read(zio, dst + 100, 8))
            got["b"] = (yield from _read(zio, dst + 200, 8))

        system.run_program(prog())
        system.drain()
        assert got["a"] == data[100:108]
        assert got["b"] == data[200:208]
        assert zio.faults == 1  # same page faults only once

    def test_each_page_faults_separately(self):
        system, zio = build()
        size = 4 * PAGE_SIZE
        src = system.alloc(size + PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(size + PAGE_SIZE, align=PAGE_SIZE)

        def prog():
            yield from zio.copy_ops(dst, src, size)
            for page in range(4):
                yield from _read(zio, dst + page * PAGE_SIZE, 8)

        system.run_program(prog())
        assert zio.faults == 4

    def test_write_also_faults(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        data = pattern(PAGE_SIZE)
        system.backing.write(src, data)

        def prog():
            yield from zio.copy_ops(dst, src, PAGE_SIZE)
            yield from zio.write_ops(dst + 8, 8, data=b"NEWBYTES")

        system.run_program(prog())
        system.drain()
        system.hierarchy.flush_all()
        system.drain()
        # Fault copied the page, then the store modified 8 bytes.
        assert system.read_memory(dst, 8) == data[:8]
        assert system.read_memory(dst + 8, 8) == b"NEWBYTES"
        assert zio.faults == 1

    def test_free_drops_elision(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)

        def prog():
            yield from zio.copy_ops(dst, src, PAGE_SIZE)
            yield from zio.free_ops(dst, PAGE_SIZE)

        system.run_program(prog())
        assert not zio.is_elided(dst)


class TestCosts:
    def test_elision_cost_charged(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        t = system.run_program(zio.copy_ops(dst, src, PAGE_SIZE))
        assert t >= params.ZIO_ELISION_BASE_CYCLES

    def test_fault_cost_charged(self):
        system, zio = build()
        src = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)
        dst = system.alloc(2 * PAGE_SIZE, align=PAGE_SIZE)

        def copy_only():
            yield from zio.copy_ops(dst, src, PAGE_SIZE)

        t_copy = system.run_program(copy_only())

        def access():
            yield from _read_gen(zio, dst, 8)

        t_after = system.run_program(access())
        assert t_after - t_copy >= params.USERFAULTFD_FAULT_CYCLES


def _read(zio, addr, size):
    """Yield the engine's read ops; return the loaded bytes."""
    value = None
    for op in zio.read_ops(addr, size, blocking=True):
        value = yield op
    return value


def _read_gen(zio, addr, size):
    for op in zio.read_ops(addr, size):
        yield op
