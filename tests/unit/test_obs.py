"""Unit tests for the repro.obs observability subsystem."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.export import (chrome_trace, diff_summaries,
                              encode_chrome_trace, summarize_trace,
                              validate_chrome_trace, write_timeline_csv,
                              write_timeline_json)
from repro.obs.tracer import (CATEGORIES, DEFAULT_CATEGORIES, TraceConfig,
                              Tracer, parse_trace_spec)
from repro.sim.engine import Simulator


class TestParseTraceSpec:
    def test_off_tokens_disable(self):
        for spec in ("", "0", "off", "false", "none", "OFF", " off , 0 "):
            assert parse_trace_spec(spec) is None

    def test_on_gives_defaults(self):
        config = parse_trace_spec("on")
        assert config.categories == DEFAULT_CATEGORIES
        assert "engine" not in config.categories
        assert "dram" not in config.categories

    def test_all_gives_everything(self):
        assert parse_trace_spec("all").categories == CATEGORIES

    def test_category_list(self):
        config = parse_trace_spec("copy,bpq")
        assert config.categories == frozenset({"copy", "bpq"})

    def test_knobs(self):
        config = parse_trace_spec("on,sample=512,capacity=1024")
        assert config.sample_every == 512
        assert config.capacity == 1024

    def test_unknown_token_raises(self):
        with pytest.raises(ConfigError):
            parse_trace_spec("copyy")

    def test_bad_knob_raises(self):
        with pytest.raises(ConfigError):
            parse_trace_spec("sample=abc")
        with pytest.raises(ConfigError):
            parse_trace_spec("capacity=0")


class TestTracer:
    def _tracer(self, **kwargs) -> Tracer:
        return Tracer(Simulator(), TraceConfig(**kwargs))

    def test_category_gating(self):
        tracer = self._tracer(categories={"copy"})
        tracer.instant("mc", "mc0", "ignored")
        tracer.instant("copy", "ctt", "recorded")
        assert len(tracer.events) == 1
        assert tracer.events[0][1] == "copy"

    def test_ring_buffer_drops_oldest(self):
        tracer = self._tracer(capacity=4)
        for i in range(10):
            tracer.instant("copy", "ctt", f"e{i}")
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert tracer.events[0][3] == "e6"

    def test_span_bookkeeping(self):
        tracer = self._tracer()
        tracer.span_begin("copy", "ctt", "copy", "copy:0")
        assert tracer.open_span_count() == 1
        tracer.span_point("copy", "ctt", "bounce", "copy:0")
        tracer.span_end("copy", "copy:0", {"reason": "resolved"})
        assert tracer.open_span_count() == 0
        phases = [record[0] for record in tracer.events]
        assert phases == ["b", "n", "e"]

    def test_finalize_closes_open_spans_as_unresolved(self):
        tracer = self._tracer()
        tracer.span_begin("copy", "ctt", "copy", "copy:0")
        tracer.finalize()
        assert tracer.open_span_count() == 0
        last = tracer.events[-1]
        assert last[0] == "e"
        assert last[7] == {"reason": "unresolved"}
        before = len(tracer.events)
        tracer.finalize()  # idempotent
        assert len(tracer.events) == before

    def test_track_ids_are_stable(self):
        tracer = self._tracer()
        assert tracer.track("engine") == 1
        assert tracer.track("ctt") == 2
        assert tracer.track("engine") == 1

    def test_engine_hook_counts_fired_events(self):
        sim = Simulator()
        tracer = Tracer(sim, TraceConfig(categories={"engine"}))
        sim.enable_tracing(tracer.on_engine_event)
        for i in range(5):
            sim.schedule(i, lambda: None, label="tick")
        sim.run()
        assert len(tracer.events) == 5
        assert sim.events_fired == 5

    def test_engine_hook_drives_sampler(self):
        sim = Simulator()
        tracer = Tracer(sim, TraceConfig(categories={"sampler"},
                                         sample_every=2))
        samples = []

        class _Sampler:
            def sample(self, now):
                samples.append(now)

        tracer.sampler = _Sampler()
        sim.enable_tracing(tracer.on_engine_event)
        for i in range(6):
            sim.schedule(i, lambda: None, label="tick")
        sim.run()
        assert len(samples) == 3

    def test_disabled_engine_pays_no_tracer_callback(self, monkeypatch):
        """Without observers run() must stay on the fast loop entirely."""
        sim = Simulator()

        def _boom(self, until, max_events):
            raise AssertionError("observed loop entered without observers")

        monkeypatch.setattr(Simulator, "_run_observed", _boom)
        for i in range(5):
            sim.schedule(i, lambda: None, label="tick")
        sim.run()
        assert sim.events_fired == 5

    def test_disable_tracing_returns_to_fast_loop(self, monkeypatch):
        sim = Simulator()
        calls = []
        sim.enable_tracing(lambda label, now: calls.append(now))
        sim.schedule(1, lambda: None)
        sim.run()
        assert calls
        sim.disable_tracing()
        monkeypatch.setattr(
            Simulator, "_run_observed",
            lambda self, until, max_events: pytest.fail("observed loop"))
        sim.schedule(1, lambda: None)
        sim.run()


class TestExport:
    def _traced(self) -> Tracer:
        sim = Simulator()
        tracer = Tracer(sim, TraceConfig(categories=CATEGORIES))
        tracer.track("engine")
        tracer.track("ctt")
        tracer.span_begin("copy", "ctt", "copy", "copy:0",
                          {"dst": "0x1000", "size": 4096})
        sim.schedule(100, lambda: None)
        sim.run()
        tracer.complete("dram", "dram0", "access", 10, 40, {"kind": "hit"})
        tracer.counter("sampler", "metrics", "ctt", {"entries": 1})
        tracer.span_end("copy", "copy:0", {"reason": "resolved"})
        tracer.instant("mcsquare", "mc0", "bounce", {"line": "0x2000"})
        return tracer

    def test_chrome_trace_structure_and_validation(self):
        trace = chrome_trace(self._traced(), label="unit")
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metadata)
        names = {e["args"]["name"] for e in metadata
                 if e["name"] == "thread_name"}
        assert {"engine", "ctt"} <= names
        x = next(e for e in events if e["ph"] == "X")
        assert x["ts"] == 10 and x["dur"] == 30
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_encoding_is_canonical(self):
        a = encode_chrome_trace(chrome_trace(self._traced(), label="unit"))
        b = encode_chrome_trace(chrome_trace(self._traced(), label="unit"))
        assert a == b
        assert json.loads(a.decode("utf-8"))["otherData"]["clock"] == "cycles"

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [
            {"ph": "Z", "pid": 1, "tid": 1, "name": "x", "ts": 0},
            {"ph": "i", "pid": 1, "tid": 1, "name": "x", "ts": -5},
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0},
            {"ph": "e", "cat": "copy", "pid": 1, "tid": 1, "name": "x",
             "ts": 0, "id": "copy:9"},
            {"ph": "b", "cat": "copy", "pid": 1, "tid": 1, "name": "x",
             "ts": 0, "id": "copy:1"},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("unknown ph" in p for p in problems)
        assert any("negative" in p for p in problems)
        assert any("integer dur" in p for p in problems)
        assert any("end without begin" in p for p in problems)
        assert any("never ended" in p for p in problems)

    def test_validator_tolerates_imbalance_after_drops(self):
        trace = {
            "otherData": {"dropped_events": 3},
            "traceEvents": [
                {"ph": "e", "cat": "copy", "pid": 1, "tid": 1, "name": "x",
                 "ts": 0, "id": "copy:9"}],
        }
        assert validate_chrome_trace(trace) == []

    def test_summarize_and_diff(self):
        trace = chrome_trace(self._traced(), label="unit")
        summary = summarize_trace(trace)
        assert summary["spans"]["copy"]["begun"] == 1
        assert summary["spans"]["copy"]["ended"] == 1
        assert summary["spans"]["copy"]["reasons"] == {"resolved": 1}
        assert summary["completes"]["dram/access"]["total_dur"] == 30
        assert summary["counters_final"]["metrics/ctt.entries"] == 1
        assert diff_summaries(summary, summary) == {
            "added": {}, "removed": {}, "changed": {}}

        other = summarize_trace(chrome_trace(self._traced(), label="unit"))
        other["events"] += 1
        diff = diff_summaries(summary, other)
        assert diff["changed"]["events"] == [summary["events"],
                                             summary["events"] + 1]

    def test_timeline_writers(self, tmp_path):
        timeline = [{"cycle": 0, "live.ctt_entries": 0.0},
                    {"cycle": 100, "live.ctt_entries": 2.0,
                     "stat.mc0.reads": 7.0}]
        csv_path = write_timeline_csv(timeline, tmp_path / "t.csv")
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "cycle,live.ctt_entries,stat.mc0.reads"
        assert lines[1] == "0,0,"
        assert lines[2] == "100,2,7"
        json_path = write_timeline_json(timeline, tmp_path / "t.json")
        assert json.loads(json_path.read_text()) == timeline
