"""Unit tests for the CLI and the results report assembler."""

import pathlib

import pytest

from repro.analysis import report


class TestReport:
    def test_coverage_over_empty_dir(self, tmp_path):
        cov = report.coverage(tmp_path)
        assert set(cov) == set(report.EXPECTED_EXHIBITS)
        assert not any(cov.values())

    def test_build_report_lists_missing(self, tmp_path):
        text = report.build_report(tmp_path)
        assert "0/23" in text
        assert "missing" in text

    def test_build_report_includes_present_files(self, tmp_path):
        (tmp_path / "figure21.txt").write_text("== F21 ==\nrow\n")
        text = report.build_report(tmp_path)
        assert "== F21 ==" in text
        assert "1/23" in text

    def test_cli_writes_output_file(self, tmp_path):
        out = tmp_path / "report.txt"
        rc = report.main(["--results", str(tmp_path),
                          "--output", str(out)])
        assert rc == 0
        assert out.exists()


class TestCli:
    def test_costs_command(self, capsys):
        from repro.__main__ import main
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "2048 entries" in out
        assert "0.79 ns" in out

    def test_unknown_figure_errors(self, capsys):
        from repro.__main__ import main
        assert main(["figure", "999"]) == 2

    def test_demo_command(self, capsys):
        from repro.__main__ import main
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "lazy" in out and "eager" in out
