"""Deliberately planted schedule-order races.

This module is the shared fixture for the MC26xx two-sided oracle
check: the same planted race must be caught *statically* by the
analyzer (``MC2601``/``MC2602``/``MC2603`` in ``test_raceorder.py``)
and *dynamically* by the ``REPRO_TIE_ORDER`` paired-order sanitizer
(``test_tie_order.py``).  It is excluded from lint sweeps
(``--exclude tests/unit/raceorder_plants.py`` in CI and the Makefile)
precisely because its findings are intentional.

Sim-point functions are module-level so they pickle into fork workers.
"""

from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup


class PlantedSameCycleRacer:
    """Plant 1 (MC2601) — two same-cycle phase-0 handlers racing.

    Both handlers are schedulable at the same cycle in the same phase;
    ``_writer_a`` and ``_writer_b`` last-writer-win on ``_slot`` and
    interleave appends into ``_log``, so the final state depends on the
    engine tie-break.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._slot = 0
        self._log = []

    def start(self) -> None:
        self.sim.schedule(1, self._writer_a, label="plant-writer-a")
        self.sim.schedule(1, self._writer_b, label="plant-writer-b")

    def _writer_a(self) -> None:
        self._slot = 1
        self._log.append(self._slot)

    def _writer_b(self) -> None:
        self._slot = 2
        self._log.append(self._slot)


class PlantedNowKeyedTable:
    """Plant 2 (MC2602) — ``sim.now``-keyed dict whose order escapes.

    Same-cycle inserts collide on the bare ``now`` key; ``drain``
    iterates the table unsorted, leaking dispatch order.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._arrivals = {}

    def record(self, value) -> None:
        self._arrivals[self.sim.now] = value

    def drain(self):
        return [value for _when, value in self._arrivals.items()]


def planted_stat_rmw(stats: StatGroup) -> float:
    """Plant 3 (MC2603) — non-commutative RMW of a stat ``.value``."""
    doubler = stats.counter("doubler", "order-dependent accumulator")
    doubler.value *= 2
    return doubler.value


def planted_tie_race():
    """The dynamic plant: a sim point whose result is tie-order dependent.

    Runs Plant 1 to completion and folds the racy state into both the
    returned dict and a StatGroup counter, so the paired-order sanitizer
    sees the divergence through both channels it diffs.
    """
    sim = Simulator()
    stats = StatGroup("plant")
    winner = stats.counter("winner", "whichever writer the tie-break ran last")
    racer = PlantedSameCycleRacer(sim)
    racer.start()
    sim.run()
    winner.inc(racer._slot)
    return {"winner": winner.value, "order": list(racer._log)}


def planted_clean_point(n: int = 3):
    """Control: a same-cycle-heavy point that is tie-order independent."""
    sim = Simulator()
    stats = StatGroup("plant")
    total = stats.counter("total", "commutative accumulation")

    def bump(amount):
        def fire():
            total.inc(amount)
        return fire

    for i in range(n):
        sim.schedule(1, bump(i + 1), label=f"plant-bump-{i}")
    sim.run()
    return {"total": total.value}
