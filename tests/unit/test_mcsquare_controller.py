"""Integration-style tests for the (MC)² controller semantics (§III-B).

These drive full systems through programs and check both *data*
(bit-exact memcpy semantics) and *mechanism* (bounces, BPQ parking,
async freeing, MCFREE) via the stats tree.
"""

import pytest

from repro import System, SystemConfig, small_system
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops

CL = 64


def lazy_system(**overrides):
    return System(small_system(**overrides))


def mc_stat(system, name):
    return sum(system.stats.children[f"mc{ch}"].counters[name].value
               for ch in range(system.config.dram_channels))


def fill(system, addr, size, value):
    system.backing.fill(addr, size, value)


class TestLazyCopyBasics:
    def test_prospective_copy_inserts_ctt_entries(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.run_program(memcpy_lazy_ops(system, dst, src, 4096))
        assert len(system.ctt) >= 1
        assert system.ctt.tracked_bytes() == 4096

    def test_no_dram_data_traffic_for_untouched_copy(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        system.run_program(memcpy_lazy_ops(system, dst, src, 4096))
        # Only control traffic: no demand reads of the copied data.
        assert mc_stat(system, "bounces") == 0

    def test_read_from_destination_bounces_and_returns_source_data(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x5C)
        values = {}

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            v = yield ops.load(dst + 128, 8, blocking=True)
            values["v"] = v

        system.run_program(prog())
        assert values["v"] == b"\x5C" * 8
        assert mc_stat(system, "bounces") >= 1

    def test_bounce_writeback_untracks_line(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x5C)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.load(dst, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        # The read line was resolved and persisted to memory.
        assert system.backing.read_line(dst) == b"\x5C" * CL
        assert system.ctt.lookup_dest_line(dst) is None
        assert mc_stat(system, "bounce_writebacks") >= 1

    def test_no_writeback_config_keeps_tracking(self):
        system = lazy_system(bounce_writeback=False)
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x5C)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.load(dst, 8, blocking=True)
            yield ops.load(dst, 8, blocking=True)

        system.run_program(prog())
        system.drain()
        assert mc_stat(system, "bounce_writebacks") == 0
        assert system.ctt.lookup_dest_line(dst) is not None

    def test_misaligned_copy_double_bounces(self):
        system = lazy_system(prefetch_enabled=False)
        src = system.alloc(8192, align=4096) + 16  # misaligned source
        dst = system.alloc(8192, align=4096)
        fill(system, src, 4096, 0x7E)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.load(dst + CL, 8, blocking=True)

        system.run_program(prog())
        assert mc_stat(system, "double_bounces") >= 1
        system.drain()

    def test_read_from_source_unaffected(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x11)
        values = {}

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            values["v"] = (yield ops.load(src, 8, blocking=True))

        system.run_program(prog())
        assert values["v"] == b"\x11" * 8
        assert mc_stat(system, "bounces") == 0


class TestDestinationWrites:
    def test_write_to_destination_untracks(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x11)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.store(dst, 64, data=b"\x99" * 64)
            yield ops.clwb(dst)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.ctt.lookup_dest_line(dst) is None
        # Other lines still tracked.
        assert system.ctt.lookup_dest_line(dst + CL) is not None
        # Final data: first line new, rest still the lazy copy.
        assert system.read_memory(dst, CL) == b"\x99" * CL
        assert system.read_memory(dst + CL, CL) == b"\x11" * CL


class TestSourceWrites:
    def test_source_write_preserves_copy_semantics(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x11)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            for off in range(0, 4096, CL):
                yield ops.store(src + off, CL, data=b"\x22" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(src + off)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.read_memory(dst, 4096) == b"\x11" * 4096
        assert system.read_memory(src, 4096) == b"\x22" * 4096
        assert mc_stat(system, "src_write_copies") >= 1

    def test_bpq_full_stalls_are_counted(self):
        system = lazy_system(bpq_entries=1)
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            for off in range(0, 4096, CL):
                yield ops.store(src + off, CL, data=b"\x33" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(src + off)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        bpq_stalls = sum(
            system.stats.children[f"mc{ch}"].children["bpq"]
            .counters["full_stalls"].value
            for ch in range(system.config.dram_channels))
        assert bpq_stalls > 0
        assert system.read_memory(dst, 4096) == bytes(4096)

    def test_small_bpq_slower_than_large(self):
        def run(entries):
            system = System(small_system(bpq_entries=entries))
            src = system.alloc(16384, align=4096)
            dst = system.alloc(16384, align=4096)

            def prog():
                yield from memcpy_lazy_ops(system, dst, src, 16384)
                for off in range(0, 16384, CL):
                    yield ops.store(src + off, CL, data=b"\x44" * CL)
                for off in range(0, 16384, CL):
                    yield ops.clwb(src + off)
                yield ops.mfence()

            t = system.run_program(prog())
            system.drain()
            return t

        assert run(1) > run(8)


class TestMcfree:
    def test_mcfree_drops_tracking(self):
        system = lazy_system()
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield ops.mcfree(dst, 4096)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.ctt.lookup_dest_line(dst) is None
        assert mc_stat(system, "mcfrees") == 1


class TestAsyncFree:
    def test_ctt_drains_in_background_past_threshold(self):
        system = lazy_system(ctt_entries=8, copy_threshold=0.5)
        pairs = []

        def prog():
            for i in range(8):
                src = system.alloc(4096, align=4096)
                dst = system.alloc(4096, align=4096)
                system.backing.fill(src, 4096, 0x40 + i)
                pairs.append((dst, src, 0x40 + i))
                yield from memcpy_lazy_ops(system, dst, src, 4096)

        system.run_program(prog())
        system.drain()
        # Background copies resolved entries and wrote real data.
        assert mc_stat(system, "async_frees") > 0
        for dst, src, val in pairs:
            assert system.read_memory(dst, 4096) == bytes([val]) * 4096

    def test_full_ctt_stalls_then_recovers(self):
        system = lazy_system(ctt_entries=4, copy_threshold=0.9)

        def prog():
            for i in range(12):
                src = system.alloc(4096, align=4096)
                dst = system.alloc(4096, align=4096)
                yield from memcpy_lazy_ops(system, dst, src, 4096)

        system.run_program(prog())
        system.drain()
        # The program finished despite the tiny table (stall + retry).
        assert len(system.ctt) <= 4


class TestChainedCopies:
    def test_copy_of_copy_returns_original_data(self):
        system = lazy_system()
        a = system.alloc(4096, align=4096)
        b = system.alloc(4096, align=4096)
        c = system.alloc(4096, align=4096)
        fill(system, a, 4096, 0x61)
        values = {}

        def prog():
            yield from memcpy_lazy_ops(system, b, a, 4096)
            yield from memcpy_lazy_ops(system, c, b, 4096)
            values["c"] = (yield ops.load(c + 256, 8, blocking=True))

        system.run_program(prog())
        system.drain()
        assert values["c"] == b"\x61" * 8
        assert system.read_memory(c, 4096) == b"\x61" * 4096

    def test_overwriting_copy_wins(self):
        system = lazy_system()
        a = system.alloc(4096, align=4096)
        b = system.alloc(4096, align=4096)
        d = system.alloc(4096, align=4096)
        fill(system, a, 4096, 0xA1)
        fill(system, b, 4096, 0xB2)

        def prog():
            yield from memcpy_lazy_ops(system, d, a, 4096)
            yield from memcpy_lazy_ops(system, d, b, 4096)

        system.run_program(prog())
        system.drain()
        assert system.read_memory(d, 4096) == b"\xB2" * 4096


class TestChainedSourceWrites:
    """Regression: liveness when the CTT is rewritten under parked writes.

    Found by the oracle property suite: a parked source write whose
    dependent copies were replaced by newer overlapping copies must
    re-derive its dependents, and materializing a line that itself backs
    other prospective copies must resolve those first (copy chains built
    before the line became a destination)."""

    def test_source_write_with_pre_existing_downstream_copy(self):
        system = lazy_system()
        a = system.alloc(4096, align=4096)
        d = system.alloc(4096, align=4096)
        c = system.alloc(4096, align=4096)
        x = system.alloc(4096, align=4096)
        fill(system, a, 4096, 0xA1)
        fill(system, d, 4096, 0xD2)
        fill(system, x, 4096, 0x0F)

        def prog():
            # E2 first: D -> C (C should end up with OLD D = 0xD2).
            yield from memcpy_lazy_ops(system, c, d, 4096)
            # E1 second: X -> D (D becomes a destination over E2's source).
            yield from memcpy_lazy_ops(system, d, x, 4096)
            # Now write X: parked; materializing D must first resolve C.
            for off in range(0, 4096, CL):
                yield ops.store(x + off, CL, data=b"\x77" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(x + off)
            yield ops.mfence()

        system.run_program(prog(), max_cycles=50_000_000)
        system.drain()
        assert system.read_memory(c, 4096) == b"\xD2" * 4096
        assert system.read_memory(d, 4096) == b"\x0F" * 4096
        assert system.read_memory(x, 4096) == b"\x77" * 4096

    def test_parked_write_survives_ctt_rewrite(self):
        system = lazy_system()
        src1 = system.alloc(4096, align=4096)
        src2 = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src1, 4096, 0x11)
        fill(system, src2, 4096, 0x22)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src1, 4096)
            # Park writes against src1 while its copies are pending...
            for off in range(0, 4096, CL):
                yield ops.store(src1 + off, CL, data=b"\x99" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(src1 + off)
            # ...and immediately overwrite the destination tracking with
            # a different copy, dropping the in-flight materializations.
            yield from memcpy_lazy_ops(system, dst, src2, 4096)
            yield ops.mfence()

        system.run_program(prog(), max_cycles=50_000_000)
        system.drain()
        assert system.read_memory(dst, 4096) == b"\x22" * 4096
        assert system.read_memory(src1, 4096) == b"\x99" * 4096
        # Nothing left parked: all BPQ entries drained.
        for mc in system.controllers:
            assert len(mc.bpq) == 0


class TestGracefulDegradation:
    def _many_copies(self, system, count=8):
        pairs = []

        def prog():
            for i in range(count):
                src = system.alloc(4096, align=4096)
                dst = system.alloc(4096, align=4096)
                system.backing.fill(src, 4096, 0x60 + i)
                pairs.append((dst, 0x60 + i))
                yield from memcpy_lazy_ops(system, dst, src, 4096)

        system.run_program(prog())
        system.drain()
        return pairs

    def test_saturated_ctt_falls_back_to_eager_copy(self):
        # A 2-entry table with a zero retry budget: the first blocked
        # MCLAZY degrades to an MC-side eager copy instead of stalling.
        system = lazy_system(ctt_entries=2, ctt_retry_limit=0)
        pairs = self._many_copies(system)
        assert mc_stat(system, "ctt_full_fallbacks") >= 1
        # Degraded or not, every copy is bit-identical.
        for dst, val in pairs:
            assert system.read_memory(dst, 4096) == bytes([val]) * 4096

    def test_default_config_never_degrades(self):
        # Same pressure, but the paper's stall-forever semantics: the
        # copies complete through retries and background draining, and
        # the fallback paths never fire.
        system = lazy_system(ctt_entries=2)
        pairs = self._many_copies(system)
        assert mc_stat(system, "ctt_full_fallbacks") == 0
        assert mc_stat(system, "bpq_overflow_fallbacks") == 0
        for dst, val in pairs:
            assert system.read_memory(dst, 4096) == bytes([val]) * 4096

    def test_generous_retry_budget_recovers_without_fallback(self):
        # With a real budget the backoff gives the async free engine
        # time to drain the table, so the lazy path still wins.
        system = lazy_system(ctt_entries=4, ctt_retry_limit=64)
        pairs = self._many_copies(system)
        assert mc_stat(system, "ctt_full_fallbacks") == 0
        for dst, val in pairs:
            assert system.read_memory(dst, 4096) == bytes([val]) * 4096

    def test_bpq_overflow_deadline_resolves_stuck_write(self):
        system = lazy_system(bpq_entries=1, bpq_overflow_timeout=10)
        src = system.alloc(4096, align=4096)
        dst = system.alloc(4096, align=4096)
        fill(system, src, 4096, 0x11)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            for off in range(0, 4096, CL):
                yield ops.store(src + off, CL, data=b"\x33" * CL)
            for off in range(0, 4096, CL):
                yield ops.clwb(src + off)
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        # Overflowed parked writes hit their deadline and resolved their
        # dependents eagerly; neither copy nor writes were lost.
        assert mc_stat(system, "bpq_overflow_fallbacks") >= 1
        assert system.read_memory(dst, 4096) == b"\x11" * 4096
        assert system.read_memory(src, 4096) == b"\x33" * 4096
