"""Unit tests for the DDR timing spec and the CTT hardware-cost model."""

import pytest

from repro.common import params
from repro.dram.timing import CXL_DDR4, DDR4_2400, DDR4_3200, DdrTiming
from repro.mcsquare import modeling


class TestDdrTiming:
    def test_latency_classes_ordered(self):
        for grade in (DDR4_2400, DDR4_3200, CXL_DDR4):
            assert grade.row_hit_ns < grade.row_miss_ns \
                < grade.row_conflict_ns

    def test_default_grade_matches_params(self):
        derived = DDR4_2400.cycles(clock_ghz=4.0)
        assert derived["row_hit"] == params.DRAM_ROW_HIT_CYCLES
        assert derived["row_miss"] == params.DRAM_ROW_MISS_CYCLES
        assert derived["row_conflict"] == params.DRAM_ROW_CONFLICT_CYCLES
        assert derived["burst"] == params.DRAM_BURST_CYCLES

    def test_faster_grade_is_faster(self):
        assert DDR4_3200.row_hit_ns < DDR4_2400.row_hit_ns
        assert DDR4_3200.tBL < DDR4_2400.tBL

    def test_cxl_adds_latency_not_bandwidth(self):
        assert CXL_DDR4.row_hit_ns > DDR4_2400.row_hit_ns + 50
        assert CXL_DDR4.tBL == DDR4_2400.tBL

    def test_apply_timing_roundtrip(self):
        from repro.dram.timing import apply_timing
        saved = (params.DRAM_ROW_HIT_CYCLES, params.DRAM_ROW_MISS_CYCLES,
                 params.DRAM_ROW_CONFLICT_CYCLES, params.DRAM_BURST_CYCLES)
        try:
            apply_timing(CXL_DDR4)
            assert params.DRAM_ROW_HIT_CYCLES > saved[0]
        finally:
            (params.DRAM_ROW_HIT_CYCLES, params.DRAM_ROW_MISS_CYCLES,
             params.DRAM_ROW_CONFLICT_CYCLES,
             params.DRAM_BURST_CYCLES) = saved


class TestCttModel:
    def test_anchor_reproduces_paper_numbers(self):
        e = modeling.estimate_ctt(2048)
        assert e.capacity_bytes == 32 * 1024
        assert e.area_mm2 == pytest.approx(0.14)
        assert e.access_ns == pytest.approx(0.79)
        assert e.leakage_mw == pytest.approx(33.8)

    def test_area_scales_linearly(self):
        small = modeling.estimate_ctt(1024)
        big = modeling.estimate_ctt(4096)
        assert big.area_mm2 == pytest.approx(4 * small.area_mm2)

    def test_latency_scales_sublinearly(self):
        small = modeling.estimate_ctt(1024)
        big = modeling.estimate_ctt(4096)
        assert big.access_ns < 4 * small.access_ns
        assert big.access_ns > small.access_ns

    def test_area_overhead_matches_paper_claim(self):
        # Paper: ~0.2% area overhead on a ~100 mm^2 IO die.
        frac = modeling.area_overhead_fraction(2048, die_mm2=100.0)
        assert 0.0005 < frac < 0.005

    def test_access_cycles(self):
        assert modeling.estimate_ctt(2048).access_cycles(4.0) == \
            params.CTT_LATENCY_CYCLES

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            modeling.estimate_ctt(0)

    def test_summary_mentions_key_numbers(self):
        text = modeling.summarize(2048)
        assert "32KB" in text
        assert "0.79" in text


class TestPlotting:
    def test_bar_chart_renders(self):
        from repro.analysis.plotting import bar_chart
        rows = [{"name": "a", "v": 1.0}, {"name": "bb", "v": 2.0}]
        out = bar_chart(rows, "name", "v", title="t")
        assert "t" in out and "bb" in out and "#" in out

    def test_line_plot_renders_multiple_series(self):
        from repro.analysis.plotting import line_plot
        out = line_plot({"x": [1, 2, 3], "y": [3, 2, 1]}, title="p")
        assert "p" in out
        assert "*" in out and "o" in out

    def test_line_plot_log_scale(self):
        from repro.analysis.plotting import line_plot
        out = line_plot({"s": [1, 10, 100, 1000]}, log_y=True)
        assert "(log y)" in out

    def test_cdf_plot(self):
        from repro.analysis.plotting import cdf_plot
        out = cdf_plot([("1KB", 0.5), ("4KB", 1.0)])
        assert "100.0%" in out

    def test_empty_inputs(self):
        from repro.analysis.plotting import bar_chart, line_plot
        assert "no data" in bar_chart([], "a", "b")
        assert "no data" in line_plot({})
