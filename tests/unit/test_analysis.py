"""Tests for the ``repro.analysis`` static analyzer.

Each rule gets a positive fixture (must flag) and a negative fixture
(must stay silent); on top of that the suppression comments, the
baseline round-trip, the SARIF emitter, and the CLI exit codes are
exercised end to end on temporary source trees.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis import engine, noqa, sarif
from repro.analysis.core import all_rules, get_rule
from repro.analysis.cli import main as cli_main
from repro.common.errors import ConfigError

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def analyze_source(tmp_path, source, name="fixture.py", select=None):
    """Write ``source`` to a temp file and run the analyzer over it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return engine.run([str(path)], select=select)


def codes(report):
    return sorted(f.rule for f in report.findings)


# ------------------------------------------------------------------ fixtures
POSITIVE = {
    "MC2001": "import time\n\ndef tick(sim):\n    return time.time()\n",
    "MC2002": "import random\n\ndef pick(items):\n    return random.choice(items)\n",
    "MC2003": ("def arbitrate(reqs):\n"
               "    for req in set(reqs):\n"
               "        yield req\n"),
    "MC2004": ("def hit(lat, total):\n"
               "    return lat / 2 == total\n"),
    "MC2005": "def enqueue(item, queue=[]):\n    queue.append(item)\n",
    "MC2101": ("def fire(sim):\n"
               "    sim.schedule(-5, lambda: None)\n"),
    "MC2102": ("from repro.sim.stats import Counter\n\n"
               "def make():\n"
               "    return Counter('hits', 'hits')\n"),
    "MC2103": ("def check(x):\n"
               "    if x < 0:\n"
               "        raise ValueError('negative')\n"),
    "MC2104": ("def guard(fn):\n"
               "    try:\n"
               "        fn()\n"
               "    except Exception:\n"
               "        pass\n"),
}

NEGATIVE = {
    "MC2001": ("import time\n\ndef tick(sim):\n"
               "    return sim.now  # the simulator clock\n"),
    "MC2002": ("import random\n\ndef pick(items, seed):\n"
               "    return random.Random(seed).choice(items)\n"),
    "MC2003": ("def arbitrate(reqs):\n"
               "    for req in sorted(set(reqs)):\n"
               "        yield req\n"),
    "MC2004": ("def hit(lat, total):\n"
               "    return lat // 2 == total\n"),
    "MC2005": ("def enqueue(item, queue=None):\n"
               "    queue = queue or []\n"
               "    queue.append(item)\n"),
    "MC2101": ("def fire(sim):\n"
               "    sim.schedule(5, lambda: None)\n"),
    "MC2102": ("def make(stats):\n"
               "    return stats.counter('hits', 'hits')\n"),
    "MC2103": ("from repro.common.errors import SimulationError\n\n"
               "def check(x):\n"
               "    if x < 0:\n"
               "        raise SimulationError('negative')\n"),
    "MC2104": ("def guard(fn, log):\n"
               "    try:\n"
               "        fn()\n"
               "    except Exception as exc:\n"
               "        log.append(exc)\n"
               "        raise\n"),
}


@pytest.mark.parametrize("code", sorted(POSITIVE))
def test_rule_flags_positive_fixture(tmp_path, code):
    report = analyze_source(tmp_path, POSITIVE[code], select=[code])
    assert codes(report) == [code], report.findings


@pytest.mark.parametrize("code", sorted(NEGATIVE))
def test_rule_silent_on_negative_fixture(tmp_path, code):
    report = analyze_source(tmp_path, NEGATIVE[code], select=[code])
    assert codes(report) == [], report.findings


def test_rule_catalogue_complete():
    registered = {rule.code for rule in all_rules()}
    assert set(POSITIVE) <= registered
    assert "MC2301" in registered
    for rule in all_rules():
        assert rule.summary and rule.rationale


def test_shadowed_name_not_flagged(tmp_path):
    # `random` here is a caller-provided seeded generator, not the module.
    src = ("import random\n\n"
           "def pick(items, random):\n"
           "    return random.choice(items)\n")
    report = analyze_source(tmp_path, src, select=["MC2002"])
    assert codes(report) == []


def test_syntax_error_reported_as_mc2000(tmp_path):
    report = analyze_source(tmp_path, "def broken(:\n")
    assert codes(report) == ["MC2000"]
    assert not report.ok


# ----------------------------------------------------------- poison taint
TAINT_POSITIVE = """\
class Mover:
    def relocate(self, backing, src, dst):
        data = backing.read_line(src)
        backing.write_line(dst, data)
"""

TAINT_NEGATIVE = """\
class Mover:
    def relocate(self, backing, src, dst):
        data = backing.read_line(src)
        backing.write_line(dst, data)
        if backing.line_poisoned(src):
            backing.poison(dst)
"""

TAINT_DELEGATED = """\
class Mover:
    def _carry(self, backing, src, dst):
        if backing.line_poisoned(src):
            backing.poison(dst)

    def relocate(self, backing, src, dst):
        data = backing.read_line(src)
        backing.write_line(dst, data)
        self._carry(backing, src, dst)
"""


def taint_report(tmp_path, source):
    # The taint pass only inspects the poison-critical packages, so the
    # fixture must look like it lives under repro/mcsquare/.
    return analyze_source(tmp_path, source,
                          name="repro/mcsquare/fixture.py",
                          select=["MC2301"])


def test_taint_flags_unaware_mover(tmp_path):
    report = taint_report(tmp_path, TAINT_POSITIVE)
    assert codes(report) == ["MC2301"]
    assert "relocate" in report.findings[0].message


def test_taint_accepts_poison_aware_mover(tmp_path):
    assert codes(taint_report(tmp_path, TAINT_NEGATIVE)) == []


def test_taint_awareness_propagates_through_helpers(tmp_path):
    assert codes(taint_report(tmp_path, TAINT_DELEGATED)) == []


def test_taint_ignores_modules_outside_target_packages(tmp_path):
    report = analyze_source(tmp_path, TAINT_POSITIVE,
                            name="repro/workloads/fixture.py",
                            select=["MC2301"])
    assert codes(report) == []


# ----------------------------------------------------------- suppressions
def test_noqa_suppresses_specific_code(tmp_path):
    src = "import time\n\ndef t():\n    return time.time()  # noqa: MC2001\n"
    report = analyze_source(tmp_path, src, select=["MC2001"])
    assert len(report.findings) == 1
    assert report.findings[0].suppressed
    assert report.ok


def test_noqa_other_code_does_not_suppress(tmp_path):
    src = "import time\n\ndef t():\n    return time.time()  # noqa: MC2002\n"
    report = analyze_source(tmp_path, src, select=["MC2001"])
    assert not report.ok


def test_bare_noqa_suppresses_everything(tmp_path):
    src = "import time\n\ndef t():\n    return time.time()  # noqa\n"
    report = analyze_source(tmp_path, src, select=["MC2001"])
    assert report.ok and report.findings[0].suppressed


def test_noqa_table_parsing():
    table = noqa.suppressions([
        "clean line",
        "x = 1  # noqa",
        "y = 2  # NOQA: mc2003, MC2104",
    ])
    assert 1 not in table
    assert noqa.is_suppressed("MC2999", 2, table)
    assert noqa.is_suppressed("MC2003", 3, table)
    assert not noqa.is_suppressed("MC2001", 3, table)


# --------------------------------------------------------------- baseline
def test_baseline_round_trip(tmp_path):
    src_file = tmp_path / "fixture.py"
    src_file.write_text(POSITIVE["MC2005"])
    first = engine.run([str(src_file)], select=["MC2005"])
    assert not first.ok

    baseline_path = tmp_path / "baseline.json"
    count = baseline_mod.save(str(baseline_path), first.findings)
    assert count == 1

    second = engine.run([str(src_file)], select=["MC2005"],
                        baseline_path=str(baseline_path))
    assert second.ok and second.findings[0].baselined

    # A new finding in the same file still gates.
    src_file.write_text(POSITIVE["MC2005"]
                        + "\ndef more(extra={}):\n    return extra\n")
    third = engine.run([str(src_file)], select=["MC2005"],
                       baseline_path=str(baseline_path))
    assert not third.ok
    assert len(third.active) == 1


def test_baseline_fingerprints_survive_line_moves(tmp_path):
    src_file = tmp_path / "fixture.py"
    src_file.write_text(POSITIVE["MC2005"])
    first = engine.run([str(src_file)], select=["MC2005"])
    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(str(baseline_path), first.findings)

    # Unrelated edits above the finding must not churn the baseline.
    src_file.write_text("# a new comment\n\n" + POSITIVE["MC2005"])
    moved = engine.run([str(src_file)], select=["MC2005"],
                       baseline_path=str(baseline_path))
    assert moved.ok and moved.findings[0].baselined


def test_malformed_baseline_is_config_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{\"entries\": 7}")
    src_file = tmp_path / "fixture.py"
    src_file.write_text(POSITIVE["MC2005"])
    with pytest.raises(ConfigError):
        engine.run([str(src_file)], baseline_path=str(bad))


def test_checked_in_baseline_is_near_empty_and_justified():
    """Policy: every grandfathered entry carries a real justification.

    The baseline must stay near-empty; the sanctioned exceptions are the
    single wall-clock read in repro.perf.hostclock and the MC2601 pairs
    in the (MC)² controller's bounce/materialize chains, which are
    serialized by the per-channel grant arbiter and verified
    order-independent by the paired tie-order sanitizer (the entries'
    justifications record that — see docs/ANALYSIS.md).  MC26xx entries
    must cite that dynamic verification; nothing else may appear.
    """
    path = SRC_ROOT.parent / "analysis-baseline.json"
    entries = baseline_mod.load(str(path))
    sanctioned = {
        ("MC2001", "src/repro/perf/hostclock.py"),
        ("MC2601", "src/repro/mcsquare/controller.py"),
    }
    assert len(entries) <= 12
    for entry in entries.values():
        assert entry["justification"].strip(), (
            f"baselined finding without justification: {entry}")
        assert (entry["rule"], entry["path"]) in sanctioned, (
            f"unsanctioned baseline entry: {entry['rule']} {entry['path']}")
        if entry["rule"].startswith("MC26"):
            assert "REPRO_TIE_ORDER" in entry["justification"], (
                "MC26xx baseline entry lacks recorded dynamic verification")


def test_fingerprints_ignore_path_absoluteness(tmp_path):
    """Absolute and relative invocations must produce one fingerprint."""
    from dataclasses import replace

    src_file = tmp_path / "fixture.py"
    src_file.write_text(POSITIVE["MC2001"])
    report = engine.run([str(src_file)], select=["MC2001"])
    finding = report.findings[0]
    import os
    relative = replace(finding, path=os.path.relpath(finding.path))
    (_, digest_abs), = baseline_mod.fingerprints([finding])
    (_, digest_rel), = baseline_mod.fingerprints([relative])
    assert digest_abs == digest_rel


# ------------------------------------------------------------------- SARIF
def test_sarif_log_shape(tmp_path):
    report = analyze_source(tmp_path, POSITIVE["MC2001"], select=["MC2001"])
    log = json.loads(sarif.dumps(report.findings))
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {rule.code for rule in all_rules()} <= rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "MC2001"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    assert result["partialFingerprints"]["mc2AnalyzeFingerprint/v1"]


def test_sarif_marks_suppressed_results_as_notes(tmp_path):
    src = "import time\n\ndef t():\n    return time.time()  # noqa: MC2001\n"
    report = analyze_source(tmp_path, src, select=["MC2001"])
    log = json.loads(sarif.dumps(report.findings))
    (result,) = log["runs"][0]["results"]
    assert result["level"] == "note"
    assert result["suppressions"] == [{"kind": "inSource"}]


# --------------------------------------------------------------------- CLI
def test_cli_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(POSITIVE["MC2001"])
    clean = tmp_path / "clean.py"
    clean.write_text(NEGATIVE["MC2001"])

    assert cli_main([str(clean)]) == 0
    assert cli_main([str(dirty)]) == 1
    assert cli_main([str(dirty), "--select", "NOPE"]) == 2
    capsys.readouterr()


def test_cli_sarif_output_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(POSITIVE["MC2002"])
    out = tmp_path / "report.sarif"
    assert cli_main([str(dirty), "--format", "sarif",
                     "--output", str(out)]) == 1
    log = json.loads(out.read_text())
    assert log["runs"][0]["results"][0]["ruleId"] == "MC2002"
    capsys.readouterr()


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(POSITIVE["MC2005"])
    baseline_path = tmp_path / "baseline.json"
    assert cli_main([str(dirty), "--baseline", str(baseline_path),
                     "--write-baseline"]) == 0
    assert cli_main([str(dirty), "--baseline", str(baseline_path)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_module_entry_point_runs_clean_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC_ROOT / "repro")],
        cwd=str(SRC_ROOT.parent), capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout
