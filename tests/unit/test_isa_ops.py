"""Unit tests for the ISA op constructors."""

import pytest

from repro.isa import ops
from repro.isa.ops import Op, OpKind


class TestConstructors:
    def test_load_defaults(self):
        op = ops.load(0x1000)
        assert op.kind is OpKind.LOAD
        assert op.size == 8
        assert not op.blocking

    def test_blocking_load(self):
        assert ops.load(0x1000, blocking=True).blocking

    def test_store_with_data(self):
        op = ops.store(0x1000, 4, data=b"\x01\x02\x03\x04")
        assert op.kind is OpKind.STORE
        assert op.data == b"\x01\x02\x03\x04"

    def test_nt_store_defaults_to_line(self):
        assert ops.nt_store(0x1000).size == 64

    def test_clwb(self):
        op = ops.clwb(0x1234)
        assert op.kind is OpKind.CLWB
        assert op.size == 64

    def test_clwb_range(self):
        op = ops.clwb_range(0x1000, 4096)
        assert op.kind is OpKind.CLWB_RANGE
        assert op.size == 4096

    def test_mclazy_carries_both_addresses(self):
        op = ops.mclazy(0x2000, 0x1000, 128)
        assert op.addr == 0x2000       # destination
        assert op.src_addr == 0x1000   # source
        assert op.size == 128

    def test_mcfree(self):
        op = ops.mcfree(0x3000, 4096)
        assert op.kind is OpKind.MCFREE

    def test_mfence(self):
        assert ops.mfence().kind is OpKind.MFENCE

    def test_compute(self):
        assert ops.compute(50).cycles == 50

    def test_bulk_copy(self):
        op = ops.bulk_copy(0x2000, 0x1000, 8192)
        assert op.kind is OpKind.BULK_COPY
        assert op.addr == 0x2000 and op.src_addr == 0x1000


class TestLifecycleFields:
    def test_fresh_op_has_no_timestamps(self):
        op = ops.load(0)
        assert op.issued_at is None
        assert op.completed_at is None
        assert op.retired_at is None
        assert op.value is None

    def test_on_retire_callback_stored(self):
        marker = lambda op, t: None
        assert ops.load(0, on_retire=marker).on_retire is marker

    def test_repr_is_informative(self):
        text = repr(ops.load(0x1000, 8))
        assert "load" in text and "0x1000" in text
