"""Unit tests for the packet layer."""

from repro.sim.packet import Packet, PacketType


class TestPacket:
    def test_packets_carry_no_process_global_state(self):
        # Packets deliberately have no serial id: a module-level counter
        # would be shared mutable state across forked sweep workers.
        assert not hasattr(Packet(PacketType.READ, 0), "id")

    def test_kind_predicates(self):
        assert Packet(PacketType.READ, 0).is_read
        assert not Packet(PacketType.READ, 0).is_write
        assert Packet(PacketType.WRITE, 0).is_write
        assert not Packet(PacketType.MCLAZY, 0).is_read

    def test_complete_fires_once(self):
        fired = []
        pkt = Packet(PacketType.READ, 0,
                     on_complete=lambda p: fired.append(p))
        pkt.complete(10)
        pkt.complete(20)  # second call is a no-op
        assert fired == [pkt]
        assert pkt.completed_at == 20  # timestamp still records last call

    def test_complete_without_callback(self):
        Packet(PacketType.WRITE, 0).complete(5)  # must not raise

    def test_mclazy_carries_descriptor(self):
        pkt = Packet(PacketType.MCLAZY, 0x2000, 4096, src_addr=0x1000)
        assert pkt.addr == 0x2000
        assert pkt.src_addr == 0x1000
        assert pkt.size == 4096

    def test_provenance_flags_default_false(self):
        pkt = Packet(PacketType.READ, 0)
        assert not pkt.is_prefetch
        assert not pkt.is_bounce
        assert not pkt.is_async_copy

    def test_repr_includes_src(self):
        pkt = Packet(PacketType.MCLAZY, 0x40, 64, src_addr=0x80)
        assert "src=0x80" in repr(pkt)
