"""Unit tests for the baseline memory controller."""

import pytest

from repro.common import params
from repro.dram.address_map import AddressMap
from repro.mem.backing_store import BackingStore
from repro.memctrl.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.stats import StatGroup

CL = 64


@pytest.fixture
def rig():
    sim = Simulator()
    amap = AddressMap(channels=1, banks_per_channel=16, row_bytes=8192)
    backing = BackingStore(1 << 22)
    mc = MemoryController(sim, 0, amap, backing, StatGroup("mc"),
                          wpq_entries=4)
    return sim, mc, backing


class TestReads:
    def test_read_returns_backing_data(self, rig):
        sim, mc, backing = rig
        backing.write_line(0, b"\x42" * CL)
        got = {}
        pkt = Packet(PacketType.READ, 0, CL,
                     on_complete=lambda p: got.setdefault("data", p.data))
        mc.receive(pkt)
        sim.run()
        assert got["data"] == b"\x42" * CL

    def test_read_latency_includes_device_time(self, rig):
        sim, mc, backing = rig
        done = {}
        pkt = Packet(PacketType.READ, 0, CL,
                     on_complete=lambda p: done.setdefault("t", sim.now))
        mc.receive(pkt)
        sim.run()
        assert done["t"] >= (2 * params.MC_STATIC_LATENCY_CYCLES
                             + params.DRAM_ROW_MISS_CYCLES)


class TestWrites:
    def test_write_applies_functionally_at_arrival(self, rig):
        sim, mc, backing = rig
        pkt = Packet(PacketType.WRITE, 0, CL)
        pkt.data = b"\x77" * CL
        mc.receive(pkt)
        assert backing.read_line(0) == b"\x77" * CL  # before any drain

    def test_posted_write_acks_quickly(self, rig):
        sim, mc, backing = rig
        acked = {}
        pkt = Packet(PacketType.WRITE, 0, CL,
                     on_complete=lambda p: acked.setdefault("t", sim.now))
        pkt.data = b"\x01" * CL
        mc.receive(pkt)
        sim.run()
        assert acked["t"] <= params.MC_STATIC_LATENCY_CYCLES + 2

    def test_read_after_write_forwards_new_data(self, rig):
        sim, mc, backing = rig
        w = Packet(PacketType.WRITE, 0, CL)
        w.data = b"\x88" * CL
        mc.receive(w)
        got = {}
        r = Packet(PacketType.READ, 0, CL,
                   on_complete=lambda p: got.setdefault("data", p.data))
        mc.receive(r)
        sim.run()
        assert got["data"] == b"\x88" * CL

    def test_wpq_capacity_back_pressures(self, rig):
        sim, mc, backing = rig
        acks = []
        for i in range(8):  # capacity is 4
            pkt = Packet(PacketType.WRITE, i * CL, CL,
                         on_complete=lambda p: acks.append(sim.now))
            pkt.data = bytes([i]) * CL
            mc.receive(pkt)
        assert len(acks) == 0
        assert mc.stats.counters["wpq_rejects"].value == 4
        sim.run()
        assert len(acks) == 8  # all eventually acked after drains

    def test_wpq_fullness_property(self, rig):
        sim, mc, backing = rig
        assert mc.wpq_fullness == 0.0
        pkt = Packet(PacketType.WRITE, 0, CL)
        pkt.data = bytes(CL)
        mc.receive(pkt)
        assert mc.wpq_fullness == 0.25

    def test_drain_wpq_fully(self, rig):
        sim, mc, backing = rig
        for i in range(3):
            pkt = Packet(PacketType.WRITE, i * CL, CL)
            pkt.data = bytes([i]) * CL
            mc.receive(pkt)
        mc.drain_wpq_fully()
        assert mc.wpq_occupancy == 0
        assert mc.stats.counters["write_drains"].value == 3


class TestOwnership:
    def test_owns_by_channel(self):
        sim = Simulator()
        amap = AddressMap(channels=2, banks_per_channel=16, row_bytes=8192)
        backing = BackingStore(1 << 22)
        mc0 = MemoryController(sim, 0, amap, backing, StatGroup("m0"))
        mc1 = MemoryController(sim, 1, amap, backing, StatGroup("m1"))
        assert mc0.owns(0)
        assert not mc0.owns(64)
        assert mc1.owns(64)
