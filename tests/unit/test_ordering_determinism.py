"""Insertion-order independence of diagnostic summaries.

The determinism rules (MC2003) forbid decisions keyed off unordered
container iteration; the two summary paths they flagged — the engine's
queue-label histogram and the watchdog post-mortem — now carry explicit
tie-breaks.  These regressions pin that down: feeding the same labels in
shuffled insertion orders must produce byte-identical reports.
"""

import random

from repro.faults.watchdog import Watchdog
from repro.sim.engine import Simulator

LABELS = ["dram-read", "dram-write", "mclazy-ack", "bounce", "drain",
          "xbar-read", "xbar-write", "refresh"]


def _label_stream(seed):
    """A multiset of (when, label) pairs with plenty of count ties."""
    rng = random.Random(seed)
    pairs = [(when, label)
             for label in LABELS
             for when in range(10, 10 + 2 * (1 + LABELS.index(label) % 3))]
    rng.shuffle(pairs)
    return pairs


def test_queue_labels_identical_across_insertion_orders():
    histograms = []
    for seed in (1, 2, 3):
        sim = Simulator()
        for when, label in _label_stream(seed):
            sim.schedule_at(when, lambda: None, label=label)
        histograms.append(sim.queue_labels())
    assert histograms[0] == histograms[1] == histograms[2]
    # dict equality ignores order; the tie-break makes order part of the
    # contract, so compare the serialized form too.
    assert (list(histograms[0].items()) == list(histograms[1].items())
            == list(histograms[2].items()))


def test_queue_labels_tie_break_is_alphabetical():
    sim = Simulator()
    for label in ("zeta", "alpha", "midl"):
        sim.schedule_at(5, lambda: None, label=label)
    assert list(sim.queue_labels().items()) == [
        ("alpha", 1), ("midl", 1), ("zeta", 1)]


def test_watchdog_post_mortem_identical_across_observation_orders():
    reports = []
    for seed in (1, 2, 3):
        dog = Watchdog(check_every=10_000, stall_checks=10)
        for when, label in _label_stream(seed):
            dog.observe(label, now=when)
        reports.append(dog.post_mortem("test"))
    assert reports[0] == reports[1] == reports[2]
