"""Unit tests for the set-associative cache container."""

import pytest

from repro.cache.cache import Cache
from repro.common.errors import ConfigError
from repro.sim.stats import StatGroup


@pytest.fixture
def cache():
    # 4 sets x 2 ways x 64B = 512B
    return Cache("t", size=512, assoc=2, stats=StatGroup("t"))


class TestConstruction:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Cache("t", size=1000, assoc=3)

    def test_set_count(self, cache):
        assert cache.num_sets == 4


class TestFillLookup:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(0, now=0) is None
        cache.fill(0, bytes(64), now=1)
        line = cache.lookup(0, now=2)
        assert line is not None
        assert line.addr == 0

    def test_lookup_any_offset_within_line(self, cache):
        cache.fill(64, bytes(64), now=0)
        assert cache.lookup(100, now=1) is not None

    def test_lru_eviction(self, cache):
        # Set stride is 4 lines (4 sets): same set every 256 bytes.
        cache.fill(0, b"a" * 64, now=1)
        cache.fill(256, b"b" * 64, now=2)
        cache.lookup(0, now=3)           # touch A so B is LRU
        victim = cache.fill(512, b"c" * 64, now=4)
        assert victim.addr == 256

    def test_fill_existing_never_clobbers_dirty_data(self, cache):
        cache.fill(0, b"\x00" * 64, now=0)
        cache.write_bytes(0, b"\xFF" * 8, now=1)
        cache.fill(0, b"\x00" * 64, now=2)  # stale refill
        assert cache.read_bytes(0, 8, now=3) == b"\xFF" * 8

    def test_dirty_fill_updates_data(self, cache):
        # Writeback migration into this level carries newer bytes.
        cache.fill(0, b"\x00" * 64, now=0)
        cache.fill(0, b"\x11" * 64, now=1, dirty=True)
        assert cache.read_bytes(0, 4, now=2) == b"\x11" * 4

    def test_probe_does_not_touch_lru(self, cache):
        cache.fill(0, b"a" * 64, now=1)
        cache.fill(256, b"b" * 64, now=2)
        assert cache.probe(0)
        victim = cache.fill(512, b"c" * 64, now=3)
        assert victim.addr == 0  # probe did not refresh A


class TestWriteRead:
    def test_write_bytes_marks_dirty(self, cache):
        cache.fill(0, bytes(64), now=0)
        assert cache.write_bytes(10, b"hi", now=1)
        assert cache.lookup(0, now=2).dirty

    def test_write_bytes_miss_returns_false(self, cache):
        assert not cache.write_bytes(0, b"hi", now=1)

    def test_cross_line_write_rejected(self, cache):
        cache.fill(0, bytes(64), now=0)
        with pytest.raises(ConfigError):
            cache.write_bytes(60, b"12345678", now=1)

    def test_read_bytes_roundtrip(self, cache):
        cache.fill(0, bytes(range(64)), now=0)
        assert cache.read_bytes(10, 4, now=1) == bytes([10, 11, 12, 13])


class TestMaintenance:
    def test_invalidate(self, cache):
        cache.fill(0, bytes(64), now=0)
        assert cache.invalidate(0) is not None
        assert cache.lookup(0, now=1) is None
        assert cache.invalidate(0) is None

    def test_clean_returns_data_once(self, cache):
        cache.fill(0, bytes(64), now=0)
        cache.write_bytes(0, b"\xAB" * 8, now=1)
        data = cache.clean(0)
        assert data is not None and data[:8] == b"\xAB" * 8
        assert cache.clean(0) is None  # now clean
        assert cache.lookup(0, now=2) is not None  # still resident

    def test_dirty_lines_listing(self, cache):
        cache.fill(0, bytes(64), now=0)
        cache.fill(64, bytes(64), now=0)
        cache.write_bytes(64, b"x", now=1)
        dirty = cache.dirty_lines()
        assert [l.addr for l in dirty] == [64]

    def test_clear(self, cache):
        cache.fill(0, bytes(64), now=0)
        cache.clear()
        assert cache.resident_lines() == 0
