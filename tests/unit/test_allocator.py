"""Unit tests for the free-list allocator."""

import pytest

from repro import System, small_system
from repro.common.errors import SimulationError
from repro.sw.allocator import FreeListAllocator


@pytest.fixture
def rig():
    system = System(small_system())
    return system, FreeListAllocator(system, 64 * 1024)


class TestMallocFree:
    def test_simple_roundtrip(self, rig):
        system, alloc = rig
        a = alloc.malloc(1000)
        assert alloc.owns(a)
        assert alloc.owns(a + 999)
        alloc.free(a)
        assert not alloc.owns(a)
        alloc.check_invariants()

    def test_allocations_disjoint(self, rig):
        system, alloc = rig
        blocks = [alloc.malloc(500) for _ in range(10)]
        spans = sorted((b, b + 512) for b in blocks)  # aligned to 64
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        alloc.check_invariants()

    def test_alignment(self, rig):
        system, alloc = rig
        for _ in range(5):
            assert alloc.malloc(17) % 64 == 0

    def test_free_coalesces(self, rig):
        system, alloc = rig
        blocks = [alloc.malloc(8 * 1024) for _ in range(8)]
        for b in blocks:
            alloc.free(b)
        alloc.check_invariants()
        # After freeing everything the arena is one range again.
        assert len(alloc._free) == 1
        assert alloc.free_bytes == alloc.capacity

    def test_reuse_after_free(self, rig):
        system, alloc = rig
        a = alloc.malloc(32 * 1024)
        b = alloc.malloc(32 * 1024)
        with pytest.raises(SimulationError):
            alloc.malloc(64)          # full
        alloc.free(a)
        c = alloc.malloc(16 * 1024)   # fits in the hole
        assert alloc.owns(c)
        alloc.check_invariants()

    def test_double_free_rejected(self, rig):
        system, alloc = rig
        a = alloc.malloc(100)
        alloc.free(a)
        with pytest.raises(SimulationError):
            alloc.free(a)

    def test_zero_size_rejected(self, rig):
        system, alloc = rig
        with pytest.raises(SimulationError):
            alloc.malloc(0)

    def test_stats(self, rig):
        system, alloc = rig
        a = alloc.malloc(100)
        alloc.free(a)
        assert alloc.allocations == 1
        assert alloc.frees == 1


class TestMcfreeIntegration:
    def test_free_ops_issues_mcfree_and_drops_tracking(self):
        from repro.sw.memcpy import memcpy_lazy_ops

        system = System(small_system())
        alloc = FreeListAllocator(system, 64 * 1024)
        src = alloc.malloc(4096)
        dst = alloc.malloc(4096)

        def prog():
            yield from memcpy_lazy_ops(system, dst, src, 4096)
            yield from alloc.free_ops(dst)
            from repro.isa import ops
            yield ops.mfence()

        system.run_program(prog())
        system.drain()
        assert system.ctt.lookup_dest_line(dst) is None
        assert not alloc.owns(dst)

    def test_free_ops_without_mcfree_on_baseline(self):
        system = System(small_system(mcsquare_enabled=False))
        alloc = FreeListAllocator(system, 64 * 1024)
        a = alloc.malloc(4096)
        ops_list = list(alloc.free_ops(a))
        from repro.isa.ops import OpKind
        assert not any(o.kind is OpKind.MCFREE for o in ops_list)
