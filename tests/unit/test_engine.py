"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [("outer", 10), ("inner", 15)]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        assert sim.now == 50
        sim.run()
        assert fired == [10, 100]

    def test_until_includes_exact_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=50)
        assert fired == [50]

    def test_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=123)
        assert sim.now == 123


class TestStep:
    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(2, lambda: fired.append("b"))
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert fired == ["a", "b"]
        assert not sim.step()

    def test_pending_counts_live_events(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


def _live_scan(sim):
    """The O(n) definition of pending the counter must agree with."""
    return sum(1 for _ in sim._live_events())


class TestPendingCounter:
    def test_pending_matches_scan_after_cancels(self):
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending == _live_scan(sim) == 5

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        fired = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run(until=1)
        fired.cancel()          # already popped: must be a no-op
        assert sim.pending == _live_scan(sim) == 1

    def test_self_cancel_during_callback(self):
        sim = Simulator()
        holder = {}
        holder["e"] = sim.schedule(1, lambda: holder["e"].cancel())
        sim.run()
        assert sim.pending == _live_scan(sim) == 0

    def test_pending_accurate_from_within_callback(self):
        # verification.ConsistencyChecker reads sim.pending mid-run.
        sim = Simulator()
        seen = []
        sim.schedule(1, lambda: seen.append(sim.pending))
        sim.schedule(2, lambda: None)
        sim.run()
        assert seen == [1]


class TestCompaction:
    # Compaction applies to the far list (events a calendar rotation or
    # more out); a small day_length pushes ordinary delays there.  Ring
    # tombstones are reclaimed by the drain instead (see below).

    def test_cancelled_majority_is_compacted(self):
        sim = Simulator(day_length=16)
        events = [sim.schedule(16 + i, lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # Compaction kicked in: the far heap shrank and the dead
        # fraction never exceeds half of it.
        assert sim.pending == 50
        assert len(sim._far) < 200
        dead = len(sim._far) - sim.pending
        assert dead * 2 <= len(sim._far)
        order = []
        for event in events[150:]:
            event.callback = (lambda w=event.when: order.append(w))
        sim.run()
        assert order == sorted(order)
        assert len(order) == 50

    def test_small_queues_are_not_compacted(self):
        sim = Simulator(day_length=16)
        events = [sim.schedule(16 + i, lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        # Below the compaction floor: dead events linger until promoted.
        assert len(sim._far) == 10
        assert sim.pending == 0
        sim.run()
        assert len(sim._far) == 0

    def test_compaction_during_run_preserves_order(self):
        sim = Simulator(day_length=16)
        fired = []
        victims = []

        def killer():
            for event in victims:
                event.cancel()

        sim.schedule(1, killer)
        victims.extend(sim.schedule(50, lambda: fired.append("dead"))
                       for _ in range(200))
        for t in (10, 20, 30):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [10, 20, 30]
        assert sim.pending == 0

    def test_ring_tombstones_reclaimed_by_drain(self):
        # Near-horizon cancellations never trigger compaction: the
        # drain skips them in place and the bucket empties within one
        # rotation, with the counters staying exact throughout.
        sim = Simulator()
        events = [sim.schedule(5, lambda: None) for _ in range(100)]
        for event in events:
            event.cancel()
        assert sim.pending == 0
        assert len(sim._far) == 0
        sim.run()
        assert sim.now == 0          # tombstones never advance the clock
        assert _live_scan(sim) == 0


class TestProfilingHook:
    def test_label_costs_collected_with_injected_clock(self):
        sim = Simulator()
        ticks = iter(range(1000))
        sim.enable_profiling(lambda: float(next(ticks)))
        sim.schedule(1, lambda: None, label="alpha")
        sim.schedule(2, lambda: None, label="alpha")
        sim.schedule(3, lambda: None)
        sim.run()
        costs = sim.label_costs()
        assert costs["alpha"]["count"] == 2
        assert costs["alpha"]["total_s"] == 2.0  # 1 tick per callback
        assert costs["<unlabelled>"]["count"] == 1
        sim.disable_profiling()
        sim.schedule(1, lambda: None, label="alpha")
        sim.run()
        assert sim.label_costs()["alpha"]["count"] == 2

    def test_profiling_does_not_change_results(self):
        def trace(sim):
            order = []
            for t in (5, 1, 3):
                sim.schedule(t, lambda t=t: order.append((t, sim.now)))
            sim.run()
            return order, sim.now, sim.events_fired

        plain = trace(Simulator())
        profiled_sim = Simulator()
        profiled_sim.enable_profiling(lambda: 0.0)
        assert trace(profiled_sim) == plain


class TestLivelockGuard:
    def test_max_events_raises(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_livelock_error_is_a_simulation_error(self):
        from repro.common.errors import LivelockError

        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(LivelockError):
            sim.run(max_events=1000)

    def test_budget_spent_on_final_event_does_not_raise(self):
        # Exactly max_events fired and the queue is empty: the run
        # finished, it did not livelock.
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        sim.run(max_events=5)
        assert len(fired) == 5

    def test_budget_with_work_remaining_raises(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(i + 1, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)


class TestTimeMonotonicity:
    def _poisoned_queue(self):
        # Force a from-the-past event behind the scheduling API's back
        # (a buggy component mutating `when` could do the same).  The
        # ring cannot hold past cycles by construction, so the far heap
        # is the seam where a poisoned timestamp can appear.
        import heapq

        from repro.sim.engine import Event

        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        assert sim.now == 10
        poisoned = Event(3, 999, lambda: None)
        poisoned._sim = sim
        poisoned._in_far = True
        heapq.heappush(sim._far, (3, 999, poisoned))
        # Stored = _seq - _consumed: account the smuggled event so the
        # locate loop sees it.
        sim._consumed -= 1
        return sim

    def test_run_rejects_backwards_time(self):
        sim = self._poisoned_queue()
        with pytest.raises(SimulationError, match="backwards"):
            sim.run()

    def test_step_rejects_backwards_time(self):
        sim = self._poisoned_queue()
        with pytest.raises(SimulationError, match="backwards"):
            sim.step()

    def test_queue_labels_histogram(self):
        sim = Simulator()
        sim.schedule(1, lambda: None, label="alpha")
        sim.schedule(2, lambda: None, label="alpha")
        sim.schedule(3, lambda: None, label="beta")
        cancelled = sim.schedule(4, lambda: None, label="gamma")
        cancelled.cancel()
        sim.schedule(5, lambda: None)
        labels = sim.queue_labels()
        assert labels["alpha"] == 2
        assert labels["beta"] == 1
        assert labels["<unlabelled>"] == 1
        assert "gamma" not in labels
        assert list(sim.queue_labels(limit=1)) == ["alpha"]
