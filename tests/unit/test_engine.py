"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(10, outer)
        sim.run()
        assert seen == [("outer", 10), ("inner", 15)]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        assert sim.now == 50
        sim.run()
        assert fired == [10, 100]

    def test_until_includes_exact_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=50)
        assert fired == [50]

    def test_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=123)
        assert sim.now == 123


class TestStep:
    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(2, lambda: fired.append("b"))
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert fired == ["a", "b"]
        assert not sim.step()

    def test_pending_counts_live_events(self):
        sim = Simulator()
        event = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestLivelockGuard:
    def test_max_events_raises(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_livelock_error_is_a_simulation_error(self):
        from repro.common.errors import LivelockError

        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(LivelockError):
            sim.run(max_events=1000)

    def test_budget_spent_on_final_event_does_not_raise(self):
        # Exactly max_events fired and the queue is empty: the run
        # finished, it did not livelock.
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        sim.run(max_events=5)
        assert len(fired) == 5

    def test_budget_with_work_remaining_raises(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(i + 1, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)


class TestTimeMonotonicity:
    def _poisoned_queue(self):
        # Force a from-the-past event behind the scheduling API's back
        # (a buggy component mutating `when` could do the same).
        import heapq

        from repro.sim.engine import Event

        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        assert sim.now == 10
        heapq.heappush(sim._queue, Event(3, 999, lambda: None))
        return sim

    def test_run_rejects_backwards_time(self):
        sim = self._poisoned_queue()
        with pytest.raises(SimulationError, match="backwards"):
            sim.run()

    def test_step_rejects_backwards_time(self):
        sim = self._poisoned_queue()
        with pytest.raises(SimulationError, match="backwards"):
            sim.step()

    def test_queue_labels_histogram(self):
        sim = Simulator()
        sim.schedule(1, lambda: None, label="alpha")
        sim.schedule(2, lambda: None, label="alpha")
        sim.schedule(3, lambda: None, label="beta")
        cancelled = sim.schedule(4, lambda: None, label="gamma")
        cancelled.cancel()
        sim.schedule(5, lambda: None)
        labels = sim.queue_labels()
        assert labels["alpha"] == 2
        assert labels["beta"] == 1
        assert labels["<unlabelled>"] == 1
        assert "gamma" not in labels
        assert list(sim.queue_labels(limit=1)) == ["alpha"]
