"""Unit-level tests for the workload generators (fast, no big sims)."""

import pytest

from repro.common.units import KB
from repro.workloads.common import (LatencyRecorder, RegionTracker,
                                    fill_pattern, make_engine, rng)


class TestCommonHelpers:
    def test_rng_deterministic(self):
        assert rng(5).random() == rng(5).random()

    def test_fill_pattern_deterministic_nonzero(self):
        from repro import System, small_system
        a = System(small_system())
        b = System(small_system())
        addr_a = a.alloc(1024)
        addr_b = b.alloc(1024)
        fill_pattern(a, addr_a, 1024)
        fill_pattern(b, addr_b, 1024)
        assert a.backing.read(addr_a, 1024) == b.backing.read(addr_b, 1024)
        assert a.backing.read(addr_a, 1024) != bytes(1024)

    def test_make_engine_names(self):
        from repro import System, small_system
        system = System(small_system())
        # Historical aliases resolve to the registry's canonical names.
        assert make_engine("mcsquare", system).name == "mclazy"
        system2 = System(small_system(mcsquare_enabled=False))
        assert make_engine("memcpy", system2).name == "eager"
        assert make_engine("zio", system2).name == "zio"
        assert make_engine("nocopy", system2).name == "nocopy"
        with pytest.raises(ValueError):
            make_engine("bogus", system)

    def test_latency_recorder_brackets(self):
        from repro import System, small_system
        from repro.isa import ops
        system = System(small_system())
        rec = LatencyRecorder()

        def prog():
            yield rec.begin()
            yield ops.compute(500)
            yield rec.end()
            yield rec.begin()
            yield ops.compute(100)
            yield rec.end()

        system.run_program(prog())
        assert len(rec.samples) == 2
        assert rec.samples[0] >= 500
        assert rec.samples[1] >= 100
        assert rec.samples[0] > rec.samples[1]

    def test_region_tracker_accumulates(self):
        from repro import System, small_system
        from repro.isa import ops
        system = System(small_system())
        regions = RegionTracker()

        def prog():
            for _ in range(3):
                yield regions.begin("work")
                yield ops.compute(200)
                yield regions.end("work")
                yield ops.compute(1000)

        system.run_program(prog())
        assert regions.cycles("work") >= 600
        assert regions.cycles("work") < 2000


class TestProtobufGenerators:
    def test_size_samples_match_cdf_support(self):
        from repro.workloads.protobuf import SIZE_CDF, sample_copy_size
        valid = {s for s, _ in SIZE_CDF}
        random = rng(9)
        for _ in range(500):
            assert sample_copy_size(random) in valid

    def test_messages_deterministic_per_seed(self):
        from repro.workloads.protobuf import generate_messages
        assert generate_messages(10, seed=3) == generate_messages(10, seed=3)
        assert generate_messages(10, seed=3) != generate_messages(10, seed=4)

    def test_fields_sorted_small_first(self):
        from repro.workloads.protobuf import generate_messages
        for fields in generate_messages(20):
            assert fields == sorted(fields)


class TestMvccConstruction:
    def test_rejects_bad_update_kind(self):
        from repro.workloads.mvcc import MvccWorkload
        with pytest.raises(ValueError):
            MvccWorkload("memcpy", update_kind="bogus")

    def test_rejects_too_many_threads(self):
        from repro.workloads.mvcc import MvccWorkload
        with pytest.raises(ValueError):
            MvccWorkload("memcpy", num_threads=99)

    def test_partitions_disjoint(self):
        from repro.workloads.mvcc import MvccWorkload
        w = MvccWorkload("memcpy", num_threads=4, txns_per_thread=1)
        spans = []
        for part in w.partitions:
            spans.append((part["table"],
                          part["table"] + w.rows * w.row_size))
            spans.append((part["versions"],
                          part["versions"] + 2 * w.rows * w.row_size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2


class TestHugepageSetup:
    def test_region_prefaulted_and_mapped(self):
        from repro.common.units import MB
        from repro.workloads.hugepage import HugePageCowWorkload
        w = HugePageCowWorkload("native", region_size=4 * MB, num_updates=1)
        pa = w.space.translate(w.base)
        assert w.system.backing.read(pa, 8) == b"\x33" * 8
        assert len(w.space.ptes) == 2  # 4MB of 2MB pages

    def test_engine_selection(self):
        from repro.common.units import MB
        from repro.workloads.hugepage import HugePageCowWorkload
        native = HugePageCowWorkload("native", region_size=2 * MB,
                                     num_updates=1)
        lazy = HugePageCowWorkload("mcsquare", region_size=2 * MB,
                                   num_updates=1)
        assert native.engine_name == "native"
        assert lazy.engine_name == "mcsquare"
        assert lazy.system.ctt is not None
        assert native.system.ctt is None


class TestRedisSetup:
    def test_keyspace_and_churn_bookkeeping(self):
        from repro.workloads.redis import RedisWorkload
        w = RedisWorkload("memcpy", num_commands=10, value_size=1 * KB)
        w.run()
        assert w.allocator.allocations > 0
        # Live keyspace values stay allocated.
        for addr in w.keyspace.values():
            assert w.allocator.owns(addr)


class TestBandwidthCalibration:
    """Sanity bounds on the simulated memory system's throughput."""

    def test_single_core_read_bandwidth_plausible(self):
        from repro.common.units import MB
        from repro.workloads.micro.bandwidth import measure_read_bandwidth
        r = measure_read_bandwidth(size=1 * MB)
        # Single-core, MLP-bounded: a few GB/s, far below bus peak.
        assert 0.5 < r["gb_per_sec"] < 40.0

    def test_more_cores_more_bandwidth(self):
        from repro.common.units import MB
        from repro.workloads.micro.bandwidth import measure_read_bandwidth
        one = measure_read_bandwidth(size=1 * MB, num_cores=1)
        four = measure_read_bandwidth(size=2 * MB, num_cores=4)
        assert four["gb_per_sec"] > one["gb_per_sec"] * 1.5

    def test_copy_bandwidth_below_read_bandwidth(self):
        from repro.common.units import MB
        from repro.workloads.micro.bandwidth import (measure_copy_bandwidth,
                                                     measure_read_bandwidth)
        read = measure_read_bandwidth(size=1 * MB)
        copy = measure_copy_bandwidth(size=1 * MB)
        # A copy moves each byte twice, so it cannot beat pure reads.
        assert copy["gb_per_sec"] < read["gb_per_sec"] * 1.1
