"""Unit tests for DRAM address mapping and channel timing."""

import pytest

from repro.common import params
from repro.dram.address_map import AddressMap
from repro.dram.device import DramChannel
from repro.sim.stats import StatGroup


@pytest.fixture
def amap():
    return AddressMap(channels=2, banks_per_channel=16, row_bytes=8192)


class TestAddressMap:
    def test_cacheline_interleave_across_channels(self, amap):
        assert amap.channel_of(0) == 0
        assert amap.channel_of(64) == 1
        assert amap.channel_of(128) == 0

    def test_channel_stable_within_line(self, amap):
        assert amap.channel_of(0) == amap.channel_of(63)

    def test_decode_fields_in_range(self, amap):
        for addr in range(0, 1 << 22, 64):
            loc = amap.decode(addr)
            assert 0 <= loc.channel < 2
            assert 0 <= loc.bank < 16
            assert 0 <= loc.column < amap.lines_per_row

    def test_consecutive_channel_lines_share_row(self, amap):
        # Two adjacent lines on the same channel sit in the same row
        # (streaming gets row hits).
        a = amap.decode(0)
        b = amap.decode(128)
        assert (a.bank, a.row) == (b.bank, b.row)

    def test_power_of_two_buffers_use_different_banks(self, amap):
        """Bank hashing must break power-of-two resonance."""
        for distance in (1 << 18, 1 << 20, 1 << 22):
            conflicts = 0
            samples = 0
            for addr in range(0, 1 << 18, 8192):
                a = amap.decode(addr)
                b = amap.decode(addr + distance)
                samples += 1
                if a.bank == b.bank and a.row != b.row:
                    conflicts += 1
            assert conflicts / samples < 0.5, \
                f"bank resonance at distance {distance}"

    def test_invalid_config_rejected(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            AddressMap(channels=0, banks_per_channel=16, row_bytes=8192)
        with pytest.raises(ConfigError):
            AddressMap(channels=2, banks_per_channel=16, row_bytes=100)


class TestDramChannel:
    def _channel(self):
        return DramChannel(StatGroup("dram"))

    def test_first_access_is_row_miss(self, amap):
        ch = self._channel()
        done = ch.access(amap.decode(0), now=0)
        assert done == params.DRAM_ROW_MISS_CYCLES + params.DRAM_BURST_CYCLES
        assert ch.stats.counters["row_misses"].value == 1

    def test_same_row_hit_is_faster(self, amap):
        ch = self._channel()
        first = ch.access(amap.decode(0), now=0)
        second = ch.access(amap.decode(128), now=first)
        assert second - first <= (params.DRAM_ROW_HIT_CYCLES
                                  + params.DRAM_BURST_CYCLES)
        assert ch.stats.counters["row_hits"].value == 1

    def test_row_conflict_slowest(self, amap):
        ch = self._channel()
        loc_a = amap.decode(0)
        # Find another address on the same bank but a different row.
        loc_b = None
        for addr in range(8192, 1 << 24, 8192):
            cand = amap.decode(addr)
            if cand.channel == loc_a.channel and cand.bank == loc_a.bank \
                    and cand.row != loc_a.row:
                loc_b = cand
                break
        assert loc_b is not None
        t1 = ch.access(loc_a, now=0)
        t2 = ch.access(loc_b, now=t1)
        assert t2 - t1 >= params.DRAM_ROW_CONFLICT_CYCLES
        assert ch.stats.counters["row_conflicts"].value == 1

    def test_bank_parallelism_overlaps_device_latency(self, amap):
        """Accesses to different banks serialize only on the burst."""
        ch = self._channel()
        locs = []
        seen_banks = set()
        for addr in range(0, 1 << 24, 8192):
            loc = amap.decode(addr)
            if loc.channel == 0 and loc.bank not in seen_banks:
                seen_banks.add(loc.bank)
                locs.append(loc)
            if len(locs) == 8:
                break
        finishes = [ch.access(loc, now=0) for loc in locs]
        # All 8 issued at t=0: last finish should be far less than
        # 8 serialized row misses.
        serialized = 8 * (params.DRAM_ROW_MISS_CYCLES
                          + params.DRAM_BURST_CYCLES)
        assert max(finishes) < serialized / 2

    def test_same_bank_serializes(self, amap):
        ch = self._channel()
        loc = amap.decode(0)
        t1 = ch.access(loc, now=0)
        t2 = ch.access(loc, now=0)
        assert t2 > t1

    def test_earliest_start(self, amap):
        ch = self._channel()
        assert ch.earliest_start(5) == 5
        done = ch.access(amap.decode(0), now=0)
        assert ch.earliest_start(0) == done
