"""Parallel sweeps must be bit-identical to serial ones.

One sweep per workload family (access, latency, srcwrite) runs twice —
serial and with four workers — with the result cache disabled so both
runs actually simulate.  Row dicts must compare equal, and for the
access family the full flattened StatGroup of a point run inside a
worker must equal the same point run in-process: forking may not change
a single counter.
"""

import pytest

from repro.common.units import KB
from repro.perf.microbench import seq_access_stats_point
from repro.perf.runner import SimPoint, sim_map
from repro.system.config import SystemConfig
from repro.workloads.micro.access import sweep_sequential
from repro.workloads.micro.latency import sweep_copy_latency
from repro.workloads.micro.srcwrite import sweep_bpq

SMALL = SystemConfig(l1_size=8 * KB, l2_size=64 * KB)


@pytest.fixture(autouse=True)
def _no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_SIMCACHE", "off")
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_PERF_WORKER", raising=False)


def _with_jobs(monkeypatch, jobs):
    monkeypatch.setenv("REPRO_JOBS", str(jobs))


def test_sweep_sequential_parallel_is_bit_identical(monkeypatch):
    kwargs = dict(fractions=(0.0, 0.5), buffer_size=32 * KB, config=SMALL)
    _with_jobs(monkeypatch, 1)
    serial = sweep_sequential(**kwargs)
    _with_jobs(monkeypatch, 4)
    parallel = sweep_sequential(**kwargs)
    assert serial == parallel
    assert [r["variant"] for r in serial[:5]] == [
        "memcpy", "zio", "mcsquare", "mcsquare_aligned",
        "mcsquare_noprefetch"]


def test_sweep_copy_latency_parallel_is_bit_identical(monkeypatch):
    kwargs = dict(sizes=[256, 4 * KB], config=SMALL)
    _with_jobs(monkeypatch, 1)
    serial = sweep_copy_latency(**kwargs)
    _with_jobs(monkeypatch, 4)
    parallel = sweep_copy_latency(**kwargs)
    assert serial == parallel
    assert len(serial) == 2 * 4  # 3 engines + touched_memcpy per size


def test_sweep_bpq_parallel_is_bit_identical(monkeypatch):
    kwargs = dict(buffer_sizes=(4 * KB,), bpq_sizes=(1, 2, 4),
                  config=SMALL)
    _with_jobs(monkeypatch, 1)
    serial = sweep_bpq(**kwargs)
    _with_jobs(monkeypatch, 4)
    parallel = sweep_bpq(**kwargs)
    assert serial == parallel
    assert serial[0]["normalized"] == 1.0


def test_stat_groups_identical_across_fork(monkeypatch):
    """Every flattened stat — not just the reported rows — must match."""
    point = SimPoint(seq_access_stats_point, (),
                     {"buffer_size": 16 * KB, "fraction": 0.5})
    _with_jobs(monkeypatch, 1)
    [in_process] = sim_map([point], cache=False)
    _with_jobs(monkeypatch, 4)
    # Two copies of the same point so the pool path actually engages
    # (a single-point sweep short-circuits to serial).
    forked = sim_map([point, point], cache=False)
    for result in forked:
        assert result["stats"] == in_process["stats"]
        assert result["cycles"] == in_process["cycles"]
        assert result["events"] == in_process["events"]
