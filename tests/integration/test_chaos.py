"""Chaos tests for the supervised sweep layer (repro.resilience).

Each test injects a real failure — a worker ``os._exit`` mid-sweep, a
point that sleeps past its wall deadline, a SIGKILL of the sweeping
process itself — and asserts the recovery contract: the sweep either
completes with results bit-identical to an undisturbed serial run, or
fails loudly with the poison point named in a structured report.  Never
silent holes, never recomputed checkpoints.
"""

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.common.errors import SweepError
from repro.perf.cache import SimCache
from repro.perf.runner import SimPoint, sim_map
from repro.resilience.report import SweepJournal, is_hole
from tests.integration import chaos_points as cp

REPO_ROOT = Path(__file__).resolve().parents[2]


def _entries(store):
    """Entry-file bytes keyed by filename — the bit-identity witness."""
    return {path.name: path.read_bytes() for path in store._entry_files()}


@pytest.fixture(autouse=True)
def _chaos_env(monkeypatch):
    # Fast deterministic backoff so injected failures retry in
    # milliseconds; no inherited sweep knobs leaking in from the host.
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    for name in ("REPRO_POINT_TIMEOUT", "REPRO_POINT_RETRIES",
                 "REPRO_SWEEP_POLICY", "REPRO_TRACE", "REPRO_SIMSAN",
                 "REPRO_SIMCACHE", "REPRO_SCALE", "REPRO_JOBS"):
        monkeypatch.delenv(name, raising=False)


class TestWorkerCrash:
    def test_sweep_survives_worker_death_bit_identical(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        store = SimCache(tmp_path / "store")
        points = [SimPoint(cp.crash_once, (i, str(marker_dir), 3))
                  for i in range(6)]
        results = sim_map(points, jobs=4, store=store, scale="quick")
        assert (marker_dir / "crashed.3").exists()  # the worker really died
        assert [r["i"] for r in results] == list(range(6))

        # An undisturbed serial run (the marker now defuses the crash)
        # into a fresh store must match bit for bit.
        ref_store = SimCache(tmp_path / "ref")
        reference = sim_map(points, jobs=1, store=ref_store, scale="quick")
        assert results == reference
        assert _entries(store) == _entries(ref_store)

        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        state = SweepJournal(store.sweeps_dir,
                             journal_path.name.split(".")[0]).load()
        assert state["ended"]
        assert state["done_indices"] == set(range(6))


class TestPoisonPoint:
    def _points(self):
        return ([SimPoint(cp.well_behaved, (i,)) for i in range(3)]
                + [SimPoint(cp.always_crash, (99,))])

    def test_strict_raises_sweep_error_naming_the_point(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_RETRIES", "2")
        store = SimCache(tmp_path / "store")
        with pytest.raises(SweepError) as excinfo:
            sim_map(self._points(), jobs=2, store=store, scale="quick")
        assert "always_crash" in str(excinfo.value)
        report = excinfo.value.report
        [failure] = report.failures
        assert failure.kind == "crash"
        assert failure.attempts == 2  # exhausted REPRO_POINT_RETRIES
        assert failure.index == 3

        # The report is also persisted next to the journal.
        [report_path] = list(store.sweeps_dir.glob("*.report.json"))
        assert report.sweep_id in report_path.name

    def test_partial_returns_hole_and_completes_the_rest(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_RETRIES", "2")
        store = SimCache(tmp_path / "store")
        results = sim_map(self._points(), jobs=2, store=store,
                          scale="quick", policy="partial")
        assert [r["i"] for r in results[:3]] == [0, 1, 2]
        assert is_hole(results[3])
        assert results[3].kind == "crash"
        assert store.info()["entries"] == 3  # survivors are all cached

    def test_resumed_poison_point_cannot_kill_the_parent(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_RETRIES", "1")
        store = SimCache(tmp_path / "store")
        points = self._points()
        with pytest.raises(SweepError):
            sim_map(points, jobs=2, store=store, scale="quick")
        # The strict run checkpointed the three survivors, so the only
        # remaining miss on resume is the poison point itself.  The
        # supervisor must still contain its crash in a worker — a
        # single-miss serial fallback here would os._exit the parent.
        results = sim_map(points, jobs=2, store=store, scale="quick",
                          policy="partial")
        assert [r["i"] for r in results[:3]] == [0, 1, 2]
        assert is_hole(results[3])
        assert results[3].kind == "crash"


class TestWallDeadline:
    def test_sleeping_point_times_out_without_collateral(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "0.75")
        monkeypatch.setenv("REPRO_POINT_RETRIES", "1")
        store = SimCache(tmp_path / "store")
        points = [SimPoint(cp.sleepy, (0, 0.0)),
                  SimPoint(cp.sleepy, (1, 30.0)),
                  SimPoint(cp.sleepy, (2, 0.0))]
        start = time.monotonic()
        results = sim_map(points, jobs=2, store=store, scale="quick",
                          policy="partial")
        # The supervisor killed the sleeper at its deadline, not at the
        # end of its 30s nap.
        assert time.monotonic() - start < 20
        assert results[0] == {"i": 0, "slept": 0.0}
        assert is_hole(results[1])
        assert results[1].kind == "timeout"
        assert "deadline" in results[1].cause
        assert results[2] == {"i": 2, "slept": 0.0}


class TestParentDeath:
    CHILD = (
        "import sys\n"
        "from repro.perf.cache import SimCache\n"
        "from repro.perf.runner import SimPoint, sim_map\n"
        "from tests.integration import chaos_points as cp\n"
        "store_dir, log_dir = sys.argv[1], sys.argv[2]\n"
        "points = [SimPoint(cp.logged, (i, log_dir)) for i in range(6)]\n"
        "sim_map(points, jobs=2, store=SimCache(store_dir), scale='quick')\n"
    )

    def test_sigkilled_sweep_resumes_bit_identical(self, tmp_path):
        store_dir = tmp_path / "store"
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        env = {k: v for k, v in os.environ.items()
               if not k.startswith("REPRO_")}
        env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD, str(store_dir),
             str(log_dir)],
            env=env, cwd=REPO_ROOT)
        try:
            store = SimCache(store_dir)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list(store._entry_files())) >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail("child sweep finished before the kill "
                                "could land — slow down chaos_points.logged")
                time.sleep(0.02)
            else:
                pytest.fail("child sweep made no progress in 60s")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            if child.poll() is None:
                child.kill()
            child.wait()

        # The journal survived the SIGKILL and shows an unfinished run
        # with the checkpoints that made it to disk.
        [journal_path] = list(store.sweeps_dir.glob("*.journal.jsonl"))
        sweep_id = journal_path.name.split(".")[0]
        state = SweepJournal(store.sweeps_dir, sweep_id).load()
        assert state["runs"] == 1 and not state["ended"]
        done_before = set(state["done_indices"])
        assert done_before  # at least one checkpoint survived

        # Resume in this process against the same store: only the
        # missing points run.
        points = [SimPoint(cp.logged, (i, str(log_dir)))
                  for i in range(6)]
        results = sim_map(points, jobs=2, store=store, scale="quick")
        state = SweepJournal(store.sweeps_dir, sweep_id).load()
        assert state["runs"] == 2 and state["ended"]

        # Checkpointed points were never re-executed (one log line each).
        counts = Counter(
            int(line) for line in
            (log_dir / "exec.log").read_text(encoding="utf-8").splitlines())
        for i in sorted(done_before):
            assert counts[i] == 1, f"checkpointed point {i} re-executed"

        # And the merged store is bit-identical to a clean serial run.
        ref_store = SimCache(tmp_path / "ref")
        reference = sim_map(points, jobs=1, store=ref_store, scale="quick")
        assert results == reference
        assert _entries(store) == _entries(ref_store)
