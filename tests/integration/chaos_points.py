"""Module-level sim points for the chaos tests (``test_chaos.py``).

They live in their own importable module so that (a) they pickle into
fork workers and (b) the child interpreter spawned by the parent-SIGKILL
test can import them under the *same* qualified name
(``tests.integration.chaos_points``), which is what makes the cache keys
— and therefore checkpoint-resume — line up across processes.

Every input is an explicit argument; nothing here reads ambient
environment state (the fork-safety rules, MC24xx, apply to test points
too).
"""

import os
import pathlib
import time


def well_behaved(i):
    return {"i": i, "sq": i * i}


def crash_once(i, marker_dir, crash_at):
    """``os._exit(11)`` the first time point ``crash_at`` executes.

    The marker file is written *before* dying so the supervisor's retry
    finds it and completes — a worker that dies once, not a poison
    point.  ``os._exit`` bypasses all exception handling and finalizers:
    from the parent's side this is indistinguishable from an OOM kill
    or a segfault.
    """
    if i == crash_at:
        marker = pathlib.Path(marker_dir) / f"crashed.{i}"
        if not marker.exists():
            marker.write_text("about to die", encoding="utf-8")
            os._exit(11)
    return {"i": i, "sq": i * i}


def always_crash(i):
    """A poison point: kills its worker on every attempt."""
    os._exit(7)


def sleepy(i, seconds):
    """Sleeps past any deadline the test sets; returns if allowed to."""
    if seconds:
        time.sleep(seconds)
    return {"i": i, "slept": seconds}


def logged(i, log_dir):
    """Appends one line per *completed* execution: recomputation proof.

    The sleep keeps the sweep slow enough for the parent-SIGKILL test to
    land its kill mid-sweep; the log line is written immediately before
    returning, so a checkpointed (cached) point has exactly one line no
    matter how many times the sweep is resumed.
    """
    time.sleep(0.3)
    log = pathlib.Path(log_dir) / "exec.log"
    # Write-only side channel: the log never feeds the returned value,
    # so the cache key (which omits it) stays sound.
    with open(log, "a", encoding="utf-8") as handle:  # noqa: MC2501
        handle.write(f"{i}\n")
    return {"i": i, "cube": i ** 3}
