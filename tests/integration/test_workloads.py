"""Integration tests: every paper workload runs and shows the right trend.

These use scaled-down parameters (the benchmarks in ``benchmarks/`` use
larger ones); each asserts the qualitative result the paper reports.
"""

import pytest

from repro import SystemConfig
from repro.common.units import KB, MB


class TestCopyLatencyMicro:
    def test_mcsquare_beats_memcpy_at_1kb_and_above(self):
        from repro.workloads.micro.latency import measure_copy_latency
        for size in (1 * KB, 16 * KB, 64 * KB):
            eager = measure_copy_latency("memcpy", size)["cycles"]
            lazy = measure_copy_latency("mcsquare", size)["cycles"]
            assert lazy < eager, f"(MC)^2 should win at {size}"

    def test_zio_loses_small_wins_large(self):
        from repro.workloads.micro.latency import measure_copy_latency
        eager16 = measure_copy_latency("memcpy", 16 * KB)["cycles"]
        zio16 = measure_copy_latency("zio", 16 * KB)["cycles"]
        assert zio16 > eager16          # elision overhead dominates
        eager256 = measure_copy_latency("memcpy", 256 * KB)["cycles"]
        zio256 = measure_copy_latency("zio", 256 * KB)["cycles"]
        assert zio256 < eager256        # elision pays off

    def test_touched_memcpy_beats_mcsquare_small(self):
        from repro.workloads.micro.latency import measure_copy_latency
        touched = measure_copy_latency("memcpy", 256, touched=True)["cycles"]
        lazy = measure_copy_latency("mcsquare", 256)["cycles"]
        assert touched < lazy

    def test_breakdown_writeback_grows_with_size(self):
        from repro.workloads.micro.latency import measure_lazy_breakdown
        small = measure_lazy_breakdown(256)
        large = measure_lazy_breakdown(64 * KB)
        assert large["writeback_frac"] > small["writeback_frac"]


class TestAccessMicro:
    def test_sequential_access_prefetch_hides_bounces(self):
        from repro.workloads.micro.access import run_sequential_access
        size = 256 * KB
        base = run_sequential_access("memcpy", 1.0, size)["cycles"]
        mc2 = run_sequential_access("mcsquare", 1.0, size)["cycles"]
        nopf = run_sequential_access(
            "mcsquare", 1.0, size,
            config=SystemConfig(prefetch_enabled=False))["cycles"]
        assert mc2 < base * 1.1         # roughly at or below memcpy
        assert nopf > mc2               # prefetching is what saves it

    # The random-access experiment needs a buffer larger than the LLC
    # (the paper uses 4MB vs a 2MB L2); scale both down together.
    RAND_CONFIG = SystemConfig(l1_size=16 * KB, l2_size=256 * KB)
    RAND_SIZE = 512 * KB

    def test_random_access_writeback_optimization(self):
        from repro.workloads.micro.access import run_random_access
        with_wb = run_random_access("mcsquare", 1.0, self.RAND_SIZE,
                                    config=self.RAND_CONFIG)["cycles"]
        without = run_random_access(
            "mcsquare", 1.0, self.RAND_SIZE,
            config=self.RAND_CONFIG.with_overrides(
                bounce_writeback=False))["cycles"]
        assert without > with_wb

    def test_random_access_aligned_beats_misaligned(self):
        from repro.workloads.micro.access import run_random_access
        misaligned = run_random_access("mcsquare", 0.5, self.RAND_SIZE,
                                       config=self.RAND_CONFIG,
                                       misalign=16)["cycles"]
        aligned = run_random_access("mcsquare", 0.5, self.RAND_SIZE,
                                    config=self.RAND_CONFIG,
                                    misalign=0)["cycles"]
        assert aligned < misaligned


class TestSrcWriteMicro:
    def test_bigger_bpq_is_faster(self):
        from repro.workloads.micro.srcwrite import run_source_write
        slow = run_source_write(16 * KB, bpq_entries=1)["cycles"]
        fast = run_source_write(16 * KB, bpq_entries=8)["cycles"]
        assert fast < slow


class TestProtobuf:
    def test_mcsquare_speeds_up_protobuf(self):
        from repro.workloads.protobuf import run_protobuf
        base = run_protobuf("memcpy", num_ops=40)
        mc2 = run_protobuf("mcsquare", num_ops=40)
        assert mc2["cycles"] < base["cycles"]

    def test_zio_cannot_elide_protobuf(self):
        """All copies are sub-page, so zIO ~ baseline (Fig. 14)."""
        from repro.workloads.protobuf import run_protobuf
        base = run_protobuf("memcpy", num_ops=40)
        zio = run_protobuf("zio", num_ops=40)
        assert abs(zio["cycles"] - base["cycles"]) / base["cycles"] < 0.2

    def test_copy_overhead_is_substantial(self):
        from repro.workloads.protobuf import run_protobuf
        base = run_protobuf("memcpy", num_ops=15)
        assert base["copy_fraction"] > 0.3  # Fig. 2 shows ~50-68%

    def test_size_distribution_matches_cdf(self):
        from repro.workloads.protobuf import size_distribution
        dist = dict(size_distribution())
        assert 0.9 < dist[1024] <= 0.97    # ~56% of copies are 1KB
        assert dist[4096] == 1.0


class TestMongo:
    def test_mcsquare_faster_zio_slower(self):
        from repro.workloads.mongo import run_mongo
        kwargs = dict(num_inserts=2, field_size=32 * KB)
        base = run_mongo("memcpy", **kwargs)["avg_insert_latency_cycles"]
        mc2 = run_mongo("mcsquare", **kwargs)["avg_insert_latency_cycles"]
        zio = run_mongo("zio", **kwargs)["avg_insert_latency_cycles"]
        assert mc2 < base
        assert zio > base              # fault penalties on accessed copies


class TestMvcc:
    def test_small_updates_benefit_most(self):
        from repro.workloads.mvcc import run_mvcc
        txns = 12
        base_small = run_mvcc("memcpy", 0.0625,
                              txns_per_thread=txns)["kops_per_sec"]
        mc2_small = run_mvcc("mcsquare", 0.0625,
                             txns_per_thread=txns)["kops_per_sec"]
        assert mc2_small > base_small

        base_full = run_mvcc("memcpy", 1.0,
                             txns_per_thread=txns)["kops_per_sec"]
        mc2_full = run_mvcc("mcsquare", 1.0,
                            txns_per_thread=txns)["kops_per_sec"]
        ratio_small = mc2_small / base_small
        ratio_full = mc2_full / base_full
        assert ratio_small > ratio_full  # benefit shrinks as updates grow

    def test_eight_threads_run(self):
        from repro.workloads.mvcc import run_mvcc
        r = run_mvcc("mcsquare", 0.125, num_threads=8, txns_per_thread=5)
        assert r["txns"] == 40
        assert r["kops_per_sec"] > 0


class TestHugepage:
    def test_spikes_much_lower_with_mcsquare(self):
        from repro.workloads.hugepage import run_hugepage_cow
        native = run_hugepage_cow("native", region_size=8 * MB,
                                  num_updates=10)
        mc2 = run_hugepage_cow("mcsquare", region_size=8 * MB,
                               num_updates=10)
        assert native["cow_faults"] > 0
        # Worst-case fault latency at least an order of magnitude lower.
        assert native["max_latency"] > 10 * mc2["max_latency"]


class TestPipe:
    def test_throughput_improves_for_large_transfers(self):
        from repro.workloads.pipe import run_pipe
        native = run_pipe("native", 16 * KB, num_transfers=4)
        mc2 = run_pipe("mcsquare", 16 * KB, num_transfers=4)
        assert mc2["bytes_per_kcycle"] > 1.3 * native["bytes_per_kcycle"]


class TestRedis:
    def test_pipeline_benefits_and_uses_mcfree(self):
        from repro.workloads.redis import run_redis
        base = run_redis("memcpy", num_commands=25)
        mc2 = run_redis("mcsquare", num_commands=25)
        assert mc2["cycles"] < base["cycles"]
        assert mc2["mcfrees"] > 0          # frees reached the controller
        assert mc2["allocations"] == base["allocations"]

    def test_allocator_churn_stays_consistent(self):
        from repro.workloads.redis import RedisWorkload
        w = RedisWorkload("mcsquare", num_commands=40)
        w.run()
        w.allocator.check_invariants()
        # The keyspace buffers are still live; AOF buffers churned.
        assert w.allocator.frees > 0
