"""Golden-trace regression: the canonical traced exhibit must not drift.

``tests/goldens/seq-16k.trace.json`` is the checked-in export of one
traced (MC)² sequential-access run.  The obs byte-determinism contract
says re-running the same config produces identical bytes; this test
(and the ``trace-golden`` CI step) re-export the exhibit and hold it to
that — any change to engine scheduling, controller timing, or trace
encoding shows up as a reviewable golden diff instead of silent drift.

Regenerate deliberately with::

    PYTHONPATH=src python -m repro.obs run --workload seq --buffer-kb 16 \
        --out tests/goldens/seq-16k.trace.json
"""

import json
from pathlib import Path

from repro.obs.cli import main as obs_main

GOLDEN = Path(__file__).resolve().parents[1] / "goldens" / "seq-16k.trace.json"


def _regenerate(out_path: Path) -> None:
    assert obs_main(["run", "--workload", "seq", "--buffer-kb", "16",
                     "--out", str(out_path)]) == 0


def test_golden_trace_summary_diff_strict(tmp_path, capsys):
    fresh = tmp_path / "fresh.trace.json"
    _regenerate(fresh)
    assert obs_main(["diff", "--strict", str(GOLDEN), str(fresh)]) == 0
    assert "identical" in capsys.readouterr().out


def test_golden_trace_bytes_identical(tmp_path):
    # Stronger than the summary diff: the export is content-stable
    # byte for byte (the obs determinism contract for *.trace.json).
    fresh = tmp_path / "fresh.trace.json"
    _regenerate(fresh)
    assert fresh.read_bytes() == GOLDEN.read_bytes()


def test_golden_trace_mclazy_backend_identical(tmp_path):
    # The golden predates the copy-backend registry; `mclazy` (the
    # canonical name `mcsquare` now aliases to) must replay it event
    # for event — the backend wrapper is pure delegation around the
    # LazyEngine op stream.  Only the export label (which echoes the
    # requested engine spelling) may differ.
    fresh = tmp_path / "mclazy.trace.json"
    assert obs_main(["run", "--workload", "seq", "--buffer-kb", "16",
                     "--engine", "mclazy", "--out", str(fresh)]) == 0
    got = json.loads(fresh.read_text())
    want = json.loads(GOLDEN.read_text())
    assert got["traceEvents"][0]["args"]["name"] == "seq-mclazy"
    got["traceEvents"][0] = want["traceEvents"][0]
    assert got == want


def test_golden_trace_validates():
    assert obs_main(["validate", str(GOLDEN)]) == 0
    payload = json.loads(GOLDEN.read_text())
    assert payload["traceEvents"]
