"""End-to-end observability checks over real simulated workloads.

The acceptance contract for repro.obs:

* every prospective copy registered in the CTT is exactly one async
  span in the exported Chrome trace, with begin/end counts matching the
  CTT's own ``inserts``/``copies_resolved`` stats and span durations
  matching the ``copy_lifetime`` distribution samples;
* tracing changes nothing: a traced run and an untraced run of the same
  workload produce identical cycles and an identical flattened stats
  tree;
* exports are deterministic: the same run traced twice writes
  byte-identical files, serial or under a forked ``sim_map`` sweep.
"""

import json

import pytest

from repro.common.units import KB
from repro.isa import ops
from repro.obs import runtime
from repro.obs.cli import main as trace_cli
from repro.obs.export import (chrome_trace, encode_chrome_trace,
                              summarize_trace, validate_chrome_trace)
from repro.obs.tracer import CATEGORIES, TraceConfig
from repro.perf.runner import SimPoint, sim_map
from repro.system.config import SystemConfig
from repro.system.system import System
from repro.workloads.micro.access import run_sequential_access

SMALL = SystemConfig(l1_size=8 * KB, l2_size=64 * KB)


@pytest.fixture(autouse=True)
def _clean_runtime(monkeypatch):
    monkeypatch.setenv("REPRO_SIMCACHE", "off")
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_PERF_WORKER", raising=False)
    runtime.unconfigure()
    yield
    runtime.unconfigure()


def _copy_program(system, engine, dst, src, size):
    def program():
        yield from engine.copy_ops(dst, src, size)
        yield from engine.read_ops(dst, 8)
        yield ops.compute(1)
    return program


def _traced_copy_system():
    from repro.workloads.common import fill_pattern, make_engine

    with runtime.tracing(TraceConfig(categories=CATEGORIES)):
        system = System(SMALL)
        engine = make_engine("mcsquare", system)
        src = system.alloc(64 * KB + 4096, align=4096) + 16
        dst = system.alloc(64 * KB + 4096, align=4096)
        fill_pattern(system, src, 32 * KB)
        system.run_program(
            _copy_program(system, engine, dst, src, 32 * KB)())
        system.drain()
        [tracer] = runtime.take_tracers()
    return system, tracer


class TestCopyLifecycleSpans:
    def test_one_span_per_registered_copy(self):
        system, tracer = _traced_copy_system()
        trace = chrome_trace(tracer, label="copies")
        assert validate_chrome_trace(trace) == []

        events = trace["traceEvents"]
        begins = [e for e in events if e["ph"] == "b" and e["cat"] == "copy"]
        ends = [e for e in events if e["ph"] == "e" and e["cat"] == "copy"]
        ctt_stats = system.stats.children["ctt"]

        inserts = int(ctt_stats.counters["inserts"].value)
        assert inserts > 0
        assert len(begins) == inserts
        assert len(ends) == len(begins)
        assert len({e["id"] for e in begins}) == len(begins)

        resolved = [e for e in ends
                    if e.get("args", {}).get("reason") != "unresolved"]
        assert len(resolved) == \
            int(ctt_stats.counters["copies_resolved"].value)

    def test_span_cycles_match_ctt_lifetime_stats(self):
        system, tracer = _traced_copy_system()
        trace = chrome_trace(tracer, label="copies")
        events = trace["traceEvents"]
        begin_ts = {e["id"]: e["ts"] for e in events
                    if e["ph"] == "b" and e["cat"] == "copy"}
        durations = sorted(
            e["ts"] - begin_ts[e["id"]] for e in events
            if e["ph"] == "e" and e["cat"] == "copy"
            and e.get("args", {}).get("reason") != "unresolved")

        lifetime = system.stats.children["ctt"].distributions["copy_lifetime"]
        assert durations == sorted(lifetime.samples)
        assert len(durations) == lifetime.count


class TestTracingIsInert:
    def test_traced_and_untraced_runs_are_bit_identical(self):
        from repro.perf.microbench import seq_access_stats_point

        plain = seq_access_stats_point(buffer_size=16 * KB, fraction=0.5)
        with runtime.tracing(TraceConfig()):
            traced = seq_access_stats_point(buffer_size=16 * KB,
                                            fraction=0.5)
            runtime.take_tracers()
        assert traced["cycles"] == plain["cycles"]
        assert traced["stats"] == plain["stats"]

    def test_two_traced_runs_export_identical_bytes(self):
        def one_run():
            with runtime.tracing(TraceConfig(categories=CATEGORIES)):
                run_sequential_access("mcsquare", 0.5,
                                      buffer_size=32 * KB, config=SMALL)
                [tracer] = runtime.take_tracers()
            return encode_chrome_trace(chrome_trace(tracer, label="det"))

        assert one_run() == one_run()


class TestRunnerIntegration:
    def _sweep(self, tmp_path, monkeypatch, jobs, subdir):
        out_dir = tmp_path / subdir
        monkeypatch.setenv("REPRO_TRACE", "on")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(out_dir))
        monkeypatch.setenv("REPRO_JOBS", str(jobs))
        points = [
            SimPoint(run_sequential_access, ("mcsquare", f),
                     {"buffer_size": 16 * KB, "config": SMALL})
            for f in (0.0, 0.5)
        ]
        results = sim_map(points)
        runtime.unconfigure()
        files = {p.name: p.read_bytes()
                 for p in sorted(out_dir.glob("*.trace.json"))}
        return results, files

    def test_parallel_traced_sweep_matches_serial(self, tmp_path,
                                                  monkeypatch):
        serial_results, serial_files = self._sweep(
            tmp_path, monkeypatch, jobs=1, subdir="serial")
        parallel_results, parallel_files = self._sweep(
            tmp_path, monkeypatch, jobs=2, subdir="parallel")
        assert serial_results == parallel_results
        assert len(serial_files) == 2
        assert serial_files == parallel_files

    def test_traced_sweep_bypasses_result_cache(self, tmp_path,
                                                monkeypatch):
        from repro.perf.cache import SimCache

        monkeypatch.setenv("REPRO_TRACE", "on")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "t"))
        store = SimCache(root=tmp_path / "cache")
        point = SimPoint(run_sequential_access, ("mcsquare", 0.5),
                         {"buffer_size": 16 * KB, "config": SMALL})
        sim_map([point], store=store)
        runtime.unconfigure()
        # Nothing may have been cached: a hit would skip the traced run.
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_untraced_sweep_attaches_no_tracer(self):
        point = SimPoint(run_sequential_access, ("mcsquare", 0.5),
                         {"buffer_size": 16 * KB, "config": SMALL})
        sim_map([point], cache=False)
        assert runtime.take_tracers() == []
        assert not runtime.is_configured()


class TestCli:
    def test_run_summary_diff_validate(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        csv = tmp_path / "run.csv"
        code = trace_cli(["run", "--workload", "seq", "--buffer-kb", "32",
                          "--out", str(out), "--timeline-csv", str(csv)])
        assert code == 0
        assert out.exists()
        assert csv.read_text().startswith("cycle,")
        assert not runtime.is_configured()

        assert trace_cli(["validate", str(out)]) == 0
        capsys.readouterr()  # drain prior output
        assert trace_cli(["summary", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"]["copy"]["begun"] >= 1

        assert trace_cli(["diff", str(out), str(out), "--strict"]) == 0

    def test_run_rejects_off_spec(self, tmp_path):
        assert trace_cli(["run", "--trace", "off",
                          "--out", str(tmp_path / "x.json")]) == 2

    def test_bad_spec_exits_2(self, tmp_path):
        assert trace_cli(["run", "--trace", "bogus-category",
                          "--out", str(tmp_path / "x.json")]) == 2

    def test_validate_flags_broken_trace(self, tmp_path):
        bad = tmp_path / "bad.trace.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "q", "pid": 1, "tid": 1, "name": "x", "ts": 0}]}))
        assert trace_cli(["validate", str(bad)]) == 1


class TestFaultInstants:
    def test_injected_faults_appear_in_trace(self):
        from repro.faults.injector import FaultInjector

        with runtime.tracing(TraceConfig(categories=CATEGORIES)):
            system = System(SMALL)
            injector = FaultInjector(system, seed=7)
            addr = system.alloc(4096, align=4096)
            injector.flip_bits(addr, bits=2)
            [tracer] = runtime.take_tracers()
        trace = chrome_trace(tracer, label="faults")
        summary = summarize_trace(trace)
        assert summary["by_name"].get("faults/bitflip") == 1
