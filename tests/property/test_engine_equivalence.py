"""Property test: calendar queue vs. the retired heap scheduler.

The calendar-queue engine replaced a binary heap whose dispatch order
*was* the repo's ordering contract: pop by ``(when, key)`` with
``key = tie(seq) + phase * 2**40``.  This test keeps that old engine
alive as a ~40-line oracle (:class:`_HeapScheduler`, distilled from the
pre-rewrite ``sim/engine.py``) and drives randomized
schedule/cancel/run workloads — including callback-time schedules and
cancels, partial ``run(until)`` drains, and far-list-crossing delays —
through both.  The (cycle, phase, label) dispatch sequences must be
identical under every installed tie break: fifo (native), lifo, and
the ``seeded:N`` Weyl hash used by ``REPRO_TIE_ORDER``.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.engine import _PHASE_STRIDE, Simulator

_TIE_BREAKS = (
    ("fifo", None),
    ("lifo", lambda seq: -seq),
    ("seeded:7", lambda seq: ((seq + 7) * 0x9E3779B1) & 0xFFFFFFFF),
    ("seeded:23", lambda seq: ((seq + 23) * 0x9E3779B1) & 0xFFFFFFFF),
)


class _OracleEvent:
    """Cancellation handle matching :class:`repro.sim.engine.Event`."""

    __slots__ = ("callback", "cancelled", "fired")

    def __init__(self, callback):
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        if not self.fired:
            self.cancelled = True


class _HeapScheduler:
    """The pre-calendar-queue engine, reduced to its ordering contract.

    One global heap of ``(when, key, seq, event)`` entries where
    ``key = tie(seq) + phase * _PHASE_STRIDE`` — exactly the retired
    implementation's ordering (``seq`` added as a tiebreak column only
    to keep tuples comparable; the real engine relied on tie keys being
    collision-free, which the property below inherits).
    """

    def __init__(self, tie_break=None):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._tie = tie_break

    def schedule(self, delay, callback, label="", phase=0):
        assert delay >= 0
        seq = self._seq
        self._seq = seq + 1
        key = seq if self._tie is None else self._tie(seq)
        key += phase * _PHASE_STRIDE
        event = _OracleEvent(callback)
        heapq.heappush(self._queue, (self.now + delay, key, seq, event))
        return event

    def run(self, until=None):
        queue = self._queue
        while queue:
            when, _key, _seq, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                continue
            if until is not None and when > until:
                self.now = until
                return until
            heapq.heappop(queue)
            event.fired = True
            self.now = when
            event.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now


@st.composite
def workloads(draw):
    """A script both schedulers replay identically.

    Top-level actions: schedule an event (with children its callback
    schedules and an optional handle its callback cancels), cancel a
    handle from outside, or partially drain with ``run(until)``.
    """
    actions = []
    scheduled = 0
    for _ in range(draw(st.integers(2, 40))):
        kind = draw(st.sampled_from(
            ("schedule", "schedule", "schedule", "cancel", "run_until")))
        if kind == "schedule":
            children = draw(st.lists(
                st.tuples(st.integers(0, 40),
                          st.sampled_from((0, 0, 0, 1, 2))),
                max_size=3))
            cancel_target = draw(st.one_of(
                st.none(), st.integers(0, 200)))
            actions.append(("schedule", draw(st.integers(0, 90)),
                            draw(st.sampled_from((0, 0, 0, 1, 2))),
                            children, cancel_target))
            scheduled += 1
        elif kind == "cancel":
            actions.append(("cancel", draw(st.integers(0, 200))))
        else:
            actions.append(("run_until", draw(st.integers(0, 50))))
    return actions


def _replay(sched, actions):
    """Run ``actions`` against ``sched``; return the dispatch log."""
    log = []
    handles = []

    def make_callback(label, phase, children, cancel_target):
        def callback():
            log.append((sched.now, phase, label))
            for j, (cdelay, cphase) in enumerate(children):
                clabel = f"{label}.c{j}"
                handles.append(sched.schedule(
                    cdelay, make_callback(clabel, cphase, (), None),
                    clabel, cphase))
            if cancel_target is not None and handles:
                handles[cancel_target % len(handles)].cancel()
        return callback

    for i, action in enumerate(actions):
        if action[0] == "schedule":
            _, delay, phase, children, cancel_target = action
            label = f"e{i}"
            handles.append(sched.schedule(
                delay, make_callback(label, phase, children, cancel_target),
                label, phase))
        elif action[0] == "cancel" and handles:
            handles[action[1] % len(handles)].cancel()
        elif action[0] == "run_until":
            sched.run(until=sched.now + action[1])
    sched.run()
    return log


@settings(max_examples=120, deadline=None)
@given(workloads(), st.sampled_from((1, 4, 16, None)),
       st.sampled_from(range(len(_TIE_BREAKS))))
def test_calendar_queue_matches_heap_oracle(actions, day_length, tie_index):
    """Identical (cycle, phase, label) sequences, any tie break."""
    name, tie = _TIE_BREAKS[tie_index]
    expected = _replay(_HeapScheduler(tie_break=tie), actions)
    actual = _replay(Simulator(tie_break=tie, day_length=day_length),
                     actions)
    assert actual == expected, (
        f"dispatch order diverged from heap oracle under {name} "
        f"(day_length={day_length})")


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_fifo_matches_native_default(actions):
    """fifo (tie=None) and the default construction agree."""
    assert (_replay(Simulator(), actions)
            == _replay(_HeapScheduler(), actions))
