"""Property test: concurrent lazy copies on multiple cores stay correct.

Each core owns a disjoint arena and runs an independent random program
of lazy/eager copies, stores and loads.  All cores share the caches, the
interconnect, the memory controllers, the CTT, and the BPQs — so their
*timing* interleaves arbitrarily even though their *data* must not.
Divergence on any byte means cross-copy state leaked between cores
(e.g. a CTT trim or BPQ drain resolving against the wrong entry).
"""

from hypothesis import given, settings, strategies as st

from repro import System, small_system
from repro.common.units import CACHELINE_SIZE, PAGE_SIZE
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops, memcpy_ops

CL = CACHELINE_SIZE
ARENA = 8 * 1024
NUM_CORES = 2


@st.composite
def core_program(draw):
    steps = []
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.sampled_from(["lazy", "eager", "store", "load"]))
        if kind in ("lazy", "eager"):
            size = draw(st.integers(1, 16)) * CL
            dst = draw(st.integers(0, (ARENA - size) // CL)) * CL
            src = draw(st.integers(0, (ARENA - size) // CL)) * CL
            if src < dst + size and dst < src + size:
                continue
            steps.append((kind, dst, src, size))
        elif kind == "store":
            steps.append(("store", draw(st.integers(0, ARENA - 8)),
                          draw(st.binary(min_size=8, max_size=8))))
        else:
            steps.append(("load", draw(st.integers(0, ARENA - 8))))
    return steps


@settings(max_examples=25, deadline=None)
@given(st.tuples(*[core_program() for _ in range(NUM_CORES)]))
def test_concurrent_cores_do_not_corrupt_each_other(per_core_steps):
    system = System(small_system(num_cpus=NUM_CORES, ctt_entries=64,
                                 bpq_entries=2))
    bases = [system.alloc(ARENA, align=PAGE_SIZE)
             for _ in range(NUM_CORES)]
    oracles = []
    for base in bases:
        init = bytes((i * 131 + base) & 0xFF for i in range(ARENA))
        system.backing.write(base, init)
        oracles.append(bytearray(init))

    def make_program(core_id):
        base = bases[core_id]
        oracle = oracles[core_id]
        steps = per_core_steps[core_id]

        def program():
            for step in steps:
                if step[0] in ("lazy", "eager"):
                    _, dst, src, size = step
                    oracle[dst:dst + size] = oracle[src:src + size]
                    if step[0] == "lazy":
                        yield from memcpy_lazy_ops(system, base + dst,
                                                   base + src, size)
                    else:
                        yield from memcpy_ops(system, base + dst,
                                              base + src, size)
                elif step[0] == "store":
                    _, addr, data = step
                    oracle[addr:addr + 8] = data
                    yield ops.store(base + addr, 8, data=data)
                else:
                    _, addr = step
                    value = yield ops.load(base + addr, 8, blocking=True)
                    assert value == bytes(oracle[addr:addr + 8]), (
                        f"core {core_id} read stale data at {addr:#x}")
            yield ops.mfence()

        return program()

    system.run_programs({c: make_program(c) for c in range(NUM_CORES)},
                        max_cycles=200_000_000)
    system.drain()
    system.ctt.verify_invariants()
    for core_id, (base, oracle) in enumerate(zip(bases, oracles)):
        visible = system.read_memory(base, ARENA)
        for i in range(ARENA):
            assert visible[i] == oracle[i], (
                f"core {core_id} arena diverged at byte {i:#x}: "
                f"visible={visible[i]:#x} oracle={oracle[i]:#x}")
