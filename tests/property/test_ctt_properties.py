"""Property-based tests for the Copy Tracking Table.

A reference model tracks, per destination cacheline, the byte address of
the source backing each dest byte.  Random sequences of inserts/removes/
frees are applied to both the CTT and the reference; tracked mappings
must agree and the structural invariants must hold after every step.
"""

from hypothesis import given, settings, strategies as st

from repro.mcsquare.ctt import CopyTrackingTable

CL = 64
REGION_LINES = 64  # operate on a small region so overlaps are common
REGION = REGION_LINES * CL
DST_BASE = 0x100000
SRC_BASE = 0x200000


class ReferenceModel:
    """Byte-accurate mirror of what the CTT must remember."""

    def __init__(self):
        # dest byte addr -> source byte addr backing it (or absent)
        self.backing = {}

    def insert(self, dst, src, size):
        # Redirection first: a new source byte that is itself a tracked
        # destination resolves to the original source.  A byte that
        # resolves onto *itself* (swap patterns like A<-B then B<-A)
        # needs no tracking: memory already holds the right value.
        resolved = [self.backing.get(src + i, src + i) for i in range(size)]
        for i in range(size):
            if resolved[i] == dst + i:
                self.backing.pop(dst + i, None)
            else:
                self.backing[dst + i] = resolved[i]

    def remove_dest(self, addr, size):
        for i in range(size):
            self.backing.pop(addr + i, None)

    def tracked_dest_lines(self):
        return {a - a % CL for a in self.backing}


def line_aligned(base, max_lines):
    return st.integers(0, max_lines - 1).map(lambda n: base + n * CL)


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 30))):
        kind = draw(st.sampled_from(["insert", "insert", "insert",
                                     "remove", "free"]))
        if kind == "insert":
            dst = draw(line_aligned(DST_BASE, REGION_LINES - 8))
            # Sources from either the source region or the dest region
            # (to exercise redirection); cacheline-aligned so that one
            # entry can always represent the mapping.
            src_region = draw(st.sampled_from([SRC_BASE, DST_BASE]))
            src = draw(line_aligned(src_region, REGION_LINES - 8))
            size = draw(st.integers(1, 8)) * CL
            ops.append(("insert", dst, src, size))
        elif kind == "remove":
            addr = draw(line_aligned(DST_BASE, REGION_LINES))
            size = draw(st.integers(1, 4)) * CL
            ops.append(("remove", addr, size))
        else:
            addr = draw(line_aligned(DST_BASE, REGION_LINES))
            size = draw(st.integers(1, 16)) * CL
            ops.append(("free", addr, size))
    return ops


@settings(max_examples=150, deadline=None)
@given(operations())
def test_ctt_matches_reference_model(ops):
    ctt = CopyTrackingTable(capacity=4096)
    ref = ReferenceModel()
    for op in ops:
        if op[0] == "insert":
            _, dst, src, size = op
            # Skip inserts whose source overlaps their own destination
            # (illegal for memcpy: buffers must not overlap).
            if src < dst + size and dst < src + size:
                continue
            result = ctt.insert(dst, src, size)
            assert result.ok
            assert not result.eager_lines, \
                "aligned sources must never need eager resolution"
            ref.insert(dst, src, size)
        elif op[0] == "remove":
            _, addr, size = op
            ctt.remove_dest_range(addr, size)
            ref.remove_dest(addr, size)
        else:
            _, addr, size = op
            ctt.free_hint(addr, size)
            ref.remove_dest(addr, size)
        ctt.verify_invariants()

    # Every reference mapping must be reproduced by the CTT, byte for byte.
    for dst_byte, src_byte in ref.backing.items():
        line = dst_byte - dst_byte % CL
        entry = ctt.lookup_dest_line(line)
        assert entry is not None, f"CTT lost dest byte {dst_byte:#x}"
        assert entry.src_for_dst(dst_byte) == src_byte
    # And the CTT must not track anything the reference does not.
    for entry in ctt.entries:
        for off in range(0, entry.size, CL):
            assert (entry.dst + off) in ref.backing


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40),
                          st.integers(1, 6)), min_size=1, max_size=30))
def test_misaligned_sources_keep_invariants(triples):
    """Arbitrary (incl. misaligned) sources never break structure."""
    ctt = CopyTrackingTable(capacity=4096)
    for dst_line, src_off, lines in triples:
        dst = DST_BASE + dst_line * CL
        src = SRC_BASE + src_off * CL + (src_off * 13) % CL  # misaligned
        size = lines * CL
        if src < dst + size and dst < src + size:
            continue
        result = ctt.insert(dst, src, size)
        assert result.ok
        ctt.verify_invariants()
        for dst_eager, pieces in result.eager_lines:
            assert sum(p[2] for p in pieces) == CL


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=64))
def test_merge_never_loses_bytes(line_indices):
    """Per-line inserts of a contiguous copy always track all bytes."""
    ctt = CopyTrackingTable(capacity=4096)
    inserted = set()
    for idx in line_indices:
        ctt.insert(DST_BASE + idx * CL, SRC_BASE + idx * CL, CL)
        inserted.add(idx)
        ctt.verify_invariants()
    assert ctt.tracked_bytes() == len(inserted) * CL
    for idx in inserted:
        entry = ctt.lookup_dest_line(DST_BASE + idx * CL)
        assert entry is not None
        assert entry.src_for_dst(DST_BASE + idx * CL) == SRC_BASE + idx * CL


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 16), st.integers(0, 15))
def test_pop_smallest_is_minimal(n_entries, seed):
    ctt = CopyTrackingTable(capacity=4096)
    sizes = [((seed + i) % 7 + 1) * CL for i in range(n_entries)]
    for i, size in enumerate(sizes):
        ctt.insert(DST_BASE + i * 8 * CL, SRC_BASE + i * 8 * CL, size)
    entry = ctt.pop_smallest()
    assert entry.size == min(sizes)
    assert not entry.active
