"""Property test: the O(1) ``pending`` counter vs. an O(n) queue scan.

The engine keeps ``pending = _seq - _consumed - _cancelled`` as live
counters so sweeps can poll it without walking the calendar.  They are
touched from schedule, cancel (including double-cancel and post-fire
cancel), dispatch, far-list promotion, and compaction — this test
drives random interleavings of all of them and checks the counter
against the ground truth at every step.  Small ``day_length`` values
push part of the workload through the far list and its promotion path.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


def _scan(sim: Simulator) -> int:
    """Ground truth: count live events by walking ring + far list."""
    return sum(1 for _ in sim._live_events())


@st.composite
def schedules(draw):
    """A sequence of schedule/cancel/step/run-until actions."""
    steps = []
    for _ in range(draw(st.integers(1, 60))):
        kind = draw(st.sampled_from(
            ("schedule", "cancel", "cancel", "step", "run_until")))
        if kind == "schedule":
            steps.append(("schedule", draw(st.integers(0, 50))))
        elif kind == "cancel":
            steps.append(("cancel", draw(st.integers(0, 200))))
        elif kind == "run_until":
            steps.append(("run_until", draw(st.integers(0, 30))))
        else:
            steps.append(("step",))
    return steps


@settings(max_examples=150, deadline=None)
@given(schedules(), st.sampled_from((1, 4, 16, None)))
def test_pending_counter_matches_queue_scan(steps, day_length):
    sim = Simulator(day_length=day_length)
    events = []
    for step in steps:
        if step[0] == "schedule":
            events.append(sim.schedule(step[1], lambda: None))
        elif step[0] == "cancel" and events:
            # Arbitrary target: may already be cancelled or fired.
            events[step[1] % len(events)].cancel()
        elif step[0] == "run_until":
            sim.run(until=sim.now + step[1])
        elif step[0] == "step":
            sim.step()
        assert sim.pending == _scan(sim), (
            f"pending counter diverged after {step}")
    # Drain completely: a fully-run queue has nothing pending.
    sim.run()
    assert sim.pending == _scan(sim) == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=30),
       st.sampled_from((4, None)))
def test_pending_survives_cancel_from_callback(delays, day_length):
    """Events cancelled *by a running callback* keep the counter exact."""
    sim = Simulator(day_length=day_length)
    scheduled = []

    def cancel_half() -> None:
        for event in scheduled[::2]:
            event.cancel()

    for delay in delays:
        scheduled.append(sim.schedule(delay, lambda: None))
    sim.schedule(0, cancel_half)
    while sim.step():
        assert sim.pending == _scan(sim)
    assert sim.pending == 0
