"""Property test: every copy backend agrees with a byte-array shadow.

Random programs of non-overlapping copies, stores, and loads run once
per registered backend (eager / mclazy / zio / rowclone / mirror), each
on its natural machine (mcsquare on only for mclazy; hash and ideal
DRAM layouts for the in-DRAM models).  A plain bytearray shadow applies
the same operations eagerly; after the program drains and the backend's
deferred state is resolved, the architecturally visible arena must
equal the shadow byte for byte.

This is the functional half of the backend contract: whatever a
mechanism defers (CTT entries, elided pages, in-flight row copies), a
coherent reader afterwards sees plain-memcpy semantics.  The poison
tests below cover the fault half for the in-DRAM path: RowClone moves
bits blindly, so poisoned source lines must poison the copied
destination lines instead of laundering them as clean data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import System, small_system
from repro.common.units import CACHELINE_SIZE, PAGE_SIZE
from repro.isa import ops
from repro.workloads.common import engine_needs_ctt, make_engine

CL = CACHELINE_SIZE
REGION = 32 * 1024   # two 16KB "local rows" on the 2-channel test machine

BACKENDS = ("eager", "mclazy", "zio", "rowclone", "mirror")


@st.composite
def copy_programs(draw):
    steps = []
    for _ in range(draw(st.integers(1, 10))):
        kind = draw(st.sampled_from(["copy", "copy", "copy",
                                     "store", "load"]))
        if kind == "copy":
            size = draw(st.integers(1, 60)) * CL
            dst = draw(st.integers(0, (REGION - size) // CL)) * CL
            src = draw(st.integers(0, (REGION - size) // CL)) * CL
            if src < dst + size and dst < src + size:
                continue  # memcpy buffers must not overlap
            # Optionally skew the source: same-offset skew keeps the
            # in-DRAM backends eligible, a lone skew forces fallback.
            mis = draw(st.sampled_from([0, 0, 0, CL, 8]))
            if src + mis + size <= REGION and not (
                    src + mis < dst + size and dst < src + mis + size):
                src += mis
            steps.append(("copy", dst, src, size))
        elif kind == "store":
            addr = draw(st.integers(0, REGION - 8))
            steps.append(("store", addr,
                          draw(st.binary(min_size=8, max_size=8))))
        else:
            steps.append(("load", draw(st.integers(0, REGION - 8))))
    return steps


def _build(backend, layout="hash"):
    kwargs = {}
    if not engine_needs_ctt(backend):
        kwargs["mcsquare_enabled"] = False
    system = System(small_system(inmem_layout=layout, **kwargs))
    return system, make_engine(backend, system)


def run_case(backend, steps, layout="hash"):
    system, engine = _build(backend, layout)
    base = system.alloc(REGION, align=16 * 1024)
    shadow = bytearray(REGION)
    init = bytes((i * 89 + 7) & 0xFF for i in range(256)) * (REGION // 256)
    system.backing.write(base, init)
    shadow[:] = init

    def program():
        for step in steps:
            if step[0] == "copy":
                _, dst, src, size = step
                shadow[dst:dst + size] = shadow[src:src + size]
                yield from engine.copy_ops(base + dst, base + src, size)
                yield ops.mfence()
            elif step[0] == "store":
                _, addr, data = step
                shadow[addr:addr + 8] = data
                yield from engine.write_ops(base + addr, 8, data=data)
            else:
                _, addr = step
                gen = engine.read_ops(base + addr, 8, blocking=True)
                value = None
                for op in gen:
                    value = yield op
                assert value == bytes(shadow[addr:addr + 8]), \
                    f"load at {addr:#x} saw stale data"
        yield ops.mfence()

    system.run_program(program(), max_cycles=200_000_000)
    system.drain()
    # Materialize deferred state (zio's elided pages) before comparing.
    system.run_program(engine.resolve_ops(base, REGION))
    system.drain()
    visible = system.read_memory(base, REGION)
    for i in range(REGION):
        assert visible[i] == shadow[i], (
            f"{backend}/{layout}: byte {i:#x} diverged: "
            f"visible={visible[i]:#x} shadow={shadow[i]:#x}")


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=12, deadline=None)
@given(steps=copy_programs())
def test_backend_matches_shadow(backend, steps):
    run_case(backend, steps)


@pytest.mark.parametrize("backend", ("rowclone", "mirror"))
@settings(max_examples=8, deadline=None)
@given(steps=copy_programs())
def test_indram_backend_matches_shadow_ideal_layout(backend, steps):
    """The FPM-everywhere layout changes timing only, never bytes."""
    run_case(backend, steps, layout="ideal")


# --------------------------------------------------------------- poison
def _poison_copy(backend, skew=0, layout="ideal"):
    """Copy one region with a poisoned source line; return the system
    and the copy geometry."""
    system, engine = _build(backend, layout)
    base = system.alloc(64 * 1024, align=16 * 1024)
    src, dst = base, base + 32 * 1024 + skew
    system.backing.fill(src, 16 * 1024, 0x5A)
    system.backing.poison(src + 4 * CL)

    def program():
        yield from engine.copy_ops(dst, src, 16 * 1024)
        yield ops.mfence()

    system.run_program(program(), max_cycles=200_000_000)
    system.drain()
    return system, src, dst


@pytest.mark.parametrize("backend", ("rowclone", "mirror"))
def test_inmem_copy_propagates_poison(backend):
    """A blind in-DRAM row copy carries the source line's poison."""
    system, src, dst = _poison_copy(backend)
    assert system.backing.line_poisoned(dst + 4 * CL)
    # Only the derived line is poisoned; its neighbours stay clean.
    assert not system.backing.line_poisoned(dst + 3 * CL)
    assert not system.backing.line_poisoned(dst + 5 * CL)
    # Data still moved (corrupted bits travel with the poison bit).
    assert system.read_memory(dst, 16 * 1024) == \
        system.read_memory(src, 16 * 1024)
