"""Property-based tests for the free-list allocator."""

from hypothesis import given, settings, strategies as st

from repro import System, small_system
from repro.sw.allocator import FreeListAllocator

CAPACITY = 64 * 1024


@st.composite
def alloc_scripts(draw):
    """A sequence of malloc sizes and free indices."""
    steps = []
    for _ in range(draw(st.integers(1, 40))):
        if draw(st.booleans()):
            steps.append(("malloc", draw(st.integers(1, 4096))))
        else:
            steps.append(("free", draw(st.integers(0, 63))))
    return steps


@settings(max_examples=100, deadline=None)
@given(alloc_scripts())
def test_allocator_invariants_hold_under_churn(steps):
    system = System(small_system())
    alloc = FreeListAllocator(system, CAPACITY)
    live = []
    for step in steps:
        if step[0] == "malloc":
            try:
                live.append((alloc.malloc(step[1]), step[1]))
            except Exception:
                pass  # out of memory is a legal outcome
        elif live:
            addr, _ = live.pop(step[1] % len(live))
            alloc.free(addr)
        alloc.check_invariants()

    # Live blocks never overlap each other.
    spans = sorted((a, a + ((s + 63) // 64) * 64) for a, s in live)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2

    # Freeing everything restores the full arena.
    for addr, _ in live:
        alloc.free(addr)
    alloc.check_invariants()
    assert alloc.free_bytes == CAPACITY
    assert len(alloc._free) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 2048), min_size=1, max_size=30))
def test_allocation_addresses_unique_and_inside_arena(sizes):
    system = System(small_system())
    alloc = FreeListAllocator(system, CAPACITY)
    seen = set()
    for size in sizes:
        try:
            addr = alloc.malloc(size)
        except Exception:
            break
        assert addr not in seen
        seen.add(addr)
        assert alloc.base <= addr < alloc.base + CAPACITY
        assert addr + size <= alloc.base + CAPACITY
