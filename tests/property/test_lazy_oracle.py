"""End-to-end property test: (MC)² lazy memcpy == eager memcpy oracle.

Random programs of copies, stores, loads, flushes, and frees run on a
full (MC)² system while a plain byte-array oracle applies the same
operations eagerly.  After the program drains, every byte the oracle can
predict must match the architecturally visible memory — including bytes
still backed by unresolved prospective copies.

This is the substitute for gem5's full-system correctness: if the CTT's
overlap/redirect/merge logic, the BPQ parking, the bounce writebacks, or
the async free engine dropped or reordered a copy, some byte diverges.
"""

from hypothesis import given, settings, strategies as st

from repro import System, small_system
from repro.common.units import CACHELINE_SIZE, PAGE_SIZE
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops, memcpy_ops

CL = CACHELINE_SIZE
REGION = 16 * 1024  # one shared 16KB arena: overlaps are the norm


@st.composite
def program_steps(draw):
    steps = []
    for _ in range(draw(st.integers(1, 14))):
        kind = draw(st.sampled_from(
            ["lazy_copy", "lazy_copy", "eager_copy", "store", "load",
             "clwb_range", "free"]))
        if kind in ("lazy_copy", "eager_copy"):
            # Non-overlapping src/dst inside the arena.
            size = draw(st.integers(1, 40)) * CL
            dst = draw(st.integers(0, (REGION - size) // CL)) * CL
            src = draw(st.integers(0, (REGION - size) // CL)) * CL
            if src < dst + size and dst < src + size:
                continue  # memcpy buffers must not overlap
            # Optionally misalign the source by a sub-line offset.
            mis = draw(st.sampled_from([0, 0, 0, 8, 16, 48]))
            if src + mis + size <= REGION and not (
                    src + mis < dst + size and dst < src + mis + size):
                src += mis
            steps.append((kind, dst, src, size))
        elif kind == "store":
            addr = draw(st.integers(0, REGION - 8))
            steps.append(("store", addr, draw(st.binary(min_size=8,
                                                        max_size=8))))
        elif kind == "load":
            steps.append(("load", draw(st.integers(0, REGION - 8))))
        elif kind == "clwb_range":
            lines = draw(st.integers(1, 8))
            start = draw(st.integers(0, REGION // CL - lines)) * CL
            steps.append(("clwb_range", start, lines))
        else:
            size = draw(st.integers(1, 16)) * CL
            addr = draw(st.integers(0, (REGION - size) // CL)) * CL
            steps.append(("free", addr, size))
    return steps


def run_case(steps, bpq_entries=4, ctt_entries=256, bounce_writeback=True):
    system = System(small_system(bpq_entries=bpq_entries,
                                 ctt_entries=ctt_entries,
                                 bounce_writeback=bounce_writeback))
    base = system.alloc(REGION, align=PAGE_SIZE)
    oracle = bytearray(REGION)
    # Deterministic initial contents.
    init = bytes((i * 89 + 7) & 0xFF for i in range(256)) * (REGION // 256)
    system.backing.write(base, init)
    oracle[:] = init
    freed = set()  # oracle-side: bytes whose contents became undefined

    def program():
        for step in steps:
            if step[0] in ("lazy_copy", "eager_copy"):
                _, dst, src, size = step
                for i in range(size):
                    if src + i in freed:
                        freed.add(dst + i)
                    else:
                        freed.discard(dst + i)
                oracle[dst:dst + size] = oracle[src:src + size]
                if step[0] == "lazy_copy":
                    yield from memcpy_lazy_ops(system, base + dst,
                                               base + src, size)
                else:
                    yield from memcpy_ops(system, base + dst,
                                          base + src, size)
            elif step[0] == "store":
                _, addr, data = step
                oracle[addr:addr + 8] = data
                for i in range(8):
                    freed.discard(addr + i)
                yield ops.store(base + addr, 8, data=data)
            elif step[0] == "load":
                _, addr = step
                value = yield ops.load(base + addr, 8, blocking=True)
                if all(addr + i not in freed for i in range(8)):
                    assert value == bytes(oracle[addr:addr + 8]), \
                        f"load at {addr:#x} saw stale data"
            elif step[0] == "clwb_range":
                _, start, lines = step
                for i in range(lines):
                    yield ops.clwb(base + start + i * CL)
                yield ops.mfence()
            else:
                _, addr, size = step
                # MCFREE leaves the freed buffer undefined (§III-C).
                freed.update(range(addr, addr + size))
                yield ops.mcfree(base + addr, size)
                yield ops.mfence()
        yield ops.mfence()

    system.run_program(program(), max_cycles=200_000_000)
    system.drain()
    system.ctt.verify_invariants()
    visible = system.read_memory(base, REGION)
    for i in range(REGION):
        if i in freed:
            continue
        assert visible[i] == oracle[i], (
            f"byte {i:#x} diverged: visible={visible[i]:#x} "
            f"oracle={oracle[i]:#x}")


@settings(max_examples=40, deadline=None)
@given(program_steps())
def test_lazy_memcpy_equals_eager_oracle(steps):
    run_case(steps)


@settings(max_examples=15, deadline=None)
@given(program_steps())
def test_oracle_holds_without_bounce_writeback(steps):
    run_case(steps, bounce_writeback=False)


@settings(max_examples=15, deadline=None)
@given(program_steps())
def test_oracle_holds_with_tiny_structures(steps):
    """A tiny CTT + BPQ forces stalls, async frees, and retries."""
    run_case(steps, bpq_entries=1, ctt_entries=16)


# --------------------------------------------------------------- faults
# The same random programs with detected-uncorrectable (2-bit) DRAM
# flips interleaved between steps.  The property weakens from equality
# to *containment*: visible memory may diverge from the oracle only
# inside the fault's taint cone — the flipped line plus every byte a
# copy derived from it.  Divergence anywhere else means the injection
# perturbed machinery it should not have touched.

@st.composite
def faulty_program_steps(draw):
    steps = list(draw(program_steps()))
    for _ in range(draw(st.integers(1, 3))):
        pos = draw(st.integers(0, len(steps)))
        line = draw(st.integers(0, REGION // CL - 1)) * CL
        steps.insert(pos, ("due_flip", line))
    return steps


def run_faulty_case(steps):
    from repro.faults import FaultInjector

    system = System(small_system())
    injector = FaultInjector(system, seed=0)
    base = system.alloc(REGION, align=PAGE_SIZE)
    oracle = bytearray(REGION)
    init = bytes((i * 89 + 7) & 0xFF for i in range(256)) * (REGION // 256)
    system.backing.write(base, init)
    oracle[:] = init
    freed = set()
    tainted = set()   # bytes whose contents may legally diverge
    flips = [0]

    def taint_flip(rel_line):
        tainted.update(range(rel_line, rel_line + CL))
        lo, hi = base + rel_line, base + rel_line + CL
        # Corrupted source bytes also corrupt every still-tracked
        # destination mapped from them (the CTT never chains, so one
        # level of redirection covers the whole cone).
        for entry in system.ctt.entries:
            start = max(lo, entry.src)
            stop = min(hi, entry.src + entry.size)
            for s in range(start, stop):
                d = entry.dst + (s - entry.src) - base
                if 0 <= d < REGION:
                    tainted.add(d)

    def program():
        for step in steps:
            if step[0] == "due_flip":
                _, rel_line = step
                # Settle in-flight MCLAZYs so the CTT mapping is stable
                # when the taint cone is computed.
                yield ops.mfence()
                injector.flip_bits(base + rel_line, bits=2)
                flips[0] += 1
                taint_flip(rel_line)
            elif step[0] in ("lazy_copy", "eager_copy"):
                _, dst, src, size = step
                src_taint = [src + i in tainted for i in range(size)]
                for i in range(size):
                    if src + i in freed:
                        freed.add(dst + i)
                    else:
                        freed.discard(dst + i)
                    if src_taint[i]:
                        tainted.add(dst + i)
                    else:
                        tainted.discard(dst + i)
                oracle[dst:dst + size] = oracle[src:src + size]
                if step[0] == "lazy_copy":
                    yield from memcpy_lazy_ops(system, base + dst,
                                               base + src, size)
                else:
                    yield from memcpy_ops(system, base + dst,
                                          base + src, size)
            elif step[0] == "store":
                _, addr, data = step
                oracle[addr:addr + 8] = data
                for i in range(8):
                    freed.discard(addr + i)
                    tainted.discard(addr + i)
                yield ops.store(base + addr, 8, data=data)
            elif step[0] == "load":
                _, addr = step
                value = yield ops.load(base + addr, 8, blocking=True)
                if all(addr + i not in freed and addr + i not in tainted
                       for i in range(8)):
                    assert value == bytes(oracle[addr:addr + 8]), \
                        f"load at {addr:#x} saw stale data"
            elif step[0] == "clwb_range":
                _, start, lines = step
                for i in range(lines):
                    yield ops.clwb(base + start + i * CL)
                yield ops.mfence()
            else:
                _, addr, size = step
                freed.update(range(addr, addr + size))
                yield ops.mcfree(base + addr, size)
                yield ops.mfence()
        yield ops.mfence()

    system.run_program(program(), max_cycles=200_000_000)
    system.drain()
    system.ctt.verify_invariants()
    detected = (system.stats.children["faults"].children["ecc"]
                .counters["detected"].value)
    assert detected == flips[0]
    visible = system.read_memory(base, REGION)
    for i in range(REGION):
        if i in freed:
            continue
        if visible[i] == oracle[i]:
            continue
        assert i in tainted, (
            f"byte {i:#x} diverged outside the fault's taint cone: "
            f"visible={visible[i]:#x} oracle={oracle[i]:#x}")


@settings(max_examples=15, deadline=None)
@given(faulty_program_steps())
def test_due_faults_stay_contained(steps):
    run_faulty_case(steps)
