"""Instruction definitions, including MCLAZY and MCFREE."""

from repro.isa.ops import (Op, OpKind, clwb, compute, load, mcfree, mclazy,
                           mfence, nt_store, store)

__all__ = ["Op", "OpKind", "load", "store", "nt_store", "clwb", "mclazy",
           "mcfree", "mfence", "compute"]
