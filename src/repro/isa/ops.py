"""CPU-visible operations, including the two new (MC)² instructions.

Workload *programs* are Python generators that yield these ops; the core
(:mod:`repro.cpu.core`) pulls ops to fill its instruction window.  A
``Load`` with ``blocking=True`` suspends the program until the value
returns (the core ``send()``s the loaded bytes back into the generator),
which is how pointer-chasing dependency chains serialize (Fig. 13).

All addresses at this layer are *physical*; the software layer
(:mod:`repro.sw`, :mod:`repro.os`) handles virtual→physical translation.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class OpKind(enum.Enum):
    """The kinds of µops the simulated core executes."""

    LOAD = "load"
    STORE = "store"
    NT_STORE = "nt_store"      # non-temporal store: no RFO, bypasses caches
    CLWB = "clwb"              # write back (keep) one cacheline
    CLWB_RANGE = "clwb_range"  # §V-A1 extension: range writeback
    MCLAZY = "mclazy"          # register a prospective copy (new ISA)
    MCFREE = "mcfree"          # drop prospective copies into a buffer (new ISA)
    MFENCE = "mfence"          # order all prior memory ops
    COMPUTE = "compute"        # non-memory work occupying the pipeline
    BULK_COPY = "bulk_copy"    # rep-movsb-style line-granular kernel copy
    INMEM_COPY = "inmem_copy"  # in-DRAM row copy (RowClone / mirroring)


class Op:
    """One dynamic operation flowing through the core.

    Attributes
    ----------
    kind:
        The operation type.
    addr / size:
        Physical address and byte size the op touches.
    src_addr:
        MCLAZY only: physical source buffer address.
    data:
        STORE/NT_STORE: bytes to write (defaults to a repeated marker).
    blocking:
        LOAD only: suspend the program until the value is available.
    cycles:
        COMPUTE only: pipeline occupancy.
    on_retire:
        Optional callback ``f(op, retire_cycle)`` fired at retirement —
        used by workloads to timestamp individual operations (Fig. 18).
    """

    __slots__ = ("kind", "addr", "size", "src_addr", "data", "blocking",
                 "cycles", "on_retire", "copy_mode", "issued_at",
                 "completed_at", "retired_at", "value")

    def __init__(
        self,
        kind: OpKind,
        addr: int = 0,
        size: int = 0,
        src_addr: Optional[int] = None,
        data: Optional[bytes] = None,
        blocking: bool = False,
        cycles: int = 0,
        on_retire: Optional[Callable[["Op", int], None]] = None,
    ):
        self.kind = kind
        self.addr = addr
        self.size = size
        self.src_addr = src_addr
        self.data = data
        self.blocking = blocking
        self.cycles = cycles
        self.on_retire = on_retire
        self.copy_mode: Optional[str] = None  # INMEM_COPY: rowclone|mirror
        self.issued_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.retired_at: Optional[int] = None
        self.value: Optional[bytes] = None  # loaded bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Op({self.kind.value}, addr={self.addr:#x}, size={self.size})"


# ------------------------------------------------------------ constructors
def load(addr: int, size: int = 8, blocking: bool = False,
         on_retire=None) -> Op:
    """A load of ``size`` bytes at physical ``addr``."""
    return Op(OpKind.LOAD, addr=addr, size=size, blocking=blocking,
              on_retire=on_retire)


def store(addr: int, size: int = 8, data: Optional[bytes] = None,
          on_retire=None) -> Op:
    """A store of ``size`` bytes at physical ``addr``."""
    return Op(OpKind.STORE, addr=addr, size=size, data=data,
              on_retire=on_retire)


def nt_store(addr: int, size: int = 64, data: Optional[bytes] = None,
             on_retire=None) -> Op:
    """A non-temporal (streaming) store: no read-for-ownership."""
    return Op(OpKind.NT_STORE, addr=addr, size=size, data=data,
              on_retire=on_retire)


def clwb(addr: int) -> Op:
    """Write back the cacheline containing ``addr`` (line stays cached)."""
    return Op(OpKind.CLWB, addr=addr, size=64)


def clwb_range(addr: int, size: int) -> Op:
    """Write back every dirty line in ``[addr, addr+size)``.

    The paper's §V-A1 proposes this extension: a single wider writeback
    (e.g. page-granularity) replaces the per-line CLWB train that
    dominates ``memcpy_lazy`` cost above 1KB.  One fixed-cost µop probes
    the range; only lines that are actually dirty generate writebacks.
    """
    return Op(OpKind.CLWB_RANGE, addr=addr, size=size)


def mclazy(dst: int, src: int, size: int) -> Op:
    """Register a prospective copy of ``size`` bytes from ``src`` to ``dst``.

    ISA contract (§III-C): ``dst`` must be cacheline-aligned, ``size`` a
    cacheline multiple, and both buffers physically contiguous (the
    software wrapper guarantees per-page invocation).
    """
    return Op(OpKind.MCLAZY, addr=dst, src_addr=src, size=size)


def mcfree(addr: int, size: int) -> Op:
    """Hint that ``[addr, addr+size)`` will not be read again."""
    return Op(OpKind.MCFREE, addr=addr, size=size)


def mfence() -> Op:
    """Full memory fence: completes when all prior ops have completed."""
    return Op(OpKind.MFENCE)


def compute(cycles: int) -> Op:
    """Non-memory work occupying ``cycles`` of pipeline time."""
    return Op(OpKind.COMPUTE, cycles=cycles)


def inmem_copy(dst: int, src: int, size: int, mode: str = "rowclone") -> Op:
    """Offload a copy of ``size`` bytes from ``src`` to ``dst`` to DRAM.

    Contract (mirrors MCLAZY's §III-C shape): both addresses
    cacheline-aligned, ``size`` a cacheline multiple, and every
    source/destination line pair resident on the *same* channel — the
    issuing backend (:mod:`repro.copyengine.indram`) checks channel
    congruence and falls back to the software loop otherwise.  ``mode``
    selects the in-DRAM mechanism: ``"rowclone"`` (FPM/PSM per
    RowClone) or ``"mirror"`` (In-Memory Mirroring).  The op holds a
    store-buffer slot until every channel reports completion, so an
    MFENCE after it observes the finished copy.
    """
    op = Op(OpKind.INMEM_COPY, addr=dst, src_addr=src, size=size)
    op.copy_mode = mode
    return op


def bulk_copy(dst: int, src: int, size: int) -> Op:
    """A ``rep movsb``-style line-granular copy executed by the memory
    system directly (used for kernel copies like ``copy_user_huge_page``
    and ``copy_to_user``, which do not loop SIMD chunks through the
    scheduler).  Occupies the core until the copy completes."""
    return Op(OpKind.BULK_COPY, addr=dst, src_addr=src, size=size,
              blocking=False)
