"""zIO baseline: page-granularity copy elision with copy-on-access."""

from repro.zio.engine import ZioEngine

__all__ = ["ZioEngine"]
