"""zIO comparator (Stamler et al., OSDI 2022) as a :class:`CopyEngine`.

zIO elides ``memcpy`` calls of at least a page: it records the copy in a
skiplist, unmaps the destination pages (charging munmap + TLB-shootdown
costs), and marks them copy-on-access via userfaultfd.  The first access
to an elided page takes a fault: zIO allocates physical memory and copies
that page eagerly.  Sub-page copies cannot be elided and fall back to
plain ``memcpy`` — which is why zIO gains nothing on the Protobuf
workload (all copies < 4KB, §V-B) and why it loses when copied data is
heavily accessed (MongoDB, Figs. 12-13).

Following the paper's methodology (§IV), elision applies to *all* memcpy
calls, not only IO-path ones.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.common import params
from repro.common.units import PAGE_SIZE, align_down
from repro.isa import ops
from repro.isa.ops import Op
from repro.sw.engine import CopyEngine
from repro.sw.memcpy import memcpy_ops


class ZioEngine(CopyEngine):
    """Page-granularity copy elision with copy-on-access faults."""

    name = "zio"

    def __init__(self, system,
                 min_elision: int = params.ZIO_MIN_ELISION_SIZE):
        super().__init__(system)
        self.min_elision = min_elision
        # Elided destination page -> source byte address backing it.
        self._elided: Dict[int, int] = {}
        self.elisions = 0
        self.faults = 0
        self.fallback_copies = 0

    # ------------------------------------------------------------- copies
    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        # Only whole destination pages can be remapped; fringes copy
        # eagerly.  An elidable region needs at least one full page.
        first_page = align_down(dst + PAGE_SIZE - 1, PAGE_SIZE)
        last_page_end = align_down(dst + size, PAGE_SIZE)
        if size < self.min_elision or first_page >= last_page_end:
            self.fallback_copies += 1
            yield from memcpy_ops(self.system, dst, src, size)
            return

        head = first_page - dst
        if head:
            yield from memcpy_ops(self.system, dst, src, head)
        tail = (dst + size) - last_page_end
        if tail:
            yield from memcpy_ops(self.system, last_page_end,
                                  src + (last_page_end - dst), tail)

        pages = (last_page_end - first_page) // PAGE_SIZE
        for i in range(pages):
            page = first_page + i * PAGE_SIZE
            self._elided[page] = src + (page - dst)
        self.elisions += 1
        # Elision cost: skiplist insert + munmap + TLB shootdown IPIs.
        yield ops.compute(params.ZIO_SKIPLIST_OP_CYCLES
                          + params.ZIO_ELISION_BASE_CYCLES
                          + pages * params.ZIO_UNMAP_PER_PAGE_CYCLES)

    def free_ops(self, addr: int, size: int) -> Iterator[Op]:
        for page in range(align_down(addr, PAGE_SIZE), addr + size,
                          PAGE_SIZE):
            self._elided.pop(page, None)
        yield ops.compute(params.ZIO_SKIPLIST_OP_CYCLES)

    # ----------------------------------------------------------- accesses
    def _fault_ops(self, addr: int) -> Iterator[Op]:
        """Copy-on-access: userfaultfd round trip plus an eager page copy."""
        page = align_down(addr, PAGE_SIZE)
        src = self._elided.pop(page, None)
        if src is None:
            return
        self.faults += 1
        yield ops.compute(params.USERFAULTFD_FAULT_CYCLES)
        yield from memcpy_ops(self.system, page, src, PAGE_SIZE)
        yield ops.compute(params.ZIO_SKIPLIST_OP_CYCLES)

    def elided_pages(self) -> int:
        """Pages currently awaiting copy-on-access."""
        return len(self._elided)

    def is_elided(self, addr: int) -> bool:
        """True when the page containing ``addr`` awaits copy-on-access."""
        return align_down(addr, PAGE_SIZE) in self._elided

    def read_ops(self, addr: int, size: int = 8, blocking: bool = False,
                 on_retire=None) -> Iterator[Op]:
        yield from self._fault_ops(addr)
        yield ops.load(addr, size, blocking=blocking, on_retire=on_retire)

    def write_ops(self, addr: int, size: int = 8,
                  data: Optional[bytes] = None, on_retire=None,
                  nontemporal: bool = False) -> Iterator[Op]:
        yield from self._fault_ops(addr)
        if nontemporal:
            yield ops.nt_store(addr, size, data=data, on_retire=on_retire)
        else:
            yield ops.store(addr, size, data=data, on_retire=on_retire)
