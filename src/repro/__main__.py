"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     — the quickstart lazy-copy walkthrough,
* ``costs``    — CTT/BPQ hardware cost estimates across capacities,
* ``figure N`` — regenerate one paper exhibit and print its rows
  (e.g. ``python -m repro figure 21``),
* ``report``   — combined summary of all generated results.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_demo(args) -> int:
    from repro import System, SystemConfig
    from repro.mcsquare.verification import ConsistencyChecker
    from repro.sw.memcpy import memcpy_lazy_ops, memcpy_ops

    if args.inject:
        from repro.common.errors import FaultSpecError
        from repro.faults import parse_fault_spec
        try:
            for text in args.inject:
                parse_fault_spec(text)
        except FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    size = 16 * 1024
    for label, fn in (("eager memcpy", memcpy_ops),
                      ("lazy  memcpy", memcpy_lazy_ops)):
        system = System(SystemConfig())
        src = system.alloc(size, align=4096)
        dst = system.alloc(size, align=4096)
        system.backing.fill(src, size, 0xAB)
        injector = None
        if args.inject:
            from repro.faults import from_specs
            injector = from_specs(system, args.inject, seed=args.fault_seed)
        checker = None
        if args.paranoid:
            checker = ConsistencyChecker(system)
            checker.attach(every_cycles=1_000)
        system.attach_watchdog()
        cycles = system.run_program(fn(system, dst, src, size))
        if checker is not None:
            checker.verify()
            checker.detach()
        tracked = len(system.ctt) if system.ctt else 0
        intact = system.read_memory(dst, size) == b"\xAB" * size
        if injector is None:
            assert intact
            print(f"{label}: {cycles:6d} cycles "
                  f"({cycles / 4:.0f} ns), CTT entries after: {tracked}")
        else:
            poisoned = len(system.poisoned_lines())
            print(f"{label}: {cycles:6d} cycles, CTT entries after: "
                  f"{tracked}, copy intact: {intact}, "
                  f"poisoned lines: {poisoned}")
            print(system.stats.children["faults"].report(indent=1))
    return 0


def _cmd_costs(_args) -> int:
    from repro.mcsquare.modeling import summarize

    for entries in (512, 1024, 2048, 4096, 8192):
        print(summarize(entries))
    return 0


def _cmd_figure(args) -> int:
    import os

    from repro.analysis import figures as F
    from repro.analysis.figures import format_rows

    # Sweep knobs are read from the environment by sim_map; the flags
    # just set them for this invocation.
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.no_cache:
        os.environ["REPRO_SIMCACHE"] = "off"
    name = f"figure{args.number}"
    builder = getattr(F, name, None)
    if builder is None:
        valid = sorted(n[6:] for n in dir(F) if n.startswith("figure"))
        print(f"unknown figure {args.number!r}; available: "
              f"{', '.join(valid)}", file=sys.stderr)
        return 2
    rows = builder()
    print(format_rows(rows))
    return 0


def _cmd_report(_args) -> int:
    from repro.analysis.report import build_report

    print(build_report())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch a CLI command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="(MC)^2 reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="quickstart lazy-copy walkthrough")
    demo.add_argument(
        "--inject", action="append", default=[], metavar="SPEC",
        help="inject a fault (repeatable), e.g. "
             "'bitflip:addr=0x1000,bits=2,at=5000', 'pkt-drop:p=0.01', "
             "'ctt-drop:at=8000' — see repro.faults.injector")
    demo.add_argument(
        "--fault-seed", type=int, default=0,
        help="RNG seed for fault injection (default 0)")
    demo.add_argument(
        "--paranoid", action="store_true",
        help="run the (MC)^2 consistency checker every 1000 cycles")
    sub.add_parser("costs", help="CTT hardware cost estimates")
    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("number", help="figure number, e.g. 21 or 16a... "
                     "(see DESIGN.md)")
    fig.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for sweep points "
                          "(default: REPRO_JOBS or serial)")
    fig.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent sim-result cache "
                          "(results/.simcache)")
    sub.add_parser("report", help="summarize generated results")
    args = parser.parse_args(argv)
    handlers = {"demo": _cmd_demo, "costs": _cmd_costs,
                "figure": _cmd_figure, "report": _cmd_report}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
