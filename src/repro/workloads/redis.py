"""Redis-style IO buffer pipeline (the paper's §II-B motivation).

The introduction motivates (MC)² with IO-intensive servers like Redis
that "make use of copied buffers to pass data between independent
subsystems ... one subsystem may log data while another inserts it into
a hash table."  This workload models a SET-command pipeline:

1. the command's value arrives in a network buffer,
2. it is copied into a private buffer for the keyspace (hash insert —
   the value is later *read* when a GET arrives),
3. it is copied again into the append-only-file (AOF) buffer, which a
   background pass streams out to storage,
4. buffers are freed when the pipeline retires them (MCFREE on (MC)²).

Unlike the Protobuf/MongoDB workloads this one exercises the allocator
(:class:`~repro.sw.allocator.FreeListAllocator`) and the MCFREE path on
a steady-state churn of buffers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import System, SystemConfig
from repro.common import params
from repro.common.units import CACHELINE_SIZE, KB
from repro.isa import ops
from repro.sw.allocator import FreeListAllocator
from repro.workloads.common import (engine_needs_ctt, fill_pattern,
                                    make_engine, rng)


class RedisWorkload:
    """SET/GET mix over a churning buffer pipeline."""

    def __init__(self, engine_name: str, num_commands: int = 40,
                 value_size: int = 4 * KB, get_fraction: float = 0.3,
                 config: Optional[SystemConfig] = None, seed: int = 31):
        config = config or SystemConfig()
        if not engine_needs_ctt(engine_name) \
                and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        self.config = config
        self.system = System(config)
        self.engine = make_engine(engine_name, self.system)
        self.engine_name = engine_name
        self.num_commands = num_commands
        self.value_size = value_size
        self.get_fraction = get_fraction
        self.seed = seed

        arena = max(num_commands, 8) * value_size * 4
        self.allocator = FreeListAllocator(self.system, arena)
        self.network_buffer = self.system.alloc(value_size, align=4096)
        fill_pattern(self.system, self.network_buffer, value_size)
        # key -> live keyspace buffer address
        self.keyspace: Dict[int, int] = {}
        self.aof_retired: List[int] = []

    def program(self) -> Iterator[ops.Op]:
        """The command loop."""
        random = rng(self.seed)
        for i in range(self.num_commands):
            key = random.randrange(max(self.num_commands // 2, 1))
            if random.random() < self.get_fraction and key in self.keyspace:
                # GET: read the stored value (accesses copied data).
                yield ops.compute(params.SYSCALL_CYCLES)
                addr = self.keyspace[key]
                pos = 0
                while pos < self.value_size:
                    yield from self.engine.read_ops(addr + pos, 8)
                    yield ops.compute(2)
                    pos += CACHELINE_SIZE
                continue
            # SET: network buffer -> keyspace buffer -> AOF buffer.
            yield ops.compute(params.SYSCALL_CYCLES)  # recv + parse
            value_buf = self.allocator.malloc(self.value_size)
            yield from self.engine.copy_ops(value_buf, self.network_buffer,
                                            self.value_size)
            aof_buf = self.allocator.malloc(self.value_size)
            yield from self.engine.copy_ops(aof_buf, value_buf,
                                            self.value_size)
            yield ops.compute(400)  # dict insert, expiry bookkeeping
            # Retire the previous value for this key.
            old = self.keyspace.pop(key, None)
            if old is not None:
                yield from self.allocator.free_ops(old)
            self.keyspace[key] = value_buf
            # The AOF writer periodically retires flushed buffers without
            # the CPU ever reading them — the redundant-copy case.
            self.aof_retired.append(aof_buf)
            if len(self.aof_retired) >= 4:
                for buf in self.aof_retired:
                    yield from self.allocator.free_ops(buf)
                self.aof_retired.clear()

    def run(self) -> Dict[str, float]:
        """Execute; returns runtime and allocator statistics."""
        finish = self.system.run_program(self.program())
        self.system.drain()
        result = {
            "engine": self.engine_name,
            "cycles": finish,
            "commands": self.num_commands,
            "cycles_per_command": finish / self.num_commands,
            "allocations": self.allocator.allocations,
            "frees": self.allocator.frees,
        }
        if self.system.ctt is not None:
            result["mcfrees"] = sum(
                self.system.stats.children[f"mc{ch}"].counters[
                    "mcfrees"].value
                for ch in range(self.config.dram_channels))
        return result


def run_redis(engine_name: str, num_commands: int = 40,
              value_size: int = 4 * KB,
              config: Optional[SystemConfig] = None) -> Dict[str, float]:
    """Convenience wrapper for one configuration."""
    return RedisWorkload(engine_name, num_commands=num_commands,
                         value_size=value_size, config=config).run()
