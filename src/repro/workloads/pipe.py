"""Pipe transfer workload (Fig. 19).

A producer sends buffers of a given size to a consumer through a Linux
pipe; each transfer costs two syscalls and two kernel-buffer copies
(:mod:`repro.os.pipes`).  The modified kernel replaces both copies with
``memcpy_lazy``.  Reported metric matches the paper: throughput in
bytes per kilocycle.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro import System, SystemConfig
from repro.common.units import CACHELINE_SIZE, KB
from repro.isa import ops
from repro.os.pipes import Pipe
from repro.sw.engine import KernelEagerEngine, LazyEngine
from repro.workloads.common import LatencyRecorder, fill_pattern


class PipeTransferWorkload:
    """Repeated user→kernel→user transfers of one size."""

    def __init__(self, engine_name: str, transfer_size: int,
                 num_transfers: int = 20,
                 consume_fraction: float = 1.0,
                 config: Optional[SystemConfig] = None):
        config = config or SystemConfig()
        if engine_name in ("memcpy", "native") and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        self.config = config
        self.system = System(config)
        if engine_name in ("memcpy", "native"):
            self.engine = KernelEagerEngine(self.system)
            self.engine_name = "native"
        else:
            self.engine = LazyEngine(self.system)
            self.engine_name = "mcsquare"
        self.pipe = Pipe(self.system, self.engine)
        self.transfer_size = transfer_size
        self.num_transfers = num_transfers
        self.consume_fraction = consume_fraction
        self.src = self.system.alloc(transfer_size, align=4096)
        self.dst = self.system.alloc(transfer_size, align=4096)
        fill_pattern(self.system, self.src, transfer_size)
        self.recorder = LatencyRecorder()

    def program(self) -> Iterator[ops.Op]:
        for _ in range(self.num_transfers):
            yield self.recorder.begin()
            yield from self.pipe.transfer_ops(self.src, self.dst,
                                              self.transfer_size)
            # The consumer processes the received buffer — accesses of
            # copied data (for (MC)², these bounce or hit resolved lines).
            consumed = int(self.transfer_size * self.consume_fraction)
            pos = 0
            while pos < consumed:
                yield from self.engine.read_ops(self.dst + pos, 8)
                pos += CACHELINE_SIZE
            yield self.recorder.end()

    def run(self) -> Dict[str, float]:
        """Execute; returns throughput in bytes per kilocycle."""
        self.system.run_program(self.program())
        self.system.drain()
        total_cycles = sum(self.recorder.samples)
        total_bytes = self.transfer_size * self.num_transfers
        return {
            "engine": self.engine_name,
            "transfer_size": self.transfer_size,
            "cycles": total_cycles,
            "bytes_per_kcycle": total_bytes / (total_cycles / 1000.0),
        }


def run_pipe(engine_name: str, transfer_size: int,
             num_transfers: int = 20,
             config: Optional[SystemConfig] = None) -> Dict[str, float]:
    """One Fig. 19 bar."""
    return PipeTransferWorkload(engine_name, transfer_size,
                                num_transfers=num_transfers,
                                config=config).run()
