"""Paper workloads: microbenchmarks and application models."""

__all__ = ["common", "protobuf", "mongo", "mvcc", "hugepage", "pipe",
           "micro"]
