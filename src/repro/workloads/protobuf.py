"""Protobuf serialization workload (Fleetbench-style; Figs. 2-4, 14, 20).

Google's Fleetbench Protobuf benchmark replays serialization /
deserialization / MergeFrom operations with message sizes taken from
production traces.  The trace itself is not redistributable, so this
workload draws memcpy sizes from the paper's published distribution
(Fig. 4: a CDF over 2B..4KB with ~56% of copies exactly 1KB) and
reproduces the access pattern that matters: fields are copied between an
object arena and a serialization buffer, then a fraction of the copied
bytes is read back (parsing / checksum / merge), interleaved with
per-field compute.

The interposer redirects copies >= 1KB to ``memcpy_lazy`` (§V-B).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro import System, SystemConfig
from repro.common import params
from repro.common.units import CACHELINE_SIZE, KB
from repro.isa import ops
from repro.workloads.common import (RegionTracker, engine_needs_ctt,
                                    fill_pattern, make_engine,
                                    rng)

#: The paper's Fig. 4 size distribution: (size, cumulative probability).
SIZE_CDF: List[Tuple[int, float]] = [
    (2, 0.02), (4, 0.05), (8, 0.09), (16, 0.14), (32, 0.19),
    (64, 0.25), (128, 0.31), (256, 0.36), (512, 0.40),
    (1024, 0.96), (2048, 0.99), (4096, 1.00),
]


def sample_copy_size(random) -> int:
    """Draw one memcpy size from the Fig. 4 CDF."""
    u = random.random()
    for size, cum in SIZE_CDF:
        if u <= cum:
            return size
    return SIZE_CDF[-1][0]


def generate_messages(num_ops: int, seed: int = 11) -> List[List[int]]:
    """Field-size lists for ``num_ops`` protobuf operations.

    Each operation serializes one message of 1-6 fields whose sizes
    follow the Fig. 4 distribution.
    """
    random = rng(seed)
    messages = []
    for _ in range(num_ops):
        fields = [sample_copy_size(random)
                  for _ in range(random.randint(1, 6))]
        # Wire format packs the compact scalar fields at the head of the
        # message, followed by the large string/bytes payloads.
        fields.sort()
        messages.append(fields)
    return messages


class ProtobufWorkload:
    """One run of the protobuf workload on a given engine."""

    def __init__(self, engine_name: str, num_ops: int = 60,
                 access_fraction: float = 0.1, seed: int = 11,
                 config: Optional[SystemConfig] = None,
                 min_lazy: int = params.INTERPOSER_MIN_LAZY_SIZE):
        config = config or SystemConfig()
        if not engine_needs_ctt(engine_name) \
                and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        self.config = config
        self.system = System(config)
        kwargs = {"min_lazy": min_lazy} if engine_name in (
            "mcsquare", "mc2", "lazy") else {}
        self.engine = make_engine(engine_name, self.system, **kwargs)
        self.engine_name = engine_name
        self.messages = generate_messages(num_ops, seed)
        self.access_fraction = access_fraction
        self.regions = RegionTracker()
        self._random = rng(seed + 1)

        total = sum(sum(m) for m in self.messages)
        arena = max(4 * total, 256 * KB)
        self.object_arena = self.system.alloc(arena, align=4096)
        self.wire_buffer = self.system.alloc(arena, align=4096)
        self.scratch = self.system.alloc(arena, align=4096)
        fill_pattern(self.system, self.object_arena, arena)
        # Messages live wherever the allocator put them: scatter each
        # message's object across the arena so the copy sources are not
        # one long prefetchable stream (heap allocation, not an array).
        placer = rng(seed + 2)
        self.placements = []
        for fields in self.messages:
            span = sum(fields)
            start = placer.randrange(max(arena - span, 1))
            self.placements.append(start & ~0x3F)

    # ---------------------------------------------------------- programs
    def program(self) -> Iterator[ops.Op]:
        """The full workload as one op stream.

        Every message serializes a *fresh* object (as the Fleetbench
        trace replays a stream of distinct messages), so sources are not
        conveniently cache-resident — the condition behind the paper's
        Fig. 3 miss rates.
        """
        obj = self.object_arena
        wire = self.wire_buffer
        scratch = self.scratch
        wire_off = 0
        for i, (fields, place) in enumerate(zip(self.messages,
                                                self.placements)):
            # Fleetbench samples independent operations over distinct
            # messages; alternate serialize / deserialize, each moving a
            # *different* message's fields.  Parsing is serial: the next
            # field's location depends on this field's tag/length, so a
            # blocking descriptor read precedes each copy.
            serialize = (i % 2 == 0)
            # Serialize ops write into the outgoing half of the wire
            # arena; deserialize ops parse *cold* received buffers from
            # the incoming half (network RX fixtures), never bytes some
            # earlier op serialized.
            half = len(self.messages) * 4096 // 2
            if serialize:
                src_base = obj + place
                dst_base = wire + (wire_off % half)
            else:
                src_base = wire + half + (wire_off % half)
                dst_base = scratch + place
            src_off = dst_off = 0
            for field_idx, size in enumerate(fields):
                # Field tags/lengths sit in a compact descriptor block at
                # the head of the message, so parsing reads one or two
                # cachelines total - not a cold line per kilobyte field.
                hdr = self.engine.read_ops(src_base + field_idx * 8, 8,
                                           blocking=True)
                for op in hdr:
                    yield op
                yield ops.compute(20)  # tag decode, bounds checks
                yield self.regions.begin("memcpy")
                yield from self.engine.copy_ops(dst_base + dst_off,
                                                src_base + src_off, size)
                yield self.regions.end("memcpy")
                # A fraction of the copied field is touched afterwards
                # (validation / checksum / later merge).
                accessed = int(size * self.access_fraction)
                pos = 0
                while pos < accessed:
                    yield from self.engine.read_ops(
                        dst_base + dst_off + pos, 8)
                    yield ops.compute(4)
                    pos += CACHELINE_SIZE
                src_off += size
                dst_off += size
            wire_off += sum(fields)

    # -------------------------------------------------------------- runs
    def run(self) -> Dict[str, float]:
        """Execute and return runtime plus attribution stats."""
        finish = self.system.run_program(self.program())
        self.system.drain()
        core = self.system.stats.children["core0"].counters
        caches = self.system.stats.children["caches"]
        l1 = caches.children["l1_0"].counters
        result = {
            "engine": self.engine_name,
            "cycles": finish,
            "ms": finish / (self.config.clock_ghz * 1e6),
            "memcpy_cycles": self.regions.cycles("memcpy"),
            "copy_fraction": self.regions.cycles("memcpy") / max(finish, 1),
            "loads": core["loads"].value,
            "l1_misses": l1["misses"].value,
            "l1_hits": l1["hits"].value,
            "mem_miss_cycles": core["mem_miss_cycles"].value,
            "stall_cycles": core["stall_cycles"].value,
        }
        if self.system.ctt is not None:
            ctt = self.system.stats.children["ctt"].counters
            stalls = sum(
                self.system.stats.children[f"mc{ch}"].counters[
                    "ctt_full_stall_cycles"].value
                for ch in range(self.config.dram_channels))
            result["ctt_inserts"] = ctt["inserts"].value
            result["ctt_full_stall_cycles"] = stalls
        return result


def run_protobuf(engine_name: str, num_ops: int = 60,
                 config: Optional[SystemConfig] = None,
                 seed: int = 11) -> Dict[str, float]:
    """Convenience wrapper: build, run, and report one configuration."""
    return ProtobufWorkload(engine_name, num_ops=num_ops, seed=seed,
                            config=config).run()


def size_distribution(num_samples: int = 20000,
                      seed: int = 3) -> List[Tuple[int, float]]:
    """Empirical CDF of sampled copy sizes (regenerates Fig. 4)."""
    random = rng(seed)
    counts: Dict[int, int] = {}
    for _ in range(num_samples):
        size = sample_copy_size(random)
        counts[size] = counts.get(size, 0) + 1
    out: List[Tuple[int, float]] = []
    cum = 0
    for size, _ in SIZE_CDF:
        cum += counts.get(size, 0)
        out.append((size, cum / num_samples))
    return out
