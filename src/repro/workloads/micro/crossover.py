"""Microbenchmark: lazy-MC vs in-DRAM copy crossover (Fig. 23 family).

Compares every registered copy backend (eager / mclazy / zio /
rowclone / mirror) on a single copy plus a partial destination read,
across three axes:

* **size** — PSM row copies cost per line while (MC)² CTT insertion is
  O(1) per page-run, so the winner flips as the copy grows;
* **locality** — where the source and destination land in DRAM:
  ``subarray`` (FPM-eligible: ideal layout, row-aligned buffers),
  ``channel`` (channel-congruent but hash-scattered banks: PSM), and
  ``cross`` (incongruent channels: in-DRAM backends must fall back to
  an eager software copy);
* **pressure** — a second core streaming reads through the same
  channels, squeezing the external bus that eager/PSM copies occupy
  but FPM/mirror row copies do not.

All points are independent simulations and fan out through
:func:`~repro.perf.runner.sim_map` (``REPRO_JOBS`` workers + simcache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import System, SystemConfig
from repro.common import params
from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE, KB, MB
from repro.isa import ops
from repro.sw.memcpy import stream_read_ops
from repro.workloads.common import (LatencyRecorder, engine_needs_ctt,
                                    fill_pattern, make_engine)

#: Localities the crossover sweep exercises (see module docstring).
LOCALITIES = ("subarray", "channel", "cross")


def run_backend_crossover(backend: str, size: int,
                          locality: str = "subarray",
                          fraction: float = 0.25,
                          pressure: bool = False,
                          config: Optional[SystemConfig] = None,
                          seed: int = 29) -> Dict[str, object]:
    """One crossover point: copy ``size`` bytes, read ``fraction`` back.

    Returns copy latency and destination-access latency separately (the
    lazy mechanisms shift cost from the former to the latter), plus the
    DRAM access count and a functional ``verified`` bit comparing the
    architecturally visible destination against the source.
    """
    if locality not in LOCALITIES:
        raise ConfigError(f"locality must be one of {LOCALITIES}, "
                          f"got {locality!r}")
    config = config or SystemConfig()
    if locality == "subarray":
        # Row-aligned buffers in an ideal (subarray-aware) layout: full
        # destination rows are FPM candidates for rowclone/mirror.
        config = config.with_overrides(inmem_layout="ideal")
    if not engine_needs_ctt(backend) and config.mcsquare_enabled:
        config = config.with_overrides(mcsquare_enabled=False)
    system = System(config)
    engine = make_engine(backend, system)

    # One "local row" spans channels*ROW_BYTES of the physical address
    # space (lines interleave across channels), so aligning to that
    # keeps whole DRAM rows pairwise aligned between src and dst.
    row_span = config.dram_channels * params.DRAM_ROW_BYTES
    src = system.alloc(size + 2 * row_span, align=row_span)
    dst = system.alloc(size + 2 * row_span, align=row_span)
    if locality == "cross":
        # Skew the source by one line: channels no longer line up, so
        # in-DRAM backends take their software fallback path.
        src += CACHELINE_SIZE
    fill_pattern(system, src, size, seed=seed)

    copy_lat = LatencyRecorder()
    access_lat = LatencyRecorder()
    read_bytes = int(size * fraction)

    def program():
        yield copy_lat.begin()
        yield from engine.copy_ops(dst, src, size)
        yield ops.mfence()
        yield copy_lat.end()
        yield access_lat.begin()
        pos = dst
        end = dst + read_bytes
        while pos < end:
            yield from engine.read_ops(pos, 8)
            yield ops.compute(1)     # accumulate into a local
            pos += CACHELINE_SIZE
        yield access_lat.end()

    programs = {0: program()}
    if pressure:
        # An antagonist core streaming its own buffer: pure bandwidth
        # demand on the same channels, no sharing with the copy.
        noise = system.alloc(max(size, 64 * KB), align=4096)
        programs[1] = stream_read_ops(noise, max(size, 64 * KB))
    total = system.run_programs(programs)
    system.drain()

    # Materialize whatever the backend still tracks lazily (zio's elided
    # pages fault in here) so the functional check sees final bytes.
    system.run_program(engine.resolve_ops(dst, size))
    system.drain()

    expected = system.read_memory(src, size)
    got = system.read_memory(dst, size)
    return {
        "backend": backend,
        "size": size,
        "locality": locality,
        "fraction": fraction,
        "pressure": pressure,
        "copy_cycles": copy_lat.samples[0],
        "access_cycles": access_lat.samples[0],
        "total_cycles": total,
        "dram_accesses": system.total_dram_accesses(),
        "verified": got == expected,
    }


def sweep_backend_crossover(
        backends: Sequence[str] = ("eager", "mclazy", "zio",
                                   "rowclone", "mirror"),
        sizes: Sequence[int] = (4 * KB, 64 * KB, 1 * MB),
        localities: Sequence[str] = LOCALITIES,
        fractions: Sequence[float] = (0.25,),
        pressures: Sequence[bool] = (False,),
        config: Optional[SystemConfig] = None
        ) -> List[Dict[str, object]]:
    """The full crossover grid, one row per point, via ``sim_map``."""
    from repro.perf.runner import SimPoint, sim_map

    points = []
    for locality in localities:
        for fraction in fractions:
            for pressure in pressures:
                for size in sizes:
                    for backend in backends:
                        points.append(SimPoint(
                            run_backend_crossover, (backend, size),
                            {"locality": locality, "fraction": fraction,
                             "pressure": pressure, "config": config}))
    return sim_map(points)


def find_crossovers(rows: Sequence[Dict[str, object]],
                    baseline: str = "mclazy",
                    metric: str = "copy_cycles"
                    ) -> List[Dict[str, object]]:
    """Size-axis crossover points between ``baseline`` and each rival.

    A crossover exists where the winner by ``metric`` flips between two
    adjacent sizes within one (locality, fraction, pressure) series.
    Returns one row per flip with both sizes and both backends' values.
    """
    series: Dict[tuple, Dict[int, Dict[str, float]]] = {}
    for row in rows:
        key = (row["locality"], row["fraction"], row["pressure"])
        per_size = series.setdefault(key, {})
        per_size.setdefault(row["size"], {})[row["backend"]] = row[metric]
    out: List[Dict[str, object]] = []
    for (locality, fraction, pressure), per_size in series.items():
        sizes = sorted(per_size)
        for rival in sorted({b for v in per_size.values() for b in v}):
            if rival == baseline:
                continue
            prev = None
            for size in sizes:
                values = per_size[size]
                if baseline not in values or rival not in values:
                    continue
                lead = values[baseline] <= values[rival]
                if prev is not None and lead != prev[1]:
                    out.append({
                        "locality": locality, "fraction": fraction,
                        "pressure": pressure, "rival": rival,
                        "below_size": prev[0], "above_size": size,
                        "winner_below": baseline if prev[1] else rival,
                        "winner_above": baseline if lead else rival,
                    })
                prev = (size, lead)
    return out
