"""Microbenchmarks for Figures 10-13 and 21."""

__all__ = ["latency", "access", "srcwrite"]
