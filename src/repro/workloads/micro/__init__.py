"""Microbenchmarks for Figures 10-13, 21 and 23."""

__all__ = ["latency", "access", "srcwrite", "crossover"]
