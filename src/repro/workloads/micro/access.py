"""Microbenchmarks: destination-access cost after a copy (Figs. 12-13).

Sequential: copy a 4MB source, then stream-read a fraction of the
destination, accumulating values — the serialization-style pattern where
the stride prefetcher hides (MC)² bounce latency.

Random: pointer-chase through the copied buffer (every load's address
depends on the previous value), which defeats prefetching and puts the
bounce latency on the critical path — the case the bounce-writeback
optimization rescues.

Both report runtime normalized to the native-memcpy run, as the paper
plots them.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro import System, SystemConfig
from repro.common.units import CACHELINE_SIZE, MB
from repro.isa import ops
from repro.workloads.common import (LatencyRecorder, engine_needs_ctt,
                                    fill_pattern,
                                    make_engine, rng)


def _build_system(engine_name: str, config: SystemConfig,
                  **engine_kwargs):
    if not engine_needs_ctt(engine_name) and config.mcsquare_enabled:
        config = config.with_overrides(mcsquare_enabled=False)
    system = System(config)
    engine = make_engine(engine_name, system, **engine_kwargs)
    return system, engine


def run_sequential_access(engine_name: str, fraction: float,
                          buffer_size: int = 4 * MB,
                          misalign: int = 16,
                          config: Optional[SystemConfig] = None,
                          ) -> Dict[str, float]:
    """Copy ``buffer_size`` bytes then stream-read ``fraction`` of them.

    ``misalign`` shifts the source so (MC)² pays double bounces, as the
    paper does on purpose; pass 0 for the "[Aligned]" variant and a
    config with ``prefetch_enabled=False`` for "[No prefetch]".
    """
    config = config or SystemConfig()
    system, engine = _build_system(engine_name, config)
    src = system.alloc(buffer_size + 4096, align=4096) + misalign
    dst = system.alloc(buffer_size + 4096, align=4096)
    fill_pattern(system, src, buffer_size)
    recorder = LatencyRecorder()
    read_bytes = int(buffer_size * fraction)

    def program():
        yield recorder.begin()
        yield from engine.copy_ops(dst, src, buffer_size)
        pos = dst
        end = dst + read_bytes
        while pos < end:
            yield from engine.read_ops(pos, 8)
            yield ops.compute(1)     # accumulate into a local
            pos += CACHELINE_SIZE
        yield recorder.end()

    system.run_program(program())
    system.drain()
    cycles = recorder.samples[0]
    return {"cycles": cycles, "fraction": fraction, "variant": engine_name}


def sweep_sequential(fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
                     buffer_size: int = 4 * MB,
                     config: Optional[SystemConfig] = None
                     ) -> List[Dict[str, float]]:
    """Fig. 12 series: normalized runtime for every variant.

    Every (fraction, variant) point is independent, so the sweep fans
    out through :func:`~repro.perf.runner.sim_map` (``REPRO_JOBS``
    workers + result cache); the memcpy run doubles as that fraction's
    normalization base, exactly as in the serial sweep.
    """
    from repro.perf.runner import SimPoint, sim_map

    config = config or SystemConfig()
    variants = (
        ("memcpy", "memcpy", {}),
        ("zio", "zio", {}),
        ("mcsquare", "mcsquare", {}),
        ("mcsquare_aligned", "mcsquare", {"misalign": 0}),
        ("mcsquare_noprefetch", "mcsquare",
         {"config": config.with_overrides(prefetch_enabled=False)}),
    )
    points: List[SimPoint] = []
    for fraction in fractions:
        for _label, name, kwargs in variants:
            run_kwargs = dict(buffer_size=buffer_size, config=config)
            run_kwargs.update(kwargs)
            points.append(SimPoint(run_sequential_access,
                                   (name, fraction), run_kwargs))
    results = sim_map(points)
    rows: List[Dict[str, float]] = []
    index = 0
    for fraction in fractions:
        base = results[index]["cycles"]  # memcpy is first per fraction
        for label, _name, _kwargs in variants:
            cycles = results[index]["cycles"]
            rows.append({"fraction": fraction, "variant": label,
                         "cycles": cycles, "normalized": cycles / base})
            index += 1
    return rows


def _build_chain(system, base: int, count: int, seed: int) -> int:
    """Write a random cyclic pointer chain of 8-byte elements.

    Element ``i`` (at ``base + 8*i``) holds the index of the next
    element; every element appears exactly once in the cycle.  Eight
    elements share each cacheline, so lines are revisited — the access
    pattern that makes the paper's bounce-writeback optimization matter
    (Fig. 13).  Returns the start index.
    """
    order = list(range(count))
    rng(seed).shuffle(order)
    payload = bytearray(count * 8)
    for i in range(count):
        cur, nxt = order[i], order[(i + 1) % count]
        payload[cur * 8:cur * 8 + 8] = struct.pack("<Q", nxt)
    system.backing.write(base, bytes(payload))
    return order[0]


def run_random_access(engine_name: str, fraction: float,
                      buffer_size: int = 4 * MB,
                      misalign: int = 16,
                      config: Optional[SystemConfig] = None,
                      seed: int = 42) -> Dict[str, float]:
    """Copy then pointer-chase ``fraction`` of the elements (Fig. 13).

    Pass ``config.with_overrides(bounce_writeback=False)`` for the
    "[No writeback]" ablation and ``misalign=0`` for "[Aligned]".
    """
    config = config or SystemConfig()
    system, engine = _build_system(engine_name, config)
    count = buffer_size // 8
    src = system.alloc(buffer_size + 4096, align=4096) + misalign
    dst = system.alloc(buffer_size + 4096, align=4096)
    start = _build_chain(system, src, count, seed)
    recorder = LatencyRecorder()
    visits = int(count * fraction)

    def program():
        yield recorder.begin()
        yield from engine.copy_ops(dst, src, buffer_size)
        index = start
        for _ in range(visits):
            # Blocking load: the next address depends on this value.
            gen = engine.read_ops(dst + index * 8, 8, blocking=True)
            value = None
            for op in gen:
                value = yield op
            index = struct.unpack("<Q", value)[0]
        yield recorder.end()

    system.run_program(program())
    system.drain()
    cycles = recorder.samples[0]
    return {"cycles": cycles, "fraction": fraction, "variant": engine_name}


def sweep_random(fractions=(0.125, 0.25, 0.5, 1.0),
                 buffer_size: int = 4 * MB,
                 config: Optional[SystemConfig] = None
                 ) -> List[Dict[str, float]]:
    """Fig. 13 series: normalized runtime for every variant.

    Fans out through :func:`~repro.perf.runner.sim_map`; see
    :func:`sweep_sequential`.
    """
    from repro.perf.runner import SimPoint, sim_map

    config = config or SystemConfig()
    variants = (
        ("memcpy", "memcpy", {}),
        ("zio", "zio", {}),
        ("mcsquare", "mcsquare", {}),
        ("mcsquare_aligned", "mcsquare", {"misalign": 0}),
        ("mcsquare_nowriteback", "mcsquare",
         {"config": config.with_overrides(bounce_writeback=False)}),
    )
    points: List[SimPoint] = []
    for fraction in fractions:
        for _label, name, kwargs in variants:
            run_kwargs = dict(buffer_size=buffer_size, config=config)
            run_kwargs.update(kwargs)
            points.append(SimPoint(run_random_access,
                                   (name, fraction), run_kwargs))
    results = sim_map(points)
    rows: List[Dict[str, float]] = []
    index = 0
    for fraction in fractions:
        base = results[index]["cycles"]  # memcpy is first per fraction
        for label, _name, _kwargs in variants:
            cycles = results[index]["cycles"]
            rows.append({"fraction": fraction, "variant": label,
                         "cycles": cycles, "normalized": cycles / base})
            index += 1
    return rows
