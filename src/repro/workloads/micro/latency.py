"""Microbenchmark: copy latency vs size (paper Fig. 10 and Fig. 11).

Measures the latency of a single ``memcpy``-equivalent on prefaulted
(memory-resident) buffers for each mechanism, optionally with the source
pre-touched into the caches ("Touched memcpy").

Also provides the Fig. 11 breakdown: how much of ``memcpy_lazy``'s cost
is the per-line CLWB writeback versus sending the MCLAZY packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import System, SystemConfig
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops, touch_ops
from repro.workloads.common import (LatencyRecorder, engine_needs_ctt,
                                    fill_pattern, make_engine)


def measure_copy_latency(engine_name: str, size: int,
                         touched: bool = False,
                         config: Optional[SystemConfig] = None,
                         misalign: int = 0) -> Dict[str, float]:
    """Latency (cycles) of one ``size``-byte copy under ``engine_name``.

    ``touched=True`` pre-reads the source so it is cache-resident.
    ``misalign`` offsets the source relative to the destination line.
    Returns ``{"cycles": ..., "ns": ...}``.
    """
    config = config or SystemConfig()
    if not engine_needs_ctt(engine_name) and config.mcsquare_enabled:
        config = config.with_overrides(mcsquare_enabled=False)
    system = System(config)
    engine = make_engine(engine_name, system)
    src = system.alloc(size + 4096, align=4096) + misalign
    dst = system.alloc(size + 4096, align=4096)
    fill_pattern(system, src, size)
    recorder = LatencyRecorder()

    def program():
        if touched:
            yield from touch_ops(src, size)
            yield ops.mfence()
        yield recorder.begin()
        yield from engine.copy_ops(dst, src, size)
        yield recorder.end()

    system.run_program(program())
    system.drain()
    cycles = recorder.samples[0]
    return {"cycles": cycles, "ns": cycles / config.clock_ghz}


def measure_lazy_breakdown(size: int,
                           config: Optional[SystemConfig] = None
                           ) -> Dict[str, float]:
    """Fig. 11: split ``memcpy_lazy`` cost into writeback vs packet send.

    Three timed runs on identical machines: full wrapper, CLWB-only, and
    MCLAZY-only; the two components are reported as fractions of their
    sum (the paper's stacked-percentage presentation).
    """
    config = config or SystemConfig()

    def timed(clwb_only: bool, mclazy_only: bool) -> int:
        system = System(config)
        src = system.alloc(size, align=4096)
        dst = system.alloc(size, align=4096)
        fill_pattern(system, src, size)
        recorder = LatencyRecorder()

        def program():
            yield recorder.begin()
            if clwb_only:
                for line in range(src, src + size, 64):
                    yield ops.clwb(line)
                yield ops.mfence()
            elif mclazy_only:
                yield from memcpy_lazy_ops(system, dst, src, size,
                                           clwb_sources=False)
            else:
                yield from memcpy_lazy_ops(system, dst, src, size)
            yield recorder.end()

        system.run_program(program())
        return recorder.samples[0]

    writeback = timed(clwb_only=True, mclazy_only=False)
    packet = timed(clwb_only=False, mclazy_only=True)
    total = max(writeback + packet, 1)
    return {
        "total_cycles": timed(False, False),
        "writeback_cycles": writeback,
        "packet_cycles": packet,
        "writeback_frac": writeback / total,
        "packet_frac": packet / total,
    }


def sweep_copy_latency(sizes: List[int],
                       engines: List[str] = ("memcpy", "zio", "mcsquare"),
                       include_touched: bool = True,
                       config: Optional[SystemConfig] = None
                       ) -> List[Dict[str, object]]:
    """Fig. 10 rows: one dict per (size, variant) with latency in ns."""
    from repro.perf.runner import SimPoint, sim_map

    points: List[SimPoint] = []
    labels: List[Dict[str, object]] = []
    for size in sizes:
        for engine in engines:
            points.append(SimPoint(measure_copy_latency, (engine, size),
                                   {"config": config}))
            labels.append({"size": size, "variant": engine})
        if include_touched:
            points.append(SimPoint(measure_copy_latency, ("memcpy", size),
                                   {"touched": True, "config": config}))
            labels.append({"size": size, "variant": "touched_memcpy"})
    results = sim_map(points)
    return [{**label, **result} for label, result in zip(labels, results)]
