"""Microbenchmark: writing to lazily-copied source buffers (Fig. 21).

Lazily copies a source buffer to a destination, overwrites the source,
flushes the stores with CLWB, and fences — putting the BPQ directly on
the critical path.  Each flushed source line parks in the BPQ while its
destination line materializes, so the BPQ size bounds how many such
writes proceed in parallel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import System, SystemConfig
from repro.common.units import CACHELINE_SIZE, KB
from repro.isa import ops
from repro.sw.memcpy import memcpy_lazy_ops
from repro.workloads.common import LatencyRecorder, fill_pattern


def run_source_write(buffer_size: int, bpq_entries: int,
                     config: Optional[SystemConfig] = None
                     ) -> Dict[str, float]:
    """Runtime (cycles) of overwrite+flush+fence on a lazy-copied source."""
    config = (config or SystemConfig()).with_overrides(
        bpq_entries=bpq_entries)
    system = System(config)
    src = system.alloc(buffer_size, align=4096)
    dst = system.alloc(buffer_size, align=4096)
    fill_pattern(system, src, buffer_size)
    recorder = LatencyRecorder()

    def program():
        yield from memcpy_lazy_ops(system, dst, src, buffer_size)
        yield recorder.begin()
        for line in range(src, src + buffer_size, CACHELINE_SIZE):
            yield ops.store(line, 64, data=b"\x5A" * 64)
        for line in range(src, src + buffer_size, CACHELINE_SIZE):
            yield ops.clwb(line)
        yield ops.mfence()
        yield recorder.end()

    system.run_program(program())
    system.drain()
    return {"cycles": recorder.samples[0], "buffer_size": buffer_size,
            "bpq_entries": bpq_entries}


def sweep_bpq(buffer_sizes=(16 * KB, 64 * KB, 256 * KB),
              bpq_sizes=(1, 2, 4, 8, 16),
              config: Optional[SystemConfig] = None
              ) -> List[Dict[str, float]]:
    """Fig. 21 rows: runtime normalized to the 1-entry BPQ per size."""
    from repro.perf.runner import SimPoint, sim_map

    points = [SimPoint(run_source_write, (size, entries),
                       {"config": config})
              for size in buffer_sizes for entries in bpq_sizes]
    results = sim_map(points)
    rows: List[Dict[str, float]] = []
    index = 0
    for _size in buffer_sizes:
        base: Optional[float] = None
        for _entries in bpq_sizes:
            result = results[index]
            if base is None:
                base = result["cycles"]
            rows.append({**result, "normalized": result["cycles"] / base})
            index += 1
    return rows
