"""STREAM-style bandwidth calibration microbenchmarks.

Not a paper figure: these measure the simulated machine's raw memory
throughput so the calibration in :mod:`repro.common.params` can be
sanity-checked (the DDR4-2400 × 2-channel configuration peaks at
~38 GB/s of raw bus bandwidth; a single core with bounded MLP achieves
a fraction of that, as on real hardware).

Used by tests and available to users studying how the machine's
bandwidth envelope shapes the (MC)² results (Figs. 16b/17b/22 are
bandwidth-bound).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import System, SystemConfig
from repro.common.units import CACHELINE_SIZE, MB
from repro.isa import ops
from repro.workloads.common import LatencyRecorder, fill_pattern


def measure_read_bandwidth(size: int = 2 * MB, num_cores: int = 1,
                           config: Optional[SystemConfig] = None
                           ) -> Dict[str, float]:
    """Sequential read throughput in GB/s (one stream per core)."""
    config = config or SystemConfig(mcsquare_enabled=False)
    system = System(config)
    recorders = []
    programs = {}
    per_core = size // num_cores

    for core in range(num_cores):
        base = system.alloc(per_core + 4096, align=4096)
        fill_pattern(system, base, per_core)
        rec = LatencyRecorder()
        recorders.append(rec)

        def program(base=base, rec=rec):
            yield rec.begin()
            pos = base
            while pos < base + per_core:
                yield ops.load(pos, 8)
                pos += CACHELINE_SIZE
            yield rec.end()

        programs[core] = program()

    system.run_programs(programs)
    cycles = max(rec.samples[0] for rec in recorders)
    seconds = cycles / (config.clock_ghz * 1e9)
    return {
        "bytes": size,
        "cycles": cycles,
        "gb_per_sec": size / seconds / 1e9,
    }


def measure_copy_bandwidth(size: int = 1 * MB,
                           config: Optional[SystemConfig] = None
                           ) -> Dict[str, float]:
    """Single-core eager memcpy throughput in GB/s."""
    from repro.sw.memcpy import memcpy_ops

    config = config or SystemConfig(mcsquare_enabled=False)
    system = System(config)
    src = system.alloc(size + 4096, align=4096)
    dst = system.alloc(size + 4096, align=4096)
    fill_pattern(system, src, size)
    rec = LatencyRecorder()

    def program():
        yield rec.begin()
        yield from memcpy_ops(system, dst, src, size)
        yield rec.end()

    system.run_program(program())
    cycles = rec.samples[0]
    seconds = cycles / (config.clock_ghz * 1e9)
    return {
        "bytes": size,
        "cycles": cycles,
        "gb_per_sec": size / seconds / 1e9,
    }
