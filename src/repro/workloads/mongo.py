"""MongoDB insert workload (YCSB load phase; Fig. 15).

Replicates the zIO paper's experiment as run in §V-B: a client loads
documents of 10 fields × 100KB each; each insert moves the document
through MongoDB's copy pipeline:

1. the network receive buffer is copied into an internal IO buffer,
2. inserted fields are copied again into the in-memory B-tree used for
   indexing (and the key bytes are *read* during tree descent —
   the accesses that make zIO fault),
3. the document is copied into the journal/log, which is then read
   sequentially when the log is flushed.

The measurement is average insert latency.  (MC)² elides the copies and
services the later accesses by bouncing; zIO elides them but pays a
page fault per accessed page, which is why it *slows down* inserts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import System, SystemConfig
from repro.common import params
from repro.common.units import CACHELINE_SIZE, KB, PAGE_SIZE
from repro.isa import ops
from repro.workloads.common import (LatencyRecorder, engine_needs_ctt,
                                    fill_pattern,
                                    make_engine, rng)


class MongoInsertWorkload:
    """YCSB-style load phase against the simulated copy pipeline."""

    def __init__(self, engine_name: str, num_inserts: int = 10,
                 fields_per_doc: int = 10, field_size: int = 100 * KB,
                 index_read_fraction: float = 0.3,
                 config: Optional[SystemConfig] = None, seed: int = 23):
        config = config or SystemConfig()
        if not engine_needs_ctt(engine_name) \
                and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        self.config = config
        self.system = System(config)
        self.engine = make_engine(engine_name, self.system)
        self.engine_name = engine_name
        self.num_inserts = num_inserts
        self.fields_per_doc = fields_per_doc
        self.field_size = field_size
        self.index_read_fraction = index_read_fraction
        self._random = rng(seed)

        doc_size = fields_per_doc * field_size
        self.recv_buffer = self.system.alloc(doc_size, align=PAGE_SIZE)
        self.io_buffer = self.system.alloc(doc_size, align=PAGE_SIZE)
        self.btree_arena = self.system.alloc(doc_size * 2, align=PAGE_SIZE)
        self.log_buffer = self.system.alloc(doc_size * 2, align=PAGE_SIZE)
        fill_pattern(self.system, self.recv_buffer, doc_size)
        self.latencies = LatencyRecorder()

    def _insert_ops(self, insert_idx: int) -> Iterator[ops.Op]:
        doc_size = self.fields_per_doc * self.field_size
        yield self.latencies.begin()
        yield ops.compute(params.SYSCALL_CYCLES)  # recv() of the document
        # Non-copy insert work: BSON validation, WiredTiger tree
        # maintenance, session/locking and oplog bookkeeping.  The paper's
        # Fig. 15 inserts take ~15 ms for 1MB documents, of which copies
        # are a minority (Fig. 2: ~35%); this charge calibrates the
        # non-copy share to that ratio.
        yield ops.compute(doc_size * 12 + 20_000)

        # 1. network buffer -> IO buffer, field by field
        for f in range(self.fields_per_doc):
            off = f * self.field_size
            yield from self.engine.copy_ops(self.io_buffer + off,
                                            self.recv_buffer + off,
                                            self.field_size)

        # 2. IO buffer -> B-tree node arena; tree descent reads keys
        slot = (insert_idx % 2) * doc_size
        for f in range(self.fields_per_doc):
            off = f * self.field_size
            yield from self.engine.copy_ops(self.btree_arena + slot + off,
                                            self.io_buffer + off,
                                            self.field_size)
            # Key comparisons read a prefix of the copied field.
            read_bytes = int(self.field_size * self.index_read_fraction)
            pos = 0
            while pos < read_bytes:
                yield from self.engine.read_ops(
                    self.btree_arena + slot + off + pos, 8)
                yield ops.compute(4)
                pos += CACHELINE_SIZE * 4

        # 3. IO buffer -> journal, then the journal entry is flushed
        #    (sequential read of everything just written).
        log_slot = (insert_idx % 2) * doc_size
        yield from self.engine.copy_ops(self.log_buffer + log_slot,
                                        self.io_buffer, doc_size)
        pos = 0
        while pos < doc_size:
            yield from self.engine.read_ops(self.log_buffer + log_slot + pos, 8)
            pos += CACHELINE_SIZE * 8
        yield ops.mfence()
        yield self.latencies.end()

    def program(self) -> Iterator[ops.Op]:
        """All inserts, back to back."""
        for i in range(self.num_inserts):
            yield from self._insert_ops(i)

    def run(self) -> Dict[str, float]:
        """Execute; returns average/percentile insert latency."""
        finish = self.system.run_program(self.program())
        self.system.drain()
        lat = self.latencies
        return {
            "engine": self.engine_name,
            "cycles": finish,
            "inserts": self.num_inserts,
            "avg_insert_latency_cycles": sum(lat.samples) / len(lat.samples),
            "avg_insert_latency_ms": (sum(lat.samples) / len(lat.samples))
            / (self.config.clock_ghz * 1e6),
            "p99_insert_latency_cycles": max(lat.samples),
        }


def run_mongo(engine_name: str, num_inserts: int = 10,
              field_size: int = 100 * KB,
              config: Optional[SystemConfig] = None) -> Dict[str, float]:
    """Convenience wrapper for one configuration."""
    return MongoInsertWorkload(engine_name, num_inserts=num_inserts,
                               field_size=field_size, config=config).run()
