"""MVCC database workload (Cicada-style; Figs. 16, 17, 22).

Write transactions in a multi-version concurrency control database copy
the tuple they modify, update their private version, and install it at
commit.  With 8KB rows and updates touching a small fraction of the
tuple, most of the copy is wasted work — the opportunity (MC)² exploits.

The workload runs a 50:50 read/update mix over a table of 8KB rows.
Updates come in three flavours:

* ``rmw``       — read-modify-write: load + store per touched line,
* ``write``     — write-only stores (RFO still reads memory),
* ``write_nt``  — non-temporal stores (no RFO; Fig. 17 variant).

Throughput is reported in kOps/s.  Multi-threaded runs place one
partition per core, as Cicada's shared-nothing-ish execution does.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import System, SystemConfig
from repro.common.errors import ConfigError
from repro.common.units import CACHELINE_SIZE, KB
from repro.isa import ops
from repro.workloads.common import (engine_needs_ctt, fill_pattern,
                                    make_engine, rng)


class MvccWorkload:
    """Read/update transaction mix over versioned 8KB tuples."""

    def __init__(self, engine_name: str, num_threads: int = 1,
                 txns_per_thread: int = 30, row_size: int = 8 * KB,
                 rows_per_partition: int = 16,
                 update_fraction_of_row: float = 0.0625,
                 update_kind: str = "rmw",
                 read_fraction: float = 0.5,
                 config: Optional[SystemConfig] = None, seed: int = 5):
        if update_kind not in ("rmw", "write", "write_nt"):
            raise ConfigError(f"bad update kind {update_kind!r}")
        config = config or SystemConfig()
        if not engine_needs_ctt(engine_name) \
                and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        if num_threads > config.num_cpus:
            raise ConfigError("more threads than simulated CPUs")
        self.config = config
        self.system = System(config)
        self.engine_name = engine_name
        self.num_threads = num_threads
        self.txns_per_thread = txns_per_thread
        self.row_size = row_size
        self.rows = rows_per_partition
        self.update_bytes = int(row_size * update_fraction_of_row)
        self.update_kind = update_kind
        self.read_fraction = read_fraction
        self.seed = seed

        # Per-thread partitions: a table region plus a version arena with
        # two alternating version slots per row.
        self.partitions: List[Dict[str, int]] = []
        for t in range(num_threads):
            table = self.system.alloc(row_size * rows_per_partition,
                                      align=4096)
            versions = self.system.alloc(row_size * rows_per_partition * 2,
                                         align=4096)
            fill_pattern(self.system, table, row_size * rows_per_partition,
                         seed=seed + t)
            self.partitions.append({"table": table, "versions": versions})
        # One engine per thread (zIO tracking is per-process but our
        # workload partitions do not overlap, so this is equivalent).
        self.engines = [make_engine(engine_name, self.system)
                        for _ in range(num_threads)]

    # ----------------------------------------------------------- programs
    def _thread_program(self, thread: int) -> Iterator[ops.Op]:
        part = self.partitions[thread]
        engine = self.engines[thread]
        random = rng(self.seed * 97 + thread)
        for txn in range(self.txns_per_thread):
            row = random.randrange(self.rows)
            row_addr = part["table"] + row * self.row_size
            if random.random() < self.read_fraction:
                # Read transaction: timestamp + version-chain walk, then
                # scan a quarter of the row.
                yield ops.compute(800)
                pos = 0
                while pos < self.row_size // 4:
                    yield from engine.read_ops(row_addr + pos, 8)
                    yield ops.compute(2)
                    pos += CACHELINE_SIZE
                continue
            # Update transaction: copy the tuple into a fresh version...
            slot = (txn % 2) * self.rows * self.row_size
            version_addr = part["versions"] + slot + row * self.row_size
            # Cicada's per-write-txn work beyond the copy: timestamp
            # allocation, version install, read/write-set validation and
            # the WAL record (~1-2 us on real hardware).
            yield ops.compute(4000)
            yield from engine.copy_ops(version_addr, row_addr,
                                       self.row_size)
            # ...modify a fraction of it...
            touched = 0
            pos = int(random.randrange(
                max(1, self.row_size - self.update_bytes))
                // CACHELINE_SIZE) * CACHELINE_SIZE
            while touched < self.update_bytes:
                addr = version_addr + (pos + touched) % self.row_size
                addr -= addr % CACHELINE_SIZE
                if self.update_kind == "rmw":
                    yield from engine.read_ops(addr, 8)
                    yield ops.compute(2)
                    yield from engine.write_ops(addr, 8)
                elif self.update_kind == "write":
                    yield from engine.write_ops(addr, 8)
                else:  # write_nt
                    yield from engine.write_ops(addr, CACHELINE_SIZE,
                                                nontemporal=True)
                touched += CACHELINE_SIZE
            # ...and commit: validation + install the version pointer,
            # retire the old version, write the log record.
            yield ops.compute(4000)
            yield from engine.free_ops(row_addr, self.row_size)

    def run(self) -> Dict[str, float]:
        """Execute on ``num_threads`` cores; returns throughput."""
        programs = {t: self._thread_program(t)
                    for t in range(self.num_threads)}
        finish = self.system.run_programs(programs)
        self.system.drain()
        total_txns = self.num_threads * self.txns_per_thread
        seconds = finish / (self.config.clock_ghz * 1e9)
        return {
            "engine": self.engine_name,
            "threads": self.num_threads,
            "update_kind": self.update_kind,
            "update_bytes": self.update_bytes,
            "cycles": finish,
            "txns": total_txns,
            "kops_per_sec": total_txns / seconds / 1e3,
        }


def run_mvcc(engine_name: str, update_fraction: float,
             num_threads: int = 1, update_kind: str = "rmw",
             txns_per_thread: int = 30,
             config: Optional[SystemConfig] = None) -> Dict[str, float]:
    """One (engine, fraction, threads, kind) cell of Figs. 16/17/22."""
    return MvccWorkload(engine_name, num_threads=num_threads,
                        update_fraction_of_row=update_fraction,
                        update_kind=update_kind,
                        txns_per_thread=txns_per_thread,
                        config=config).run()
