"""Shared workload utilities: deterministic data, timing markers, results."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.common.units import CACHELINE_SIZE
from repro.isa import ops
from repro.isa.ops import Op
from repro.sw.engine import CopyEngine


def rng(seed: int = 1234) -> random.Random:
    """A deterministic PRNG; all workloads take explicit seeds."""
    return random.Random(seed)


def fill_pattern(system, addr: int, size: int, seed: int = 7) -> None:
    """Deterministic pseudo-random content (cheap, no RNG per byte)."""
    pattern = bytes((i * 131 + seed * 17) & 0xFF for i in range(256))
    reps = size // 256 + 1
    system.backing.write(addr, (pattern * reps)[:size])


def timestamp(record: Callable[[int], None]) -> Op:
    """A zero-cost marker op whose retirement timestamps program order.

    Because retirement is in order, the marker retires only after every
    older op has completed — a clean region boundary.
    """
    return Op(ops.OpKind.COMPUTE, cycles=0,
              on_retire=lambda op, t: record(t))


class LatencyRecorder:
    """Collects (label, latency) pairs bracketed by marker ops."""

    def __init__(self):
        self.samples: List[int] = []
        self._start: Optional[int] = None

    def begin(self) -> Op:
        """Marker starting a measured region."""
        def _rec(t: int) -> None:
            self._start = t
        return timestamp(_rec)

    def end(self) -> Op:
        """Marker ending a measured region; records the latency."""
        def _rec(t: int) -> None:
            assert self._start is not None, "end() retired before begin()"
            self.samples.append(t - self._start)
            self._start = None
        return timestamp(_rec)


class RegionTracker:
    """Accumulates cycles spent in named program regions (e.g. memcpy)."""

    def __init__(self):
        self.totals: Dict[str, int] = {}
        self._open: Dict[str, int] = {}

    def begin(self, name: str) -> Op:
        def _rec(t: int) -> None:
            self._open[name] = t
        return timestamp(_rec)

    def end(self, name: str) -> Op:
        def _rec(t: int) -> None:
            start = self._open.pop(name)
            self.totals[name] = self.totals.get(name, 0) + (t - start)
        return timestamp(_rec)

    def cycles(self, name: str) -> int:
        """Total cycles attributed to ``name``."""
        return self.totals.get(name, 0)


class NullCopyEngine(CopyEngine):
    """Elides copies entirely and for free.

    Used only to *measure* copy overhead (Fig. 2): runtime(baseline) vs
    runtime(copies removed).  Data correctness is intentionally not
    preserved — destination reads are redirected to the source so access
    patterns stay realistic.
    """

    name = "nocopy"

    def __init__(self, system):
        super().__init__(system)
        self._redirect: Dict[int, int] = {}

    def copy_ops(self, dst: int, src: int, size: int) -> Iterator[Op]:
        self._redirect[dst] = src
        return
        yield  # pragma: no cover - generator with no ops

    def read_ops(self, addr: int, size: int = 8, blocking: bool = False,
                 on_retire=None):
        base = self._resolve(addr)
        yield ops.load(base, size, blocking=blocking, on_retire=on_retire)

    def _resolve(self, addr: int) -> int:
        for dst, src in self._redirect.items():
            if dst <= addr < dst + (1 << 24):
                # Coarse redirect: good enough for timing-only use.
                return src + (addr - dst) if addr - dst < (1 << 22) else addr
        return addr


def make_engine(name: str, system, **kwargs) -> CopyEngine:
    """Factory over the :mod:`repro.copyengine` registry.

    Accepts every registered backend name plus the historical aliases
    (``memcpy``/``baseline`` → eager, ``mcsquare``/``mc2``/``lazy`` →
    mclazy) and the measurement-only ``nocopy`` pseudo-engine, which is
    not a real backend (it does not preserve data).
    """
    if name == "nocopy":
        return NullCopyEngine(system)
    from repro.copyengine import make_backend
    return make_backend(name, system, **kwargs)


def engine_needs_ctt(name: str) -> bool:
    """True when ``name`` requires an (MC)²-enabled machine.

    Workload builders use this to flip ``mcsquare_enabled`` off for
    backends that don't use the CTT, so baseline/zio/in-DRAM variants
    run on a vanilla controller exactly as before the backend registry
    existed.
    """
    if name in ("nocopy", "native"):
        return False
    from repro.copyengine import needs_ctt
    return needs_ctt(name)
