"""Huge-page copy-on-write fault workload (Fig. 18).

An in-memory database snapshots itself by calling ``fork``: the 64MB
dataset (2MB huge pages) becomes copy-on-write.  The parent then updates
random 8-byte elements; each first touch of a huge page takes a COW
fault whose handler copies 2MB.

* Native kernel: the fault handler performs the full 2MB copy eagerly —
  latency spikes of ~2 orders of magnitude.
* (MC)² kernel: ``copy_user_huge_page`` issues ``MCLAZY`` instead
  (kernel path, 2MB contiguity, no per-line CLWB train because the
  hardware writes back any dirty source lines when the packet traverses
  the caches), so the spike is only the fault bookkeeping.

Per-update latencies are measured RDTSC-style with retirement markers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import System, SystemConfig
from repro.common import params
from repro.common.units import HUGE_PAGE_SIZE, MB
from repro.isa import ops
from repro.os.vm import OperatingSystem
from repro.sw.engine import KernelEagerEngine, LazyEngine
from repro.workloads.common import (LatencyRecorder, engine_needs_ctt,
                                    make_engine, rng)


class HugePageCowWorkload:
    """fork + random 8B updates over a huge-page-backed region."""

    def __init__(self, engine_name: str, region_size: int = 64 * MB,
                 num_updates: int = 100,
                 config: Optional[SystemConfig] = None, seed: int = 17):
        config = config or SystemConfig()
        if not engine_needs_ctt(engine_name) and config.mcsquare_enabled:
            config = config.with_overrides(mcsquare_enabled=False)
        self.config = config
        self.system = System(config)
        self.os = OperatingSystem(self.system)
        if engine_name in ("memcpy", "native"):
            self.engine = KernelEagerEngine(self.system)
            self.engine_name = "native"
        elif engine_name in ("mcsquare", "mc2", "lazy", "mclazy"):
            # Kernel lazy path: huge-page contiguity, hardware handles
            # dirty-source writeback at MCLAZY time.
            self.engine = LazyEngine(self.system,
                                     page_size=HUGE_PAGE_SIZE,
                                     clwb_sources=False)
            self.engine_name = "mcsquare"
        else:
            # Any registered copy backend (zio / rowclone / mirror ...):
            # the COW handler copies whole huge pages through it.
            self.engine = make_engine(engine_name, self.system)
            self.engine_name = engine_name
        self.region_size = region_size
        self.num_updates = num_updates
        self.seed = seed
        self.latencies = LatencyRecorder()

        self.space = self.os.create_space(page_size=HUGE_PAGE_SIZE)
        self.base = 0x40000000  # virtual base
        self.space.map_region(self.base, region_size)
        # Parent initializes the dataset (prefault), then forks.
        for vpage in range(self.base, self.base + region_size,
                           HUGE_PAGE_SIZE):
            frame = self.space.translate(vpage)
            self.system.backing.fill(frame, HUGE_PAGE_SIZE, 0x33)

    def program(self) -> Iterator[ops.Op]:
        """fork, then the measured random-update loop."""
        child, fork_cost = self.os.fork(self.space)
        yield from fork_cost
        random = rng(self.seed)
        for _ in range(self.num_updates):
            offset = random.randrange(self.region_size // 8) * 8
            yield self.latencies.begin()
            yield from self.os.cow_store_ops(
                self.space, self.base + offset, 8, self.engine,
                data=b"\x77" * 8)
            yield ops.mfence()
            yield self.latencies.end()

    def run(self) -> Dict[str, object]:
        """Execute; returns per-access latencies (cycles) in order."""
        finish = self.system.run_program(self.program())
        self.system.drain()
        samples = list(self.latencies.samples)
        return {
            "engine": self.engine_name,
            "cycles": finish,
            "latencies": samples,
            "max_latency": max(samples),
            "min_latency": min(samples),
            "spike_ratio": max(samples) / max(min(samples), 1),
            "cow_faults": self.os.cow_faults,
        }


def run_hugepage_cow(engine_name: str, region_size: int = 64 * MB,
                     num_updates: int = 100,
                     config: Optional[SystemConfig] = None
                     ) -> Dict[str, object]:
    """One Fig. 18 series."""
    return HugePageCowWorkload(engine_name, region_size=region_size,
                               num_updates=num_updates,
                               config=config).run()
