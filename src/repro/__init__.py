"""(MC)²: Lazy MemCopy at the Memory Controller — Python reproduction.

This package reproduces the system from Kamath & Peter, ISCA 2024: a
memory-controller extension that executes ``memcpy`` lazily via a Copy
Tracking Table and Bounce Pending Queue, together with the full simulated
substrate (cores, caches, DRAM), the software interface (``memcpy_lazy``,
interposer), the zIO baseline, an OS layer (virtual memory, fork/COW,
pipes), and the paper's workloads.

Quickstart::

    from repro import System, SystemConfig
    from repro.sw.memcpy import memcpy_lazy_ops

    system = System(SystemConfig())          # Table I machine with (MC)²
    src = system.alloc(4096); dst = system.alloc(4096)
    system.backing.fill(src, 4096, 0xAB)
    system.run_program(memcpy_lazy_ops(system, dst, src, 4096))
    assert system.read_memory(dst, 4096) == system.read_memory(src, 4096)
"""

from repro.system.config import BASELINE, TABLE1, SystemConfig, small_system
from repro.system.system import System

__version__ = "1.0.0"

__all__ = [
    "System",
    "SystemConfig",
    "TABLE1",
    "BASELINE",
    "small_system",
    "__version__",
]
