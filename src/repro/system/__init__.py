"""Top-level simulated machine and configuration presets."""

from repro.system.config import BASELINE, TABLE1, SystemConfig, small_system
from repro.system.system import System

__all__ = ["System", "SystemConfig", "TABLE1", "BASELINE", "small_system"]
