"""Top-level simulated machine.

``System`` wires cores → cache hierarchy → interconnect → memory
controllers → DRAM + backing store, per a :class:`SystemConfig`.  It is
the main entry point of the library::

    from repro import System, SystemConfig
    sys = System(SystemConfig())
    sys.run_programs({0: my_program()})
    print(sys.sim.now, "cycles")

Workloads obtain physical buffers from the bump allocator (or go through
the OS layer in :mod:`repro.os` for virtual memory), hand the cores
programs (op generators), and read results from the stats tree and the
byte-accurate backing store.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.common import params
from repro.common.errors import SimulationError
from repro.common.units import CACHELINE_SIZE, align_up
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.core import Core, Program
from repro.dram.address_map import AddressMap
from repro.mem.backing_store import BackingStore
from repro.memctrl.controller import MemoryController
from repro.mcsquare.controller import McSquareController
from repro.mcsquare.ctt import CopyTrackingTable
from repro.faults.watchdog import Watchdog
from repro.interconnect.bus import Interconnect
from repro.obs.runtime import attach_if_configured
from repro.sim.engine import Simulator
from repro.sim.shard import shared
from repro.sim.stats import StatGroup
from repro.system.config import SystemConfig


@shared
class System:
    """A complete simulated machine built from a :class:`SystemConfig`."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.config.validate()
        self.sim = Simulator()
        self.stats = StatGroup("system")
        self.backing = BackingStore(self.config.dram_size)
        self.address_map = AddressMap(
            channels=self.config.dram_channels,
            banks_per_channel=params.DRAM_BANKS_PER_CHANNEL,
            row_bytes=params.DRAM_ROW_BYTES,
        )

        self.ctt: Optional[CopyTrackingTable] = None
        self.controllers: List[MemoryController] = []
        # Copy backends are built lazily by copy_backend(): most runs
        # use one, and construction must come after the machine exists.
        self._copy_backends: Dict[str, object] = {}
        if self.config.mcsquare_enabled:
            self.ctt = CopyTrackingTable(self.config.ctt_entries,
                                         self.stats.group("ctt"),
                                         clock=self._now)
            for ch in range(self.config.dram_channels):
                self.controllers.append(McSquareController(
                    self.sim, ch, self.address_map, self.backing,
                    self.stats.group(f"mc{ch}"), self.ctt,
                    bpq_entries=self.config.bpq_entries,
                    copy_threshold=self.config.copy_threshold,
                    parallel_frees=self.config.parallel_frees,
                    bounce_writeback=self.config.bounce_writeback,
                    eager_async_copies=self.config.eager_async_copies,
                    ctt_retry_cycles=self.config.ctt_retry_cycles,
                    ctt_retry_limit=self.config.ctt_retry_limit,
                    bpq_overflow_timeout=self.config.bpq_overflow_timeout,
                    inmem_layout=self.config.inmem_layout,
                    inmem_subarray_rows=self.config.inmem_subarray_rows,
                ))
            for mc in self.controllers:
                mc.peers = [m for m in self.controllers if m is not mc]
        else:
            for ch in range(self.config.dram_channels):
                self.controllers.append(MemoryController(
                    self.sim, ch, self.address_map, self.backing,
                    self.stats.group(f"mc{ch}"),
                    inmem_layout=self.config.inmem_layout,
                    inmem_subarray_rows=self.config.inmem_subarray_rows,
                ))

        self.interconnect = Interconnect(self.sim, self.controllers,
                                         self.stats.group("xbar"))
        self.hierarchy = CacheHierarchy(
            self.sim, self.config.num_cpus, self.interconnect.send,
            self.stats.group("caches"),
            l1_size=self.config.l1_size, l1_assoc=self.config.l1_assoc,
            l2_size=self.config.l2_size, l2_assoc=self.config.l2_assoc,
            prefetch_enabled=self.config.prefetch_enabled,
        )
        self.cores = [Core(self.sim, i, self.hierarchy,
                           self.stats.group(f"core{i}"))
                      for i in range(self.config.num_cpus)]

        # Simple bump allocator over physical memory; skip the first page
        # so address 0 stays unmapped (catches stray null derefs).
        self._alloc_cursor = 4096

        # repro.obs: when tracing is configured for this process (via
        # runtime.configure / the REPRO_TRACE env handled by the perf
        # runner), every System built gets a tracer; otherwise None and
        # the simulation carries zero instrumentation overhead.
        self.tracer = attach_if_configured(self)

    def _now(self) -> int:
        """Current simulation cycle (CTT copy-lifetime clock)."""
        return self.sim.now

    # ------------------------------------------------------- copy backend
    def copy_backend(self, name: Optional[str] = None, **overrides):
        """The copy backend this machine is configured for.

        ``name`` defaults to ``config.copy_backend``; backends are
        cached per canonical name so repeated calls share tracking
        state (zio's elision map, stats).  Passing ``overrides`` builds
        a fresh, uncached instance.
        """
        from repro.copyengine import canonical_name, make_backend
        backend = canonical_name(name or self.config.copy_backend)
        if overrides:
            return make_backend(backend, self, **overrides)
        if backend not in self._copy_backends:
            self._copy_backends[backend] = make_backend(backend, self)
        return self._copy_backends[backend]

    # --------------------------------------------------------- allocation
    def alloc(self, size: int, align: int = CACHELINE_SIZE) -> int:
        """Carve ``size`` bytes of physical memory; returns the address."""
        addr = align_up(self._alloc_cursor, align)
        if addr + size > self.config.dram_size:
            raise SimulationError("physical memory exhausted")
        self._alloc_cursor = addr + size
        return addr

    # ----------------------------------------------------------- running
    def run_programs(self, programs: Dict[int, Program],
                     max_cycles: Optional[int] = None) -> int:
        """Run one program per given core id until all complete.

        Returns the cycle at which the *last* core finished.
        """
        finished: Dict[int, int] = {}
        for core_id, program in programs.items():
            self.cores[core_id].run_program(
                program, on_finish=lambda t, c=core_id: finished.__setitem__(c, t))
        self.sim.run(until=max_cycles)
        missing = set(programs) - set(finished)
        if missing:
            raise SimulationError(
                f"cores {sorted(missing)} did not finish "
                f"(deadlock or max_cycles too small)")
        return max(finished.values())

    def run_program(self, program: Program, core: int = 0,
                    max_cycles: Optional[int] = None) -> int:
        """Run a single program on ``core``; returns the finish cycle."""
        return self.run_programs({core: program}, max_cycles=max_cycles)

    def drain(self) -> int:
        """Run the event queue dry (background copies, WPQ drains)."""
        return self.sim.run()

    # --------------------------------------------------------- inspection
    def read_memory(self, addr: int, size: int) -> bytes:
        """Architecturally visible bytes at ``addr``.

        Composes, newest first: pending store-buffer data (stores that
        have issued but not yet drained into a cache), then cached dirty
        data, then parked BPQ writes, then the backing store with
        unresolved prospective copies overlaid — i.e. what a coherent
        reader at this instant would observe.
        """
        out = bytearray()
        pos = addr
        end = addr + size
        while pos < end:
            line_start = pos - (pos % CACHELINE_SIZE)
            take = min(CACHELINE_SIZE - (pos - line_start), end - pos)
            cached = self.hierarchy.read_functional(pos, take)
            if cached is not None:
                out.extend(cached)
            else:
                parked = self._parked_line(line_start)
                if parked is not None:
                    off = pos - line_start
                    out.extend(parked[off:off + take])
                else:
                    out.extend(self._mcsquare_read(pos, take))
            pos += take
        # Overlay not-yet-drained stores (program order within each core).
        for core in self.cores:
            for s_addr, s_size, s_data in core._pending_stores:
                lo = max(s_addr, addr)
                hi = min(s_addr + s_size, addr + size)
                if lo < hi:
                    out[lo - addr:hi - addr] = \
                        s_data[lo - s_addr:hi - s_addr]
        return bytes(out)

    def _parked_line(self, line_addr: int) -> Optional[bytes]:
        for mc in self.controllers:
            bpq = getattr(mc, "bpq", None)
            if bpq is not None:
                entry = bpq.get(line_addr)
                if entry is not None:
                    return bytes(entry.data)
        return None

    def _mcsquare_read(self, addr: int, size: int) -> bytes:
        """Backing-store read honouring unresolved prospective copies."""
        if self.ctt is None:
            return self.backing.read(addr, size)
        out = bytearray(self.backing.read(addr, size))
        # Overlay tracked destinations with their (current) source bytes.
        for entry in self.ctt.entries:
            lo = max(entry.dst, addr)
            hi = min(entry.dst_end, addr + size)
            if lo < hi:
                src = entry.src_for_dst(lo)
                out[lo - addr:hi - addr] = self.backing.read(src, hi - lo)
        return bytes(out)

    def total_dram_accesses(self) -> int:
        """Demand + background DRAM device accesses across channels."""
        return int(sum(mc.channel.stats.counters["accesses"].value
                       for mc in self.controllers))

    def poisoned_lines(self) -> set:
        """Line addresses an architectural read could observe as poisoned.

        The union of: lines poisoned in memory, cached copies filled from
        poisoned data, parked BPQ writes carrying poison, and tracked
        (not-yet-materialized) destinations whose source bytes are
        poisoned — i.e. everywhere a detected-uncorrectable error has
        propagated.  Empty on a healthy machine.
        """
        lines: set = set(self.backing.poisoned_lines)
        lines |= self.hierarchy.poisoned_lines
        for mc in self.controllers:
            bpq = getattr(mc, "bpq", None)
            if bpq is not None:
                for entry in bpq.entries():
                    if entry.poisoned:
                        lines.add(entry.line)
        if self.ctt is not None:
            for entry in self.ctt.entries:
                line = entry.dst
                while line < entry.dst_end:
                    if self.backing.range_poisoned(
                            entry.src_for_dst(line), CACHELINE_SIZE):
                        lines.add(line)
                    line += CACHELINE_SIZE
        return lines

    def snapshot(self) -> Dict[str, object]:
        """Flat dict of machine state for watchdog post-mortems.

        Cheap to build (counters and queue depths only, no byte dumps);
        the watchdog calls it once, when a livelock is detected.
        """
        snap: Dict[str, object] = {
            "cycle": self.sim.now,
            "events_fired": self.sim.events_fired,
            "events_pending": self.sim.pending,
            "queue_labels": self.sim.queue_labels(limit=8),
        }
        if self.ctt is not None:
            snap["ctt_entries"] = len(self.ctt)
            snap["ctt_occupancy"] = round(self.ctt.occupancy, 3)
            snap["ctt_tracked_bytes"] = self.ctt.tracked_bytes()
        for mc in self.controllers:
            prefix = f"mc{mc.channel_id}"
            snap[f"{prefix}_wpq"] = mc.wpq_occupancy
            bpq = getattr(mc, "bpq", None)
            if bpq is not None:
                snap[f"{prefix}_bpq"] = len(bpq)
                snap[f"{prefix}_bpq_overflow"] = len(mc._bpq_overflow)
                snap[f"{prefix}_ctt_full_stalls"] = \
                    int(mc._ctt_full_stalls.value)
        snap["poisoned_lines"] = len(self.poisoned_lines())
        return snap

    def attach_watchdog(
        self,
        check_every: int = params.WATCHDOG_CHECK_EVERY_EVENTS,
        stall_checks: int = params.WATCHDOG_STALL_CHECKS,
        cycle_deadline: Optional[int] = None,
    ) -> Watchdog:
        """Arm the simulator's livelock watchdog with System post-mortems.

        ``cycle_deadline`` additionally bounds total simulated time: a
        run whose clock passes it raises
        :class:`~repro.common.errors.DeadlineError` (see
        :func:`repro.resilience.deadline.cycle_budget` for the
        ``REPRO_CYCLE_DEADLINE``-derived value).
        """
        watchdog = Watchdog(snapshot_fn=self.snapshot,
                            check_every=check_every,
                            stall_checks=stall_checks,
                            cycle_deadline=cycle_deadline)
        self.sim.watchdog = watchdog
        return watchdog
