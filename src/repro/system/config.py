"""System configuration (Table I defaults) and variants for sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common import params
from repro.common.errors import ConfigError
from repro.common.units import GB, KB, MB


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`~repro.system.system.System`.

    Defaults reproduce the paper's Table I simulated configuration.
    """

    num_cpus: int = params.NUM_CPUS
    clock_ghz: float = params.CPU_CLOCK_GHZ
    l1_size: int = params.L1_SIZE
    l1_assoc: int = params.L1_ASSOC
    l2_size: int = params.L2_SIZE
    l2_assoc: int = params.L2_ASSOC
    dram_size: int = params.DRAM_SIZE
    dram_channels: int = params.DRAM_CHANNELS
    prefetch_enabled: bool = True

    # (MC)² parameters
    mcsquare_enabled: bool = True
    ctt_entries: int = params.CTT_ENTRIES
    bpq_entries: int = params.BPQ_ENTRIES
    copy_threshold: float = params.CTT_COPY_THRESHOLD
    parallel_frees: int = params.CTT_PARALLEL_FREES
    bounce_writeback: bool = True
    # §VI extension: pair (MC)² with a copy engine that starts resolving
    # entries in the background immediately after insertion, instead of
    # waiting for the fill threshold.
    eager_async_copies: bool = False

    # Graceful-degradation budgets (see repro.faults).  The None defaults
    # reproduce the paper exactly: MCLAZY retries a full CTT forever at a
    # flat interval, and overflowed source writes wait indefinitely for a
    # BPQ slot.  Finite values bound those waits: MCLAZY backs off
    # exponentially then degrades to an eager MC-side copy; a stalled
    # source write eagerly resolves its blocking copies and lands.
    ctt_retry_cycles: int = params.CTT_RETRY_CYCLES
    ctt_retry_limit: "int | None" = None
    bpq_overflow_timeout: "int | None" = None

    # Copy-engine backend (repro.copyengine).  ``copy_backend`` selects
    # the mechanism System.copy_backend() builds; the remaining fields
    # are per-backend parameters routed by each backend's
    # ``config_kwargs`` (software backends) or the MemoryController
    # constructor (in-DRAM backends).
    copy_backend: str = "mclazy"
    copy_min_lazy: int = 0                # mclazy: interposer threshold
    zio_min_elision: int = params.ZIO_MIN_ELISION_SIZE
    inmem_layout: str = "hash"            # rowclone: "hash" | "ideal"
    inmem_subarray_rows: int = params.ROWCLONE_SUBARRAY_ROWS

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsensical settings."""
        if self.num_cpus <= 0:
            raise ConfigError("need at least one CPU")
        if self.dram_channels <= 0:
            raise ConfigError("need at least one DRAM channel")
        if not 0.0 < self.copy_threshold <= 1.0:
            raise ConfigError("copy threshold must be in (0, 1]")
        if self.ctt_entries <= 0 or self.bpq_entries <= 0:
            raise ConfigError("CTT/BPQ sizes must be positive")
        if self.ctt_retry_cycles <= 0:
            raise ConfigError("CTT retry interval must be positive")
        if self.ctt_retry_limit is not None and self.ctt_retry_limit < 0:
            raise ConfigError("CTT retry limit must be >= 0 (or None)")
        if self.bpq_overflow_timeout is not None \
                and self.bpq_overflow_timeout <= 0:
            raise ConfigError("BPQ overflow timeout must be positive "
                              "(or None)")
        # Import here, not at module top: copyengine imports the sw
        # layer, which would cycle back through configs at import time.
        from repro.copyengine.registry import backend_names, known_backend
        if not known_backend(self.copy_backend):
            raise ConfigError(
                f"unknown copy_backend {self.copy_backend!r}; known "
                f"backends: {', '.join(backend_names())}")
        if self.copy_min_lazy < 0:
            raise ConfigError("copy_min_lazy must be >= 0")
        if self.zio_min_elision < params.ZIO_MIN_ELISION_SIZE:
            raise ConfigError(
                "zio_min_elision below one page is meaningless: zIO can "
                "only remap whole pages")
        if self.inmem_layout not in ("hash", "ideal"):
            raise ConfigError(
                f"inmem_layout must be 'hash' or 'ideal', "
                f"got {self.inmem_layout!r}")
        if self.inmem_subarray_rows <= 0:
            raise ConfigError("inmem_subarray_rows must be positive")

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """A copy of this config with fields replaced."""
        return replace(self, **kwargs)


#: The paper's Table I configuration.
TABLE1 = SystemConfig()

#: Baseline machine without the (MC)² extensions.
BASELINE = SystemConfig(mcsquare_enabled=False)


def small_system(**kwargs) -> SystemConfig:
    """A scaled-down config for fast unit tests (same mechanisms)."""
    defaults = dict(
        num_cpus=2,
        l1_size=16 * KB,
        l2_size=256 * KB,
        dram_size=64 * MB,
        dram_channels=2,
        ctt_entries=64,
        bpq_entries=4,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)
