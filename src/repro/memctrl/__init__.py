"""Baseline memory controller."""

from repro.memctrl.controller import MemoryController

__all__ = ["MemoryController"]
