"""Base memory controller.

Marshals cacheline READ/WRITE packets onto one DRAM channel.  Reads are
latency-critical: they traverse the controller, access the device, and fire
the packet continuation when data returns.  Writes are *posted*: the sender
is acknowledged after the controller's static latency while the actual
drain to DRAM happens in the background through the write pending queue
(WPQ).  Functional data is applied at arrival so that MC-observed order
defines memory contents, matching the paper's consistency argument (§III-E).

:class:`MemoryController` is the vanilla baseline; the (MC)² controller in
:mod:`repro.mcsquare.controller` subclasses it and overrides the read/write
hooks to add CTT and BPQ behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.common import params
from repro.common.errors import SimulationError
from repro.dram.address_map import AddressMap
from repro.dram.device import DramChannel
from repro.mem.backing_store import BackingStore
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.shard import rendezvous, shard_local
from repro.sim.stats import StatGroup


@shard_local
class MemoryController:
    """One memory controller driving one DRAM channel."""

    def __init__(
        self,
        sim: Simulator,
        channel_id: int,
        address_map: AddressMap,
        backing: BackingStore,
        stats: StatGroup,
        wpq_entries: int = params.MC_WPQ_ENTRIES,
        rpq_entries: int = params.MC_RPQ_ENTRIES,
        inmem_layout: str = "hash",
        inmem_subarray_rows: int = params.ROWCLONE_SUBARRAY_ROWS,
    ):
        self.sim = sim
        self.channel_id = channel_id
        self.address_map = address_map
        self.backing = backing
        self.stats = stats
        self.channel = DramChannel(stats.group("dram"))
        self.wpq_entries = wpq_entries
        self.rpq_entries = rpq_entries
        # In-DRAM copy placement model (repro.copyengine rowclone/mirror):
        # "hash" keeps the avalanche bank hash (row pairs almost never
        # share a subarray, so RowClone degrades to PSM); "ideal" models
        # RowClone's OS/allocator support placing copy pairs in the same
        # subarray, making FPM reachable.
        self.inmem_layout = inmem_layout
        self.inmem_subarray_rows = inmem_subarray_rows
        self._wpq: Deque[Packet] = deque()
        self._wpq_overflow: Deque[Packet] = deque()
        # addr -> count of buffered writes covering it (for forwarding).
        self._pending_write_counts: Dict[int, int] = {}
        self._wpq_draining = False
        self._rpq_occupancy = 0
        # Same-cycle DRAM arbitration: single-access requests issued
        # during a cycle accumulate here and are granted channel slots
        # in canonical key order by one rendezvous-phase event (see
        # dram_request); bank/bus slot assignment must not depend on
        # the order same-cycle callbacks happened to run.
        self._dram_pending: list = []
        self._dram_grant_armed = False
        # Optional repro.obs tracer (set by runtime.attach_tracer) and
        # this controller's trace track name.
        self._trace = None
        self._track = f"mc{channel_id}"

        self._reads = stats.counter("reads", "read packets serviced")
        self._writes = stats.counter("writes", "write packets accepted")
        self._write_drains = stats.counter("write_drains", "WPQ entries drained")
        self._wpq_rejects = stats.counter(
            "wpq_rejects", "writes refused because the WPQ was too full")
        self._inmem_copies = stats.counter(
            "inmem_copies", "in-DRAM copy packets serviced")
        self._read_latency = stats.distribution(
            "read_latency", "cycles from MC arrival to data return",
            keep_samples=False)

    # ----------------------------------------------------------- interface
    def receive(self, pkt: Packet) -> None:
        """Accept a packet from the interconnect at the current cycle."""
        pkt.issued_at = self.sim.now if pkt.issued_at is None else pkt.issued_at
        if pkt.ptype is PacketType.READ:
            self._handle_read(pkt)
        elif pkt.ptype is PacketType.WRITE:
            self._handle_write(pkt)
        else:
            self._handle_control(pkt)

    @property
    def wpq_occupancy(self) -> int:
        """Writes currently buffered awaiting drain."""
        return len(self._wpq)

    @property
    @rendezvous("wpq-probe")
    def wpq_fullness(self) -> float:
        """WPQ occupancy as a fraction of capacity."""
        return len(self._wpq) / self.wpq_entries

    # -------------------------------------------------------------- hooks
    def _handle_read(self, pkt: Packet) -> None:
        """Service a read: device access, then complete with data."""
        self._reads.inc()
        self._service_read_from_memory(pkt)

    def _handle_write(self, pkt: Packet) -> None:
        """Accept a posted write into the WPQ."""
        self._accept_write(pkt)

    def _handle_control(self, pkt: Packet) -> None:
        """Baseline controller ignores (MC)² control packets."""
        if pkt.ptype is PacketType.INMEM_COPY:
            self._handle_inmem_copy(pkt)
            return
        self.sim.schedule(1, lambda: pkt.complete(self.sim.now),
                          label="mc-control-ack")

    # ------------------------------------------------------ in-DRAM copy
    def _handle_inmem_copy(self, pkt: Packet) -> None:
        """Execute this channel's share of an in-DRAM copy descriptor.

        The interconnect broadcasts one child packet per controller;
        each controller copies only the destination lines its channel
        owns.  Functional data is applied at arrival (MC-observed order
        defines memory contents, same as posted writes); timing runs the
        row-copy jobs through the per-cycle DRAM arbiter so same-cycle
        grants stay in canonical order.
        """
        jobs = self._inmem_jobs(pkt)
        if not jobs:
            self.sim.schedule(1, lambda: pkt.complete(self.sim.now),
                              label="mc-inmem-ack")
            return
        self._inmem_copies.inc()
        if self._trace is not None:
            self._trace.instant("mc", self._track, "inmem-copy",
                                {"addr": hex(pkt.addr), "size": pkt.size,
                                 "jobs": len(jobs)})
        state = {"left": len(jobs), "done": 0}

        def _granted(done: int) -> None:
            state["left"] -= 1
            if done > state["done"]:
                state["done"] = done
            if state["left"] == 0:
                finish = state["done"] + params.MC_STATIC_LATENCY_CYCLES
                self.sim.schedule_at(finish,
                                     lambda: pkt.complete(self.sim.now),
                                     label="mc-inmem-done")

        for key, run_job in jobs:
            self.dram_request(run_job, key, _granted,
                              extra=params.MC_STATIC_LATENCY_CYCLES)

    def _inmem_jobs(self, pkt: Packet) -> list:
        """Group this channel's line pairs into row-copy jobs.

        Returns ``[(grant_key, job_callable), ...]`` where each callable
        runs one :meth:`DramChannel.row_copy` when granted.  A job is
        one (source row, destination row) pair; a *full* pair (every
        line of the destination row covered, sources all in one row —
        i.e. the copy offset is row-aligned) is eligible for FPM /
        mirroring, anything partial falls back to PSM's serial per-line
        transfer.
        """
        amap = self.address_map
        line_bytes = amap.row_bytes // amap.lines_per_row
        # job key -> [src_loc, dst_loc, first_dst_addr, lines]
        groups: Dict[tuple, list] = {}
        for off in range(0, pkt.size, line_bytes):
            dst_line = pkt.addr + off
            if not self.owns(dst_line):
                continue
            src_line = pkt.src_addr + off
            src_loc = amap.decode(src_line)
            if src_loc.channel != self.channel_id:
                raise SimulationError(
                    "INMEM_COPY pair crosses channels: the issuing "
                    f"backend must guarantee congruence (src {src_line:#x} "
                    f"on ch{src_loc.channel}, dst {dst_line:#x} on "
                    f"ch{self.channel_id})")
            dst_loc = amap.decode(dst_line)
            self.backing.copy(dst_line, src_line, line_bytes)
            key = (src_loc.bank, src_loc.row, dst_loc.bank, dst_loc.row)
            group = groups.get(key)
            if group is None:
                groups[key] = [src_loc, dst_loc, dst_line, 1]
            else:
                group[3] += 1
        jobs = []
        for src_loc, dst_loc, first_dst, lines in groups.values():
            mode = self._inmem_mode(pkt.copy_mode, src_loc, dst_loc, lines)
            jobs.append((
                (self.DRAM_RANK_MATERIALIZE, first_dst),
                lambda at, s=src_loc, d=dst_loc, m=mode, n=lines:
                    self.channel.row_copy(s, d, at, m, n),
            ))
        return jobs

    def _inmem_mode(self, requested, src_loc, dst_loc, lines: int) -> str:
        """Pick the DRAM mechanism for one row-pair job."""
        if lines < self.address_map.lines_per_row:
            return "psm"  # partial rows cannot be cloned wholesale
        if requested == "mirror":
            return "mirror"
        if self.inmem_layout == "ideal":
            return "fpm"
        same_subarray = (
            src_loc.bank == dst_loc.bank
            and src_loc.row // self.inmem_subarray_rows
            == dst_loc.row // self.inmem_subarray_rows)
        return "fpm" if same_subarray else "psm"

    # ---------------------------------------------------- DRAM arbitration
    # Canonical same-cycle grant order: reads first (latency-critical,
    # the standard read-priority policy), then bounce reads, lazy-copy
    # materializations, bounce writebacks, WPQ drains last.
    DRAM_RANK_READ = 0
    DRAM_RANK_BOUNCE = 1
    DRAM_RANK_MATERIALIZE = 2
    DRAM_RANK_BOUNCE_WB = 3
    DRAM_RANK_DRAIN = 4

    @rendezvous("dram-request")
    def dram_request(self, loc, key, on_grant, extra: int = 0) -> None:
        """Reserve one channel access through this cycle's arbiter.

        ``on_grant(done)`` is invoked *during the grant event* (same
        cycle, rendezvous phase) with the access's completion cycle;
        the caller schedules its own continuation.  ``key`` is the
        canonical grant order — a (rank, addr, ...) tuple of ints — so
        that same-cycle requests are granted identically however the
        tie-break ordered the requesting callbacks.  ``extra`` delays
        the device arrival (controller static latency, remote hops).
        """
        self._dram_pending.append((key, loc, extra, on_grant))
        if not self._dram_grant_armed:
            self._dram_grant_armed = True
            self.sim.schedule(0, self._grant_dram, label="dram-grant",
                              phase=2)

    @rendezvous("dram-grant")
    def _grant_dram(self) -> None:
        self._dram_grant_armed = False
        pending, self._dram_pending = self._dram_pending, []
        if len(pending) > 1:
            pending.sort(key=lambda req: req[0])
        now = self.sim.now
        for _key, loc, extra, on_grant in pending:
            # ``loc`` is either a decoded DramLocation for an ordinary
            # cacheline access, or (for in-DRAM copy jobs) a callable
            # that runs its own device operation at the granted cycle.
            if callable(loc):
                on_grant(loc(now + extra))
            else:
                on_grant(self.channel.access(loc, now + extra))

    # ---------------------------------------------------------- mechanics
    def _service_read_from_memory(self, pkt: Packet,
                                  extra_delay: int = 0) -> None:
        """Run ``pkt`` through the DRAM channel and schedule completion."""
        arrival = self.sim.now + params.MC_STATIC_LATENCY_CYCLES + extra_delay
        # Forward from the WPQ when a buffered write covers this line.
        if self._pending_write_counts.get(pkt.addr):
            pkt.data = self.backing.read_line(pkt.addr)
            pkt.poisoned = self.backing.line_poisoned(pkt.addr)
            done = arrival + 2  # WPQ CAM forward
            self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                                 label="mc-wpq-forward")
            self._read_latency.record(done - self.sim.now)
            return
        loc = self.address_map.decode(pkt.addr)

        def _granted(data_ready: int) -> None:
            done = data_ready + params.MC_STATIC_LATENCY_CYCLES
            pkt.data = self.backing.read_line(pkt.addr)
            pkt.poisoned = self.backing.line_poisoned(pkt.addr)
            self._read_latency.record(done - self.sim.now)
            self.sim.schedule_at(done, lambda: pkt.complete(self.sim.now),
                                 label="mc-read-done")

        self.dram_request(loc, (self.DRAM_RANK_READ, pkt.addr, pkt.requestor),
                          _granted,
                          extra=params.MC_STATIC_LATENCY_CYCLES + extra_delay)

    def _accept_write(self, pkt: Packet) -> None:
        """Post a write: apply data, ack the sender, queue the drain.

        Functional data is applied at arrival (MC-observed order defines
        memory contents); the *ack* is what back-pressure delays when the
        WPQ is full.
        """
        self._writes.inc()
        if pkt.data is not None:
            self.backing.write_line(pkt.addr, pkt.data)
            if pkt.poisoned:
                # A poisoned cacheline written back stays known-bad in
                # memory; only clean data clears the line's poison.
                self.backing.poison(pkt.addr)
        else:
            pkt.data = self.backing.read_line(pkt.addr)
            pkt.poisoned = self.backing.line_poisoned(pkt.addr)
        self._pending_write_counts[pkt.addr] = \
            self._pending_write_counts.get(pkt.addr, 0) + 1
        if len(self._wpq) < self.wpq_entries:
            self._wpq.append(pkt)
            ack_at = self.sim.now + params.MC_STATIC_LATENCY_CYCLES
            self.sim.schedule_at(ack_at,
                                 lambda: pkt.complete(self.sim.now),
                                 label="mc-write-ack")
        else:
            # Full: the write waits outside; its ack is deferred, which
            # back-pressures the sender.
            self._wpq_rejects.inc()
            self._wpq_overflow.append(pkt)
            if self._trace is not None:
                self._trace.instant("mc", self._track, "wpq-reject",
                                    {"addr": hex(pkt.addr),
                                     "wpq": len(self._wpq)})
        self._kick_wpq_drain()

    def _retire_write(self, pkt: Packet) -> None:
        """Bookkeeping when a buffered write leaves the WPQ."""
        count = self._pending_write_counts.get(pkt.addr, 1) - 1
        if count <= 0:
            self._pending_write_counts.pop(pkt.addr, None)
        else:
            self._pending_write_counts[pkt.addr] = count
        if self._wpq_overflow and len(self._wpq) < self.wpq_entries:
            promoted = self._wpq_overflow.popleft()
            self._wpq.append(promoted)
            promoted.complete(self.sim.now)

    # Write-drain hysteresis: start draining above the high watermark,
    # stop below the low one.  Batching writes keeps them from closing
    # the rows that in-flight reads are streaming out of (the standard
    # read-priority / write-drain-mode controller policy).
    WPQ_DRAIN_HIGH = 0.5
    WPQ_DRAIN_LOW = 0.25

    def _kick_wpq_drain(self) -> None:
        if self._wpq_draining:
            return
        if len(self._wpq) < max(1, int(self.wpq_entries
                                       * self.WPQ_DRAIN_HIGH)):
            return
        self._wpq_draining = True
        if self._trace is not None:
            self._trace.instant("mc", self._track, "wpq-drain-start",
                                {"wpq": len(self._wpq)})
        # Phase 1: the drain pump is a component arbiter — its
        # stop/continue decision samples WPQ occupancy, which must
        # reflect every same-cycle write arrival regardless of the
        # tie-break (MC2601).
        self.sim.schedule(1, self._drain_one_write, label="mc-wpq-drain",
                          phase=1)

    def _drain_one_write(self) -> None:
        low = int(self.wpq_entries * self.WPQ_DRAIN_LOW)
        if not self._wpq or (len(self._wpq) <= low
                             and not self._wpq_overflow):
            self._wpq_draining = False
            return
        pkt = self._wpq.popleft()
        self._retire_write(pkt)
        loc = self.address_map.decode(pkt.addr)
        self._write_drains.inc()
        self.dram_request(
            loc, (self.DRAM_RANK_DRAIN, pkt.addr),
            lambda done: self.sim.schedule_at(done, self._drain_one_write,
                                              label="mc-wpq-next", phase=1))

    def drain_wpq_fully(self) -> None:
        """Flush every buffered write (used when quiescing the system)."""
        while self._wpq or self._wpq_overflow:
            pkt = self._wpq.popleft() if self._wpq \
                else self._wpq_overflow.popleft()
            self._retire_write(pkt)
            if pkt.completed_at is None:
                pkt.complete(self.sim.now)
            loc = self.address_map.decode(pkt.addr)
            self.channel.access(loc, self.sim.now)
            self._write_drains.inc()

    # ------------------------------------------------------------ helpers
    def owns(self, addr: int) -> bool:
        """True when this controller's channel owns ``addr``."""
        return self.address_map.channel_of(addr) == self.channel_id
