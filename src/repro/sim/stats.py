"""Statistics registry.

Components register named scalar counters, distributions, and formulas on a
shared :class:`StatGroup` tree.  The analysis layer reads these to build the
paper's tables and figures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A monotonically accumulating scalar statistic."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = ""):
        self.name = name
        self.desc = desc
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Distribution:
    """A streaming distribution: count/sum/min/max plus retained samples."""

    __slots__ = ("name", "desc", "count", "total", "min", "max", "samples",
                 "keep_samples")

    def __init__(self, name: str, desc: str = "", keep_samples: bool = True):
        self.name = name
        self.desc = desc
        self.keep_samples = keep_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def reset(self) -> None:
        """Discard all observations."""
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Distribution({self.name}: n={self.count}, mean={self.mean:.1f})"


class StatGroup:
    """A named collection of statistics, nestable into a tree."""

    def __init__(self, name: str):
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.distributions: Dict[str, Distribution] = {}
        self.children: Dict[str, "StatGroup"] = {}

    def counter(self, name: str, desc: str = "") -> Counter:
        """Get or create a counter named ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name, desc)
        return self.counters[name]

    def distribution(self, name: str, desc: str = "",
                     keep_samples: bool = True) -> Distribution:
        """Get or create a distribution named ``name``."""
        if name not in self.distributions:
            self.distributions[name] = Distribution(name, desc, keep_samples)
        return self.distributions[name]

    def group(self, name: str) -> "StatGroup":
        """Get or create a child group."""
        if name not in self.children:
            self.children[name] = StatGroup(name)
        return self.children[name]

    def reset(self) -> None:
        """Reset every stat in this group and all children."""
        for c in self.counters.values():
            c.reset()
        for d in self.distributions.values():
            d.reset()
        for g in self.children.values():
            g.reset()

    def get(self, path: str) -> float:
        """Read a counter value by dotted path, e.g. ``'l1.hits'``."""
        group: StatGroup = self
        parts = path.split(".")
        for part in parts[:-1]:
            group = group.children[part]
        return group.counters[parts[-1]].value

    def flatten(self, prefix: str = "") -> Dict[str, float]:
        """All counter values keyed by dotted path."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[prefix + name] = c.value
        for name, g in self.children.items():
            out.update(g.flatten(prefix + name + "."))
        return out

    def report(self, indent: int = 0) -> str:
        """Human-readable multi-line dump of the stat tree."""
        pad = "  " * indent
        lines = [f"{pad}[{self.name}]"]
        for c in sorted(self.counters.values(), key=lambda x: x.name):
            lines.append(f"{pad}  {c.name:<32} {c.value:>14.0f}  {c.desc}")
        for d in sorted(self.distributions.values(), key=lambda x: x.name):
            lines.append(
                f"{pad}  {d.name:<32} n={d.count} mean={d.mean:.1f} "
                f"min={d.min if d.count else 0:.0f} max={d.max if d.count else 0:.0f}"
            )
        for g in sorted(self.children.values(), key=lambda x: x.name):
            lines.append(g.report(indent + 1))
        return "\n".join(lines)
