"""Statistics registry.

Components register named scalar counters, distributions, and formulas on a
shared :class:`StatGroup` tree.  The analysis layer reads these to build the
paper's tables and figures.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Callable, Dict, List, Optional

from repro.sim.shard import shared

#: Reservoir cap for :class:`Distribution` retained samples.  Quantile
#: estimates over more observations than this use seeded reservoir
#: sampling (Algorithm R) so memory stays bounded and results stay
#: deterministic for a given stat name and observation sequence.
DEFAULT_MAX_SAMPLES = 4096

#: Optional observer invoked with every :class:`StatGroup` at
#: construction time.  Only entry-point infrastructure installs this —
#: the tie-order sanitizer (:mod:`repro.analysis.simsan`) uses it to
#: find the stat trees a sim point built so it can compare them across
#: event-order perturbations.  ``None`` (the default) costs one branch.
_construction_hook: Optional[Callable[["StatGroup"], None]] = None


def set_construction_hook(
        hook: Optional[Callable[["StatGroup"], None]]) -> None:
    """Install (or with ``None`` remove) the StatGroup creation observer."""
    global _construction_hook
    _construction_hook = hook


def construction_hook() -> Optional[Callable[["StatGroup"], None]]:
    """The currently installed creation observer (or ``None``)."""
    return _construction_hook


@shared
class Counter:
    """A monotonically accumulating scalar statistic."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = ""):
        self.name = name
        self.desc = desc
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


@shared
class Distribution:
    """A streaming distribution: count/sum/min/max plus retained samples.

    Retained samples are capped at ``max_samples`` via reservoir sampling
    (Algorithm R) seeded from the stat name, so long runs cannot grow
    memory without bound while quantile estimates stay deterministic —
    the same observation stream always keeps the same reservoir.
    """

    __slots__ = ("name", "desc", "count", "total", "min", "max", "samples",
                 "keep_samples", "max_samples", "_rng")

    def __init__(self, name: str, desc: str = "", keep_samples: bool = True,
                 max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.desc = desc
        self.keep_samples = keep_samples
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: List[float] = []
        # Created lazily on first reservoir replacement; seeded from the
        # stat name (crc32, not hash() — PYTHONHASHSEED independent).
        self._rng: Optional[random.Random] = None

    def record(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if not self.keep_samples:
            return
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
            return
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(zlib.crc32(self.name.encode("utf-8")))
        slot = rng.randrange(self.count)
        if slot < self.max_samples:
            self.samples[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over retained samples."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def reset(self) -> None:
        """Discard all observations."""
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples = []
        self._rng = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Distribution({self.name}: n={self.count}, mean={self.mean:.1f})"


@shared
class Formula:
    """A derived statistic computed on read from other stats.

    ``fn`` is any zero-argument callable; reading :attr:`value` evaluates
    it.  Formulas are read-only — they never accumulate state of their
    own, so serialization freezes the value at export time.
    """

    __slots__ = ("name", "desc", "fn")

    def __init__(self, name: str, desc: str, fn: Callable[[], float]):
        self.name = name
        self.desc = desc
        self.fn = fn

    @property
    def value(self) -> float:
        """Evaluate the formula now."""
        return float(self.fn())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Formula({self.name}={self.value})"


@shared
class StatGroup:
    """A named collection of statistics, nestable into a tree."""

    def __init__(self, name: str):
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.distributions: Dict[str, Distribution] = {}
        self.formulas: Dict[str, Formula] = {}
        self.children: Dict[str, "StatGroup"] = {}
        if _construction_hook is not None:
            _construction_hook(self)

    def counter(self, name: str, desc: str = "") -> Counter:
        """Get or create a counter named ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name, desc)
        return self.counters[name]

    def distribution(self, name: str, desc: str = "",
                     keep_samples: bool = True) -> Distribution:
        """Get or create a distribution named ``name``."""
        if name not in self.distributions:
            self.distributions[name] = Distribution(name, desc, keep_samples)
        return self.distributions[name]

    def formula(self, name: str, desc: str, fn: Callable[[], float]) -> Formula:
        """Register (or replace) a derived statistic named ``name``."""
        f = Formula(name, desc, fn)
        self.formulas[name] = f
        return f

    def group(self, name: str) -> "StatGroup":
        """Get or create a child group."""
        if name not in self.children:
            self.children[name] = StatGroup(name)
        return self.children[name]

    def reset(self) -> None:
        """Reset every stat in this group and all children."""
        for c in self.counters.values():
            c.reset()
        for d in self.distributions.values():
            d.reset()
        for g in self.children.values():
            g.reset()

    def get(self, path: str) -> float:
        """Read a counter value by dotted path, e.g. ``'l1.hits'``."""
        group: StatGroup = self
        parts = path.split(".")
        for part in parts[:-1]:
            group = group.children[part]
        return group.counters[parts[-1]].value

    def flatten(self, prefix: str = "") -> Dict[str, float]:
        """All counter values keyed by dotted path."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[prefix + name] = c.value
        for name, g in self.children.items():
            out.update(g.flatten(prefix + name + "."))
        return out

    def to_dict(self, include_samples: bool = True) -> Dict[str, object]:
        """JSON-safe snapshot of the whole subtree.

        The canonical serialization shared by the obs sampler, the trace
        exporters, and the perf cache.  ``min``/``max`` of an empty
        distribution encode as ``None`` (JSON has no infinities);
        formulas freeze their value at call time.  Round-trips through
        :meth:`from_dict` when ``include_samples`` is on.
        """
        counters = {
            name: {"value": c.value, "desc": c.desc}
            for name, c in sorted(self.counters.items())
        }
        distributions: Dict[str, object] = {}
        for name, d in sorted(self.distributions.items()):
            entry: Dict[str, object] = {
                "count": d.count,
                "total": d.total,
                "min": d.min if d.count else None,
                "max": d.max if d.count else None,
                "mean": d.mean,
                "desc": d.desc,
            }
            if include_samples:
                entry["samples"] = list(d.samples)
            distributions[name] = entry
        formulas = {
            name: {"value": f.value, "desc": f.desc}
            for name, f in sorted(self.formulas.items())
        }
        return {
            "name": self.name,
            "counters": counters,
            "distributions": distributions,
            "formulas": formulas,
            "children": {
                name: g.to_dict(include_samples)
                for name, g in sorted(self.children.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StatGroup":
        """Rebuild a stat tree from a :meth:`to_dict` snapshot.

        Formulas come back as frozen constants (the defining callables
        are not serializable); everything else restores exactly.
        """
        group = cls(str(data.get("name", "stats")))
        for name, entry in data.get("counters", {}).items():
            c = group.counter(name, entry.get("desc", ""))
            c.value = entry["value"]
        for name, entry in data.get("distributions", {}).items():
            d = group.distribution(name, entry.get("desc", ""))
            d.count = entry["count"]
            d.total = entry["total"]
            d.min = entry["min"] if entry.get("min") is not None else math.inf
            d.max = entry["max"] if entry.get("max") is not None else -math.inf
            d.samples = list(entry.get("samples", []))
        for name, entry in data.get("formulas", {}).items():
            group.formula(name, entry.get("desc", ""),
                          lambda frozen=entry["value"]: frozen)
        for name, child in data.get("children", {}).items():
            group.children[name] = cls.from_dict(child)
        return group

    def report(self, indent: int = 0) -> str:
        """Human-readable multi-line dump of the stat tree."""
        pad = "  " * indent
        lines = [f"{pad}[{self.name}]"]
        for c in sorted(self.counters.values(), key=lambda x: x.name):
            lines.append(f"{pad}  {c.name:<32} {c.value:>14.0f}  {c.desc}")
        for d in sorted(self.distributions.values(), key=lambda x: x.name):
            lines.append(
                f"{pad}  {d.name:<32} n={d.count} mean={d.mean:.1f} "
                f"min={d.min if d.count else 0:.0f} max={d.max if d.count else 0:.0f}"
            )
        for f in sorted(self.formulas.values(), key=lambda x: x.name):
            lines.append(f"{pad}  {f.name:<32} {f.value:>14.4f}  {f.desc}")
        for g in sorted(self.children.values(), key=lambda x: x.name):
            lines.append(g.report(indent + 1))
        return "\n".join(lines)
