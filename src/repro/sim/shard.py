"""Shard-ownership annotations for the per-channel engine split.

The roadmap's sharded-engine rewrite partitions the simulation by DRAM
channel: each memory controller (and the state it owns) runs in its own
event loop, and anything two shards touch in the same cycle must go
through a deterministic rendezvous.  This module is the *declaration*
side of that contract — component classes state which shard owns their
instances, and methods that other shards may legitimately call declare
themselves as rendezvous ports:

* ``@shard_local`` — instances belong to exactly one shard.  The
  default domain is ``"channel"`` with the owner identified by the
  instance's ``channel_id`` attribute (or, for owned sub-objects like
  the BPQ and the DRAM device model, inherited from the constructing
  component).  ``@shard_local(domain="cpu")`` marks the core/cache
  complex, which the split runs as its own shard.
* ``@shared`` — instances are deliberately visible to every shard: the
  engine, the interconnect fabric, the replicated CTT, stats, the
  backing store, and pure helpers like the address map.
* ``@rendezvous("name")`` — a method other shards may call.  These are
  the exact synchronization points the sharded engine must turn into
  deterministic cross-loop messages; everything else on a
  ``@shard_local`` class is private to its owner.

The decorators are **zero-cost declarations**: they stamp a class (or
function) attribute and return their target unchanged — no wrappers, no
metaclasses, no per-instance state — so annotating a class cannot
change simulation behavior (the golden trace stays byte-identical).

Two enforcement layers consume the declarations:

* statically, the MC27xx ownership rules and ``mc2-analyze
  --ownership-report`` (:mod:`repro.analysis.ownership`) check the
  declared partition against an interprocedural ownership inference on
  the call graph;
* dynamically, ``REPRO_SIMSAN=own`` (:mod:`repro.analysis.simsan`)
  stamps instances with their owner at construction and audits
  attribute mutations against the declared ports via the registries
  below.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TypeVar

_T = TypeVar("_T")

#: Class attribute carrying the declared role:
#: ``("local", domain, key)`` or ``("shared", None, None)``.
ROLE_ATTR = "__shard_role__"

#: Function attribute carrying a declared rendezvous-port name.
PORT_ATTR = "__shard_port__"

#: Instance attribute the dynamic audit stamps owners into
#: (``(domain, ident)``); never set when the audit is off.
OWNER_SLOT = "_shard_owner_"

DOMAIN_CHANNEL = "channel"
DOMAIN_CPU = "cpu"

#: Classes declared ``@shard_local``, in declaration (import) order.
LOCAL_CLASSES: List[type] = []

#: Classes declared ``@shared``.
SHARED_CLASSES: List[type] = []

#: Code objects of declared rendezvous ports -> port name (the dynamic
#: audit's frame-walk allowlist).
RENDEZVOUS_CODES: Dict[Any, str] = {}


def shard_local(cls: Optional[type] = None, *,
                key: str = "channel_id",
                domain: str = DOMAIN_CHANNEL) -> Any:
    """Declare a class's instances as owned by exactly one shard.

    ``key`` names the instance attribute identifying the owner within
    ``domain`` (ignored when the instance lacks it — owned sub-objects
    inherit their owner from the constructing component).  Usable bare
    (``@shard_local``) or parameterized (``@shard_local(domain="cpu")``).
    """
    def mark(target: type) -> type:
        setattr(target, ROLE_ATTR, ("local", domain, key))
        LOCAL_CLASSES.append(target)
        return target
    if cls is None:
        return mark
    return mark(cls)


def shared(cls: type) -> type:
    """Declare a class's instances as visible to every shard."""
    setattr(cls, ROLE_ATTR, ("shared", None, None))
    SHARED_CLASSES.append(cls)
    return cls


def rendezvous(name: str) -> Callable[[_T], _T]:
    """Declare a method as a cross-shard port named ``name``.

    Ports are the only members of a ``@shard_local`` class that code
    running on another shard may touch; the sharded engine will turn
    each one into a deterministic cross-loop message.  Stacks under
    ``@property`` for probe ports (``wpq_fullness``).
    """
    def mark(fn: _T) -> _T:
        setattr(fn, PORT_ATTR, name)
        code = getattr(fn, "__code__", None)
        if code is not None:
            # Import-time-only registration: decorators run when the
            # declaring module is first imported, never on a sim path,
            # so forked workers and cached sim points all see the same
            # finished registry.
            RENDEZVOUS_CODES[code] = name  # noqa: MC2401, MC2501
        return fn
    return mark


def role_of(cls: type) -> Optional[tuple]:
    """The declared role of ``cls`` (inherited through bases), or None."""
    return getattr(cls, ROLE_ATTR, None)


def port_name(fn: Any) -> Optional[str]:
    """The declared rendezvous-port name of ``fn``, or None."""
    fn = getattr(fn, "__func__", fn)        # unwrap bound methods
    fn = getattr(fn, "fget", fn)            # unwrap property probes
    return getattr(fn, PORT_ATTR, None)
