"""Discrete-event simulation core: engine, packets, statistics."""

from repro.sim.engine import Event, Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.stats import Counter, Distribution, StatGroup

__all__ = ["Simulator", "Event", "Packet", "PacketType", "StatGroup",
           "Counter", "Distribution"]
