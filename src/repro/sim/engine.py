"""Discrete-event simulation engine.

The whole memory system is simulated on a single logical clock measured in
CPU cycles.  Components schedule callbacks on the :class:`Simulator`; the
engine pops events in timestamp order (FIFO among equal timestamps) and
invokes them.  This is deliberately minimal — deterministic, allocation
light, and easy to reason about in tests.

Hot-path notes
--------------

The heap holds ``(when, key, event)`` tuples rather than bare
:class:`Event` objects: tuple comparison runs entirely in C, where
object comparison would call :meth:`Event.__lt__` once per sift step —
the single largest engine overhead at paper-exhibit scale.  By default
``key`` is the insertion sequence number (unique, so the third element
is never compared) and equal-timestamp events fire in FIFO order.  A
*tie-break hook* — installed per instance or as the process default via
:func:`set_default_tie_break` — maps the sequence number to a different
key, permuting the pop order of equal-``when`` events while leaving the
timestamp order untouched.  No simulation result may depend on that
order; the hook exists so the tie-order sanitizer
(:mod:`repro.analysis.simsan`, ``REPRO_TIE_ORDER``) can *prove* it by
running the same config under several permutations.  When two keys
collide, ``Event.__lt__`` restores the deterministic (when, seq) order.

Same-cycle *phases* are the one ordering the tie-break never touches:
an event scheduled with ``phase=p`` fires after every same-cycle event
of a lower phase under any tie-break.  The convention is: phase 0 for
ordinary component events (completions, deliveries, timers), phase 1
for *component arbiters* that must observe every same-cycle phase-0
state change before deciding (the core's issue pump, store-order retry
polls), phase 2 for *shared rendezvous* that must observe every
same-cycle request including those issued by phase-1 arbiters (the
interconnect's grant arbitration, any future cross-shard rendezvous).
Ordinary sim code never passes ``phase``.  The phase is folded into the integer heap key
(``phase * 2**40 + key``), so the hot path still compares plain ints; a
tie-break hook must therefore return values of magnitude below 2**40.

``run()`` dispatches to one of two loops.  The fast loop assumes no
watchdog, no profiler, and no tracer, and keeps everything it touches in
locals; the observed loop pays for
:meth:`~repro.faults.watchdog.Watchdog.observe`, per-label cost
accounting, and/or the per-event trace hook.  The split means a watchdog attached
*while* ``run()`` is executing (from inside a callback) takes effect on
the next ``run()``/``step()`` call, not mid-drain; every existing caller
attaches before running.

Cancelled events stay in the heap until popped or compacted.  The engine
counts them (`pending` is O(1)) and compacts in place once more than half
the queue is dead, so pathological schedule/cancel churn cannot grow the
heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import LivelockError, SimulationError

Callback = Callable[[], None]

#: Maps an event's insertion sequence number to its heap tie-break key.
TieBreak = Callable[[int], int]

#: Queues below this size are never compacted: a handful of dead events
#: is cheaper to pop through than to rebuild around.
_COMPACT_MIN_QUEUE = 64

#: Heap-key offset per same-cycle phase.  Tie-break hooks must return
#: keys with magnitude below this so phases stay totally ordered.
_PHASE_STRIDE = 1 << 40

#: Process-default tie-break adopted by every Simulator constructed
#: afterwards.  None means native FIFO (key == seq).  Only entry-point
#: infrastructure (the perf runner, simsan, tests) installs this —
#: ambient sim code must never depend on, or even look at, tie order.
_DEFAULT_TIE_BREAK: Optional[TieBreak] = None


def set_default_tie_break(key: Optional[TieBreak]) -> None:
    """Install ``key`` as the tie-break for new :class:`Simulator`\\ s.

    ``None`` restores the native FIFO order.  Existing simulators are
    unaffected — use :meth:`Simulator.set_tie_break` to re-key one.
    """
    global _DEFAULT_TIE_BREAK
    _DEFAULT_TIE_BREAK = key


def default_tie_break() -> Optional[TieBreak]:
    """The currently installed process-default tie-break (or None)."""
    return _DEFAULT_TIE_BREAK


#: Process-default event trace hook adopted by every Simulator
#: constructed afterwards (see :meth:`Simulator.enable_tracing`).  The
#: tie-order sanitizer installs this to capture the (cycle, label)
#: event stream of simulators built *inside* a sweep point, where it
#: has no handle on the instance.  None keeps the fast run() loop.
_DEFAULT_TRACE_HOOK: Optional[Callable[[str, int], None]] = None


def set_default_trace_hook(
        hook: Optional[Callable[[str, int], None]]) -> None:
    """Install ``hook`` as the trace hook for new :class:`Simulator`\\ s.

    ``None`` restores untraced construction.  Existing simulators are
    unaffected — use :meth:`Simulator.enable_tracing` on an instance.
    """
    global _DEFAULT_TRACE_HOOK
    _DEFAULT_TRACE_HOOK = hook


def default_trace_hook() -> Optional[Callable[[str, int], None]]:
    """The currently installed process-default trace hook (or None)."""
    return _DEFAULT_TRACE_HOOK


class Event:
    """A scheduled callback.  Cancellable; compare by (when, phase, seq)."""

    __slots__ = ("when", "seq", "callback", "cancelled", "label", "phase",
                 "_sim")

    def __init__(self, when: int, seq: int, callback: Callback, label: str = "",
                 phase: int = 0):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label
        self.phase = phase
        # Owning simulator while the event sits in its queue (cleared on
        # pop) so cancel() can keep the live/cancelled counters exact
        # even when called after the event already fired.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return ((self.when, self.phase, self.seq)
                < (other.when, other.phase, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(when={self.when}, label={self.label!r}, {state})"


class Simulator:
    """Priority-queue event loop with a cycle-granularity clock."""

    def __init__(self, tie_break: Optional[TieBreak] = None) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = 0
        # Equal-timestamp pop order: None keys the heap by insertion
        # sequence (FIFO); a hook permutes it (see set_default_tie_break).
        self._tie_break: Optional[TieBreak] = (
            tie_break if tie_break is not None else _DEFAULT_TIE_BREAK)
        self.now: int = 0
        self._events_fired = 0
        # Cancelled events still sitting in the heap; pending is
        # len(_queue) - _cancelled, maintained on schedule/cancel/pop.
        self._cancelled = 0
        # Optional progress monitor (see repro.faults.watchdog.Watchdog):
        # observes every fired event and raises LivelockError with a
        # post-mortem when simulated time stops advancing.
        self.watchdog = None
        # Optional host-side cost profiler (see repro.perf.profile):
        # ``_profile_clock`` returns float seconds, ``_label_costs`` maps
        # label -> [count, total_s, min_s, max_s].  Never enabled by the
        # engine itself, so default behaviour stays wall-clock free.
        self._profile_clock: Optional[Callable[[], float]] = None
        self._label_costs: Optional[Dict[str, List[float]]] = None
        # Optional event tracer (see repro.obs.tracer.Tracer): called as
        # hook(label, now) after every fired event.  When None, run()
        # takes the fast loop and the hot path pays nothing.
        self._trace_hook: Optional[Callable[[str, int], None]] = \
            _DEFAULT_TRACE_HOOK

    # ------------------------------------------------------------ schedule
    def schedule(self, delay: int, callback: Callback, label: str = "",
                 phase: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``phase`` orders same-cycle dispatch across tie-breaks: a
        ``phase=1`` event fires after every same-cycle ``phase=0``
        event no matter which tie-break is installed.  Ordinary sim
        code never passes it (see the module docstring).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        when = self.now + delay
        event = Event(when, seq, callback, label, phase)
        event._sim = self
        tie = self._tie_break
        key = seq if tie is None else tie(seq)
        if phase:
            key += phase * _PHASE_STRIDE
        heapq.heappush(self._queue, (when, key, event))
        return event

    def schedule_at(self, when: int, callback: Callback, label: str = "",
                    phase: int = 0) -> Event:
        """Schedule ``callback`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when}, now is {self.now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, callback, label, phase)
        event._sim = self
        tie = self._tie_break
        key = seq if tie is None else tie(seq)
        if phase:
            key += phase * _PHASE_STRIDE
        heapq.heappush(self._queue, (when, key, event))
        return event

    def set_tie_break(self, key: Optional[TieBreak]) -> None:
        """Re-key equal-timestamp ordering for this simulator.

        Applies to queued events too: the pending heap is rebuilt with
        the new keys, so a mid-run switch reorders any not-yet-fired
        ties as well.  ``None`` restores FIFO (key == seq).
        """
        self._tie_break = key
        queue = self._queue
        if queue:
            queue[:] = [
                (when,
                 (event.seq if key is None else key(event.seq))
                 + event.phase * _PHASE_STRIDE,
                 event)
                for when, _key, event in queue]
            heapq.heapify(queue)

    # ----------------------------------------------------------- cancelled
    def _note_cancel(self) -> None:
        """Account one freshly-cancelled queued event; maybe compact."""
        self._cancelled += 1
        queue = self._queue
        if (len(queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled * 2 > len(queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event from the heap, in place.

        In place (slice assignment, not rebinding) so that a ``run()``
        frame holding a local reference to the queue keeps seeing the
        live list even when a callback triggers compaction mid-drain.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled = 0

    # ----------------------------------------------------------------- run
    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> int:
        """Drain the event queue.

        Runs until the queue is empty, or the clock would pass ``until``
        (events at exactly ``until`` still fire).  Returns the final clock.
        """
        if (self.watchdog is not None or self._profile_clock is not None
                or self._trace_hook is not None):
            return self._run_observed(until, max_events)

        # Fast loop: hot names bound locally, no watchdog or profiler
        # branches, events_fired flushed once on the way out.
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                when, _seq, event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                if until is not None and when > until:
                    self.now = until
                    return until
                pop(queue)
                if when < self.now:
                    raise SimulationError("event queue went backwards in time")
                event._sim = None
                self.now = when
                event.callback()
                fired += 1
                if fired >= max_events and queue:
                    self._raise_livelock(max_events)
        finally:
            self._events_fired += fired
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_observed(self, until: Optional[int], max_events: int) -> int:
        """The watched/profiled drain loop (see :meth:`run`)."""
        queue = self._queue
        clock = self._profile_clock
        costs = self._label_costs
        fired = 0
        while queue:
            when, _seq, event = queue[0]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(queue)
            if when < self.now:
                raise SimulationError("event queue went backwards in time")
            event._sim = None
            self.now = when
            if clock is not None:
                start = clock()
                event.callback()
                elapsed = clock() - start
                bucket = costs.get(event.label)
                if bucket is None:
                    costs[event.label] = [1, elapsed, elapsed, elapsed]
                else:
                    bucket[0] += 1
                    bucket[1] += elapsed
                    if elapsed < bucket[2]:
                        bucket[2] = elapsed
                    if elapsed > bucket[3]:
                        bucket[3] = elapsed
            else:
                event.callback()
            fired += 1
            self._events_fired += 1
            if self.watchdog is not None:
                self.watchdog.observe(event.label, self.now)
            if self._trace_hook is not None:
                self._trace_hook(event.label, self.now)
            if fired >= max_events and queue:
                self._raise_livelock(max_events)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _raise_livelock(self, max_events: int) -> None:
        message = f"exceeded {max_events} events; likely a livelock"
        post_mortem = ""
        if self.watchdog is not None:
            post_mortem = self.watchdog.post_mortem(
                f"event budget of {max_events} exhausted")
        raise LivelockError(message, post_mortem=post_mortem)

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False when idle."""
        while self._queue:
            when, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            if when < self.now:
                raise SimulationError("event queue went backwards in time")
            event._sim = None
            self.now = when
            event.callback()
            self._events_fired += 1
            if self._trace_hook is not None:
                self._trace_hook(event.label, self.now)
            return True
        return False

    # ----------------------------------------------------------- profiling
    def enable_profiling(self, clock: Callable[[], float]) -> None:
        """Record per-label callback costs using ``clock`` (host seconds).

        The engine never reads a clock on its own: the caller supplies
        one (see :mod:`repro.perf.profile`), keeping the default
        simulation path free of any wall-clock dependence.
        """
        self._profile_clock = clock
        if self._label_costs is None:
            self._label_costs = {}

    def disable_profiling(self) -> None:
        """Stop recording callback costs (retains collected data)."""
        self._profile_clock = None

    # ------------------------------------------------------------- tracing
    def enable_tracing(self, hook: Callable[[str, int], None]) -> None:
        """Invoke ``hook(label, now)`` after every fired event.

        Like the watchdog/profiler, attaching mid-``run()`` takes effect
        on the next ``run()``/``step()`` call.  The hook must not
        schedule events — it observes the simulation, it is not part of
        it (see :mod:`repro.obs`).
        """
        self._trace_hook = hook

    def disable_tracing(self) -> None:
        """Detach the event trace hook; run() returns to the fast loop."""
        self._trace_hook = None

    def label_costs(self) -> Dict[str, Dict[str, float]]:
        """Collected per-label costs: count/total/min/max seconds."""
        costs = self._label_costs or {}
        return {
            (label or "<unlabelled>"): {
                "count": bucket[0],
                "total_s": bucket[1],
                "min_s": bucket[2],
                "max_s": bucket[3],
            }
            for label, bucket in sorted(costs.items())
        }

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    def queue_labels(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Histogram of pending-event labels, most frequent first.

        The watchdog post-mortem uses this to answer "what is the queue
        full of?" — a livelock usually shows one label dominating.
        """
        counts: Dict[str, int] = {}
        for _when, _seq, event in self._queue:
            if not event.cancelled:
                label = event.label or "<unlabelled>"
                counts[label] = counts.get(label, 0) + 1
        # Tie-break equal counts by label so the histogram is a pure
        # function of the queue contents, not of insertion order.
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return dict(ordered)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending})"
