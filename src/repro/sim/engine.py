"""Discrete-event simulation engine.

The whole memory system is simulated on a single logical clock measured in
CPU cycles.  Components schedule callbacks on the :class:`Simulator`; the
engine fires events in timestamp order (FIFO among equal timestamps) and
invokes them.  This is deliberately minimal — deterministic, allocation
light, and easy to reason about in tests.

Calendar queue
--------------

The scheduler is a *calendar queue* sized to the simulator's bounded
latency horizon rather than a binary heap: a ring of ``day_length``
per-cycle slots plus a small heap-backed *far list* for the rare
event scheduled a full rotation or more ahead (watchdog timers, BPQ
overflow timeouts, OS costs such as fork/page-fault latencies).

* ``schedule(delay < day_length)`` is an O(1) list append into
  ``ring[when & mask]``.  Because the drain pointer empties each slot
  before advancing, and every near event lands strictly ahead of it
  within one rotation, a slot only ever holds events for a single
  future cycle — no per-event timestamp checks are needed on the ring.
  Slot lists are emptied with ``clear()`` and reused, so the steady
  state allocates nothing but the events themselves.
* ``schedule(delay >= day_length)`` pushes ``(when, key, event)`` onto
  the far heap (the PR 3 tuple layout, compared entirely in C).  When
  the drain reaches ``far[0]``'s cycle the events are *promoted* into
  that cycle's slot and the slot re-sorted by sequence number, so far
  events interleave with near events in exact FIFO order.
* ``day_length`` defaults to the smallest power of two covering twice
  the worst common component round trip from the latency table
  (:mod:`repro.common.params`): DRAM row conflict + two controller
  traversals + two interconnect hops + a CTT broadcast + a burst train.
  Every latency the components schedule per-access falls inside it;
  only OS-scale costs overflow to the far list.

Batched same-cycle dispatch
---------------------------

``run()`` advances cycle by cycle and drains each cycle's slot as one
tight cursor loop over the plain list — one Python-level iteration per
event, no heap sift, no key tuple.  Same-cycle *phases* order dispatch
within the slot: phase 0 for ordinary component events (completions,
deliveries, timers), phase 1 for *component arbiters* that must observe
every same-cycle phase-0 state change before deciding (the core's
issue pump, store-order retry polls), phase 2 for *shared rendezvous*
that must observe every same-cycle request including those issued by
phase-1 arbiters (the interconnect's grant arbitration).  Ordinary sim
code never passes ``phase``.  The slot is stable-sorted by phase once
at the start of the cycle (appends within a phase are already in
sequence order, so the stable sort *is* the full dispatch order); a
one-element slot skips the sort entirely.

A *tie-break hook* — installed per instance or as the process default
via :func:`set_default_tie_break` — permutes the dispatch order of
equal-(cycle, phase) events: the slot is sorted by
``(phase, tie(seq), seq)`` before dispatch, a cheaper and more direct
implementation of the PR 7 contract than re-keying a heap.  ``None``
(the default) keeps native FIFO order.  No simulation result may
depend on tie order; the hook exists so the tie-order sanitizer
(:mod:`repro.analysis.simsan`, ``REPRO_TIE_ORDER``) can *prove* it by
running the same config under several permutations.  Far-list keys
still fold the phase in as ``phase * 2**40 + tie(seq)``, so a hook
must return values of magnitude below 2**40.

A callback scheduling a *same-cycle* event appends it to the very list
being drained, and the cursor picks it up in place — the common case
(an arbiter scheduled at a phase no lower than anything still pending)
costs nothing.  Only when the new event must fire *before* something
already pending — a phase below ``_drain_maxp``, or any same-cycle
schedule under a tie-break hook that may sort it earlier — does
``schedule()`` raise a preempt flag, and the drain re-sorts its
unconsumed tail in place, reproducing the old heap's global-min
semantics exactly.

``run()`` dispatches to one of two loops.  The fast loop assumes no
watchdog, no profiler, and no tracer, and keeps everything it touches
in locals; the observed loop pays for
:meth:`~repro.faults.watchdog.Watchdog.observe`, per-label cost
accounting, and/or the per-event trace hook.  The split means a
watchdog attached *while* ``run()`` is executing (from inside a
callback) takes effect on the next ``run()``/``step()`` call, not
mid-drain; every existing caller attaches before running.  ``run()``
is not re-entrant — no callback calls ``sim.run()`` (the system layer
owns the loop).

Cancellation marks the event dead in place.  Ring tombstones are
skipped (and reclaimed) by the drain within one rotation, so the ring
never needs compacting; only the far list — where a tombstone could
otherwise sit for millions of cycles — is compacted once more than
half of it is dead.  ``pending`` stays O(1) via live counters, exact
even mid-callback.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from sys import intern as _intern_str
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common import params
from repro.common.errors import LivelockError, SimulationError
from repro.sim.shard import shared

Callback = Callable[[], None]

#: Maps an event's insertion sequence number to its tie-break key.
TieBreak = Callable[[int], int]

#: Far lists below this size are never compacted: a handful of dead
#: events is cheaper to pop through than to rebuild around.
_COMPACT_MIN_QUEUE = 64

#: Far-heap key offset per same-cycle phase.  Tie-break hooks must
#: return keys with magnitude below this so phases stay totally ordered.
_PHASE_STRIDE = 1 << 40

#: Dispatch-order sort keys.  Slot appends within a phase are already
#: in sequence order, so a *stable* phase sort yields the full FIFO
#: dispatch order; promotion restores the per-phase invariant with a
#: plain sequence sort.
_SEQ_KEY = attrgetter("seq")
_PHASE_KEY = attrgetter("phase")


def _tie_key(tie: TieBreak) -> Callable[["Event"], Tuple[int, int, int]]:
    """Full dispatch-order sort key under a tie-break hook."""
    return lambda e: (e.phase, tie(e.seq), e.seq)


def _next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (n >= 1)."""
    return 1 << (n - 1).bit_length()


def _default_day_length() -> int:
    """Calendar day sized from the component latency table.

    Covers twice the worst common round trip — DRAM row conflict, two
    controller static traversals, two interconnect hops, one CTT
    broadcast, and an eight-burst train — rounded up to a power of two
    so the slot index is a mask.  Delays at or past this go to the
    heap-backed far list (OS costs, watchdog timers, BPQ overflow).
    """
    horizon = (params.DRAM_ROW_CONFLICT_CYCLES
               + 2 * params.MC_STATIC_LATENCY_CYCLES
               + 2 * params.INTERCONNECT_HOP_CYCLES
               + params.BROADCAST_CYCLES
               + 8 * params.DRAM_BURST_CYCLES)
    return _next_pow2(2 * horizon)


_DEFAULT_DAY_LENGTH = _default_day_length()

#: Process-default tie-break adopted by every Simulator constructed
#: afterwards.  None means native FIFO (slot append order).  Only
#: entry-point infrastructure (the perf runner, simsan, tests) installs
#: this — ambient sim code must never depend on, or even look at, tie
#: order.
_DEFAULT_TIE_BREAK: Optional[TieBreak] = None


def set_default_tie_break(key: Optional[TieBreak]) -> None:
    """Install ``key`` as the tie-break for new :class:`Simulator`\\ s.

    ``None`` restores the native FIFO order.  Existing simulators are
    unaffected — use :meth:`Simulator.set_tie_break` to re-key one.
    """
    global _DEFAULT_TIE_BREAK
    _DEFAULT_TIE_BREAK = key


def default_tie_break() -> Optional[TieBreak]:
    """The currently installed process-default tie-break (or None)."""
    return _DEFAULT_TIE_BREAK


#: Process-default event trace hook adopted by every Simulator
#: constructed afterwards (see :meth:`Simulator.enable_tracing`).  The
#: tie-order sanitizer installs this to capture the (cycle, label)
#: event stream of simulators built *inside* a sweep point, where it
#: has no handle on the instance.  None keeps the fast run() loop.
_DEFAULT_TRACE_HOOK: Optional[Callable[[str, int], None]] = None


def set_default_trace_hook(
        hook: Optional[Callable[[str, int], None]]) -> None:
    """Install ``hook`` as the trace hook for new :class:`Simulator`\\ s.

    ``None`` restores untraced construction.  Existing simulators are
    unaffected — use :meth:`Simulator.enable_tracing` on an instance.
    """
    global _DEFAULT_TRACE_HOOK
    _DEFAULT_TRACE_HOOK = hook


def default_trace_hook() -> Optional[Callable[[str, int], None]]:
    """The currently installed process-default trace hook (or None)."""
    return _DEFAULT_TRACE_HOOK


@shared
class Event:
    """A scheduled callback.  Cancellable; compare by (when, phase, seq)."""

    # ``cancelled`` and ``_in_far`` are class-level defaults rather
    # than per-instance stores: the schedule hot path never writes
    # them, and the rare paths that flip them (cancel, a far-list
    # schedule) shadow the default through the lazy ``__dict__`` slot.
    __slots__ = ("when", "seq", "callback", "label", "phase", "_sim",
                 "__dict__")

    #: True once cancel() ran; flipping it is the cancellation itself.
    cancelled = False
    #: True while the event sits in the far heap (vs a ring slot):
    #: only far tombstones are worth compacting.
    _in_far = False

    def __init__(self, when: int, seq: int, callback: Callback, label: str = "",
                 phase: int = 0):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self.phase = phase
        # Owning simulator while the event sits in its queue (cleared on
        # dispatch) so cancel() can keep the live/cancelled counters
        # exact even when called after the event already fired.
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return ((self.when, self.phase, self.seq)
                < (other.when, other.phase, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(when={self.when}, label={self.label!r}, {state})"


@shared
class Simulator:
    """Calendar-queue event loop with a cycle-granularity clock."""

    def __init__(self, tie_break: Optional[TieBreak] = None,
                 day_length: Optional[int] = None) -> None:
        day = day_length if day_length is not None else _DEFAULT_DAY_LENGTH
        if day < 1:
            raise SimulationError(f"day_length must be >= 1, got {day}")
        day = _next_pow2(day)
        self._day = day
        self._mask = day - 1
        # One slot per cycle modulo day: a plain event list in append
        # order.  A slot only ever holds a single future cycle's events
        # (see the module docstring), so no (when, ...) keys are stored;
        # within each phase the append order is the sequence order.
        self._ring: List[List[Event]] = [[] for _ in range(day)]
        # Events >= one rotation out: (when, key, event) min-heap.
        self._far: List[Tuple[int, int, Event]] = []
        self._seq = 0
        # Equal-timestamp dispatch order: None keeps FIFO (a stable
        # phase sort of the slot); a hook sorts each slot by
        # (phase, hook(seq), seq) before dispatch (see
        # set_default_tie_break).
        self._tie_break: Optional[TieBreak] = (
            tie_break if tie_break is not None else _DEFAULT_TIE_BREAK)
        self.now: int = 0
        self._events_fired = 0
        # Live counters.  _seq already counts every event ever stored,
        # so the schedule hot path keeps no second counter; _consumed
        # counts events removed from the structures (fired, tombstones
        # reclaimed, compacted away) and _cancelled the
        # stored-but-cancelled subset.  Stored (ring + far, tombstones
        # included) = _seq - _consumed; pending = stored - _cancelled;
        # the ring's share is stored - len(_far).
        self._consumed = 0
        self._cancelled = 0
        # Cancelled events still sitting in the far heap (compaction
        # trigger; ring tombstones self-clean within one rotation).
        self._far_cancelled = 0
        # Drain state for same-cycle preemption: the highest phase
        # present in the slot being dispatched, and the flag schedule()
        # raises when a new same-cycle event must fire before the
        # unconsumed tail of that slot.  Both may be stale outside a
        # drain; a stale preempt only costs one redundant (stable,
        # order-preserving) tail re-sort at the next drain.
        self._drain_maxp = 0
        self._preempt = False
        # Optional progress monitor (see repro.faults.watchdog.Watchdog):
        # observes every fired event and raises LivelockError with a
        # post-mortem when simulated time stops advancing.
        self.watchdog = None
        # Optional host-side cost profiler (see repro.perf.profile):
        # ``_profile_clock`` returns float seconds, ``_label_costs`` maps
        # label -> [count, total_s, min_s, max_s].  ``_interned`` dedups
        # label strings at the schedule site while profiling, so the
        # per-event cost-bucket lookup hits the interned-string fast
        # path.  Never enabled by the engine itself, so default
        # behaviour stays wall-clock free.
        self._profile_clock: Optional[Callable[[], float]] = None
        self._label_costs: Optional[Dict[str, List[float]]] = None
        self._interned: Optional[Dict[str, str]] = None
        # Optional event tracer (see repro.obs.tracer.Tracer): called as
        # hook(label, now) after every fired event.  When None, run()
        # takes the fast loop and the hot path pays nothing.
        self._trace_hook: Optional[Callable[[str, int], None]] = \
            _DEFAULT_TRACE_HOOK

    # ------------------------------------------------------------ schedule
    def schedule(self, delay: int, callback: Callback, label: str = "",
                 phase: int = 0) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``phase`` orders same-cycle dispatch across tie-breaks: a
        ``phase=1`` event fires after every same-cycle ``phase=0``
        event no matter which tie-break is installed.  Ordinary sim
        code never passes it (see the module docstring).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        when = self.now + delay
        if label and self._interned is not None:
            label = self._intern_label(label)
        # Hottest allocation site in the simulator: build the Event with
        # plain slot stores instead of an __init__ frame.
        event = Event.__new__(Event)
        event.when = when
        event.seq = seq
        event.callback = callback
        event.label = label
        event.phase = phase
        event._sim = self
        if delay < self._day:
            self._ring[when & self._mask].append(event)
            if not delay:
                # Same-cycle: fires before the current drain finishes
                # its slot unless its phase lets it ride the tail.
                maxp = self._drain_maxp
                if phase < maxp or (phase == maxp
                                    and self._tie_break is not None):
                    self._preempt = True
                elif phase > maxp:
                    self._drain_maxp = phase
        else:
            tie = self._tie_break
            key = seq if tie is None else tie(seq)
            if phase:
                key += phase * _PHASE_STRIDE
            event._in_far = True
            heapq.heappush(self._far, (when, key, event))
        return event

    def schedule_at(self, when: int, callback: Callback, label: str = "",
                    phase: int = 0) -> Event:
        """Schedule ``callback`` at absolute cycle ``when`` (>= now)."""
        now = self.now
        if when < now:
            raise SimulationError(f"cannot schedule at {when}, now is {now}")
        seq = self._seq
        self._seq = seq + 1
        if label and self._interned is not None:
            label = self._intern_label(label)
        event = Event.__new__(Event)
        event.when = when
        event.seq = seq
        event.callback = callback
        event.label = label
        event.phase = phase
        event._sim = self
        if when - now < self._day:
            self._ring[when & self._mask].append(event)
            if when == now:
                maxp = self._drain_maxp
                if phase < maxp or (phase == maxp
                                    and self._tie_break is not None):
                    self._preempt = True
                elif phase > maxp:
                    self._drain_maxp = phase
        else:
            tie = self._tie_break
            key = seq if tie is None else tie(seq)
            if phase:
                key += phase * _PHASE_STRIDE
            event._in_far = True
            heapq.heappush(self._far, (when, key, event))
        return event

    def _intern_label(self, label: str) -> str:
        """Dedup ``label`` through the profiling intern table."""
        interned = self._interned
        cached = interned.get(label)  # type: ignore[union-attr]
        if cached is None:
            cached = _intern_str(label)
            interned[cached] = cached  # type: ignore[index]
        return cached

    def set_tie_break(self, key: Optional[TieBreak]) -> None:
        """Re-key equal-timestamp ordering for this simulator.

        Applies to queued events too: ring slots are sorted with the
        active tie-break at dispatch time (and normalized back to
        sequence order here when ``key`` is None), and the far heap is
        rebuilt, so a mid-run switch reorders any not-yet-fired ties as
        well.  ``None`` restores FIFO (sequence order).
        """
        self._tie_break = key
        far = self._far
        if far:
            far[:] = [
                (when,
                 (event.seq if key is None else key(event.seq))
                 + event.phase * _PHASE_STRIDE,
                 event)
                for when, _key, event in far]
            heapq.heapify(far)
        if key is None:
            # Hook order lives only in the dispatch-time sort; restore
            # the FIFO invariant that slot lists are seq-ordered within
            # each phase (a plain seq sort is stronger, and fine: the
            # drain re-sorts by phase anyway).
            for lst in self._ring:
                if len(lst) > 1:
                    lst.sort(key=_SEQ_KEY)
        # When called from inside a callback this makes the drain
        # re-sort the unconsumed tail of its slot under the new order,
        # like the old heap re-keying did; outside a drain the stale
        # flag only costs one redundant order-preserving re-sort.
        self._preempt = True

    # ----------------------------------------------------------- cancelled
    def _note_cancel(self, event: Event) -> None:
        """Account one freshly-cancelled queued event; maybe compact."""
        self._cancelled += 1
        if event._in_far:
            self._far_cancelled += 1
            far = self._far
            if (len(far) >= _COMPACT_MIN_QUEUE
                    and self._far_cancelled * 2 > len(far)):
                self._compact()

    def _compact(self) -> None:
        """Drop every cancelled event from the far heap, in place.

        In place (slice assignment, not rebinding) so any frame holding
        a local reference keeps seeing the live list.  Ring tombstones
        are not compacted: the drain reclaims them within one rotation.
        """
        far = self._far
        before = len(far)
        far[:] = [entry for entry in far if not entry[2].cancelled]
        heapq.heapify(far)
        removed = before - len(far)
        self._consumed += removed
        self._cancelled -= removed
        self._far_cancelled = 0

    # ----------------------------------------------------------------- run
    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> int:
        """Drain the event queue.

        Runs until the queue is empty, or the clock would pass ``until``
        (events at exactly ``until`` still fire).  Returns the final clock.
        """
        if (self.watchdog is not None or self._profile_clock is not None
                or self._trace_hook is not None):
            return self._run_observed(until, max_events)

        # Fast loop: hot names bound locally, no watchdog or profiler
        # branches, events_fired flushed once on the way out.
        ring = self._ring
        mask = self._mask
        far = self._far
        fired = 0
        c = self.now
        try:
            while True:
                # ---- locate the next busy cycle c ----
                if not far:
                    # Common case: nothing beyond the horizon, so every
                    # queued event is in the ring and a scan hits one
                    # within a rotation.
                    if self._seq == self._consumed:
                        # Idle: the queue is fully drained.
                        if until is not None and until > self.now:
                            self.now = until
                        return self.now
                    lst = ring[c & mask]
                    if not lst:
                        if until is None:
                            while not lst:
                                c += 1
                                lst = ring[c & mask]
                        else:
                            while not lst and c < until:
                                c += 1
                                lst = ring[c & mask]
                            if not lst:
                                # Nothing left at or before the horizon.
                                self.now = until
                                return until
                    if until is not None and c > until:
                        self.now = until
                        return until
                else:
                    while True:
                        if self._seq - self._consumed > len(far):
                            lst = ring[c & mask]
                            if not lst:
                                # Scan empty per-cycle slots, capped at
                                # the far head / until horizon.
                                stop = far[0][0] if far else None
                                if until is not None and (stop is None
                                                          or until < stop):
                                    stop = until
                                while not lst and (stop is None or c < stop):
                                    c += 1
                                    lst = ring[c & mask]
                        elif far:
                            c = far[0][0]
                            lst = ring[c & mask]
                        else:
                            if until is not None and until > self.now:
                                self.now = until
                            return self.now
                        if until is not None and c > until:
                            self.now = until
                            return until
                        if far and far[0][0] <= c:
                            # Far events due now: merge them into the
                            # slot (raises if a poisoned entry went
                            # backwards in time).
                            self._promote(far, lst)
                            if lst:
                                break
                            continue  # promoted only tombstones: rescan
                        if lst:
                            break
                        # Empty slot, nothing far due: the scan stopped
                        # at the `until` horizon with nothing before it.
                        self.now = until
                        return until
                # ---- drain cycle c's slot as one cursor pass ----
                n = len(lst)
                if n > 1:
                    tie = self._tie_break
                    if tie is not None:
                        lst.sort(key=_tie_key(tie))
                    elif n == 2:
                        a, b = lst
                        if a.phase > b.phase:
                            lst[0] = b
                            lst[1] = a
                    else:
                        lst.sort(key=_PHASE_KEY)
                    self._drain_maxp = lst[n - 1].phase
                # n == 1 leaves _drain_maxp stale: the tail starts
                # empty, so schedule()'s append rule re-establishes the
                # invariant on its own and a stale-high value at worst
                # raises a spurious preempt whose stable re-sort
                # preserves the order exactly.
                prev_now = self.now
                self.now = c
                cycle_fired = fired
                j = 0
                try:
                    # Same-cycle schedules append to `lst` and the
                    # iterator picks them up in place; the preempt
                    # re-sort below keeps the cursor position valid
                    # because the tail is replaced length-preserving.
                    for event in lst:
                        j += 1
                        self._consumed += 1
                        if event.cancelled:
                            self._cancelled -= 1
                            event._sim = None
                            continue
                        event._sim = None
                        event.callback()
                        fired += 1
                        if fired >= max_events and self._seq > self._consumed:
                            self._raise_livelock(max_events)
                        if self._preempt:
                            self._preempt = False
                            rest = lst[j:]
                            if rest:
                                tie = self._tie_break
                                rest.sort(key=_PHASE_KEY if tie is None
                                          else _tie_key(tie))
                                lst[j:] = rest
                                self._drain_maxp = rest[-1].phase
                except BaseException:
                    del lst[:j]
                    raise
                lst.clear()
                if fired == cycle_fired:
                    # Every event this cycle was a tombstone: the clock
                    # never observably reached c.
                    self.now = prev_now
                c += 1
        finally:
            self._events_fired += fired
            self._preempt = False

    def _run_observed(self, until: Optional[int], max_events: int) -> int:
        """The watched/profiled/traced drain loop (see :meth:`run`).

        Structured identically to the fast loop, plus the per-event
        watchdog/profiler/tracer work.
        """
        ring = self._ring
        mask = self._mask
        far = self._far
        clock = self._profile_clock
        costs = self._label_costs
        fired = 0
        c = self.now
        try:
            while True:
                # ---- locate the next busy cycle c (see run()) ----
                if not far:
                    if self._seq == self._consumed:
                        if until is not None and until > self.now:
                            self.now = until
                        return self.now
                    lst = ring[c & mask]
                    if not lst:
                        if until is None:
                            while not lst:
                                c += 1
                                lst = ring[c & mask]
                        else:
                            while not lst and c < until:
                                c += 1
                                lst = ring[c & mask]
                            if not lst:
                                self.now = until
                                return until
                    if until is not None and c > until:
                        self.now = until
                        return until
                else:
                    while True:
                        if self._seq - self._consumed > len(far):
                            lst = ring[c & mask]
                            if not lst:
                                stop = far[0][0] if far else None
                                if until is not None and (stop is None
                                                          or until < stop):
                                    stop = until
                                while not lst and (stop is None or c < stop):
                                    c += 1
                                    lst = ring[c & mask]
                        elif far:
                            c = far[0][0]
                            lst = ring[c & mask]
                        else:
                            if until is not None and until > self.now:
                                self.now = until
                            return self.now
                        if until is not None and c > until:
                            self.now = until
                            return until
                        if far and far[0][0] <= c:
                            self._promote(far, lst)
                            if lst:
                                break
                            continue
                        if lst:
                            break
                        self.now = until
                        return until
                n = len(lst)
                if n > 1:
                    tie = self._tie_break
                    if tie is not None:
                        lst.sort(key=_tie_key(tie))
                    elif n == 2:
                        a, b = lst
                        if a.phase > b.phase:
                            lst[0] = b
                            lst[1] = a
                    else:
                        lst.sort(key=_PHASE_KEY)
                    self._drain_maxp = lst[n - 1].phase
                # n == 1 leaves _drain_maxp stale: the tail starts
                # empty, so schedule()'s append rule re-establishes the
                # invariant on its own and a stale-high value at worst
                # raises a spurious preempt whose stable re-sort
                # preserves the order exactly.
                prev_now = self.now
                self.now = c
                cycle_fired = fired
                j = 0
                try:
                    for event in lst:
                        j += 1
                        self._consumed += 1
                        if event.cancelled:
                            self._cancelled -= 1
                            event._sim = None
                            continue
                        event._sim = None
                        if clock is not None:
                            start = clock()
                            event.callback()
                            elapsed = clock() - start
                            cost = costs.get(event.label)
                            if cost is None:
                                costs[event.label] = [1, elapsed, elapsed,
                                                      elapsed]
                            else:
                                cost[0] += 1
                                cost[1] += elapsed
                                if elapsed < cost[2]:
                                    cost[2] = elapsed
                                if elapsed > cost[3]:
                                    cost[3] = elapsed
                        else:
                            event.callback()
                        fired += 1
                        self._events_fired += 1
                        if self.watchdog is not None:
                            self.watchdog.observe(event.label, self.now)
                        if self._trace_hook is not None:
                            self._trace_hook(event.label, self.now)
                        if fired >= max_events and self._seq > self._consumed:
                            self._raise_livelock(max_events)
                        if self._preempt:
                            self._preempt = False
                            rest = lst[j:]
                            if rest:
                                tie = self._tie_break
                                rest.sort(key=_PHASE_KEY if tie is None
                                          else _tie_key(tie))
                                lst[j:] = rest
                                self._drain_maxp = rest[-1].phase
                except BaseException:
                    del lst[:j]
                    raise
                lst.clear()
                if fired == cycle_fired:
                    self.now = prev_now
                c += 1
        finally:
            self._preempt = False

    def _promote(self, far: List[Tuple[int, int, Event]],
                 lst: List[Event]) -> None:
        """Move every far event due at the far head's cycle into ``lst``.

        Appends in place (the slot list is never rebound) and re-sorts
        the slot by sequence number so promoted events (older seqs)
        interleave with ring events in FIFO order; a tie-break hook
        re-sorts at dispatch anyway.
        """
        heappop = heapq.heappop
        due = far[0][0]
        if due < self.now:
            raise SimulationError("event queue went backwards in time")
        while far and far[0][0] == due:
            _when, _key, event = heappop(far)
            if event.cancelled:
                self._consumed += 1
                self._cancelled -= 1
                self._far_cancelled -= 1
                event._sim = None
                continue
            event._in_far = False
            lst.append(event)
        if len(lst) > 1:
            lst.sort(key=_SEQ_KEY)

    def _raise_livelock(self, max_events: int) -> None:
        message = f"exceeded {max_events} events; likely a livelock"
        post_mortem = ""
        if self.watchdog is not None:
            post_mortem = self.watchdog.post_mortem(
                f"event budget of {max_events} exhausted")
        raise LivelockError(message, post_mortem=post_mortem)

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False when idle."""
        ring = self._ring
        mask = self._mask
        far = self._far
        c = self.now
        while True:
            if self._seq - self._consumed > len(far):
                lst = ring[c & mask]
                stop = far[0][0] if far else None
                while not lst and (stop is None or c < stop):
                    c += 1
                    lst = ring[c & mask]
            elif far:
                c = far[0][0]
                lst = ring[c & mask]
            else:
                return False
            if far and far[0][0] <= c:
                self._promote(far, lst)
            if not lst:
                continue
            if c < self.now:
                raise SimulationError("event queue went backwards in time")
            tie = self._tie_break
            if len(lst) > 1:
                lst.sort(key=_PHASE_KEY if tie is None else _tie_key(tie))
            while lst:
                event = lst.pop(0)
                self._consumed += 1
                if event.cancelled:
                    self._cancelled -= 1
                    event._sim = None
                    continue
                event._sim = None
                self.now = c
                event.callback()
                self._events_fired += 1
                if self._trace_hook is not None:
                    self._trace_hook(event.label, self.now)
                return True
            # every event at cycle c was a tombstone — keep scanning

    # ----------------------------------------------------------- profiling
    def enable_profiling(self, clock: Callable[[], float]) -> None:
        """Record per-label callback costs using ``clock`` (host seconds).

        The engine never reads a clock on its own: the caller supplies
        one (see :mod:`repro.perf.profile`), keeping the default
        simulation path free of any wall-clock dependence.
        """
        self._profile_clock = clock
        if self._label_costs is None:
            self._label_costs = {}
        if self._interned is None:
            self._interned = {}

    def disable_profiling(self) -> None:
        """Stop recording callback costs (retains collected data)."""
        self._profile_clock = None

    # ------------------------------------------------------------- tracing
    def enable_tracing(self, hook: Callable[[str, int], None]) -> None:
        """Invoke ``hook(label, now)`` after every fired event.

        Like the watchdog/profiler, attaching mid-``run()`` takes effect
        on the next ``run()``/``step()`` call.  The hook must not
        schedule events — it observes the simulation, it is not part of
        it (see :mod:`repro.obs`).
        """
        self._trace_hook = hook

    def disable_tracing(self) -> None:
        """Detach the event trace hook; run() returns to the fast loop."""
        self._trace_hook = None

    def label_costs(self) -> Dict[str, Dict[str, float]]:
        """Collected per-label costs: count/total/min/max seconds."""
        costs = self._label_costs or {}
        return {
            (label or "<unlabelled>"): {
                "count": bucket[0],
                "total_s": bucket[1],
                "min_s": bucket[2],
                "max_s": bucket[3],
            }
            for label, bucket in sorted(costs.items())
        }

    # -------------------------------------------------------- introspection
    def _live_events(self) -> Iterator[Event]:
        """Yield every live (queued, not cancelled) event, any order."""
        for lst in self._ring:
            for event in lst:
                # _sim distinguishes the unconsumed tail from the
                # already-dispatched prefix of the slot being drained.
                if event._sim is self and not event.cancelled:
                    yield event
        for _when, _key, event in self._far:
            if not event.cancelled:
                yield event

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._seq - self._consumed - self._cancelled

    def queue_labels(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Histogram of pending-event labels, most frequent first.

        The watchdog post-mortem uses this to answer "what is the queue
        full of?" — a livelock usually shows one label dominating.
        """
        counts: Dict[str, int] = {}
        for event in self._live_events():
            label = event.label or "<unlabelled>"
            counts[label] = counts.get(label, 0) + 1
        # Tie-break equal counts by label so the histogram is a pure
        # function of the queue contents, not of insertion order.
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return dict(ordered)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending})"
