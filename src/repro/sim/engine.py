"""Discrete-event simulation engine.

The whole memory system is simulated on a single logical clock measured in
CPU cycles.  Components schedule callbacks on the :class:`Simulator`; the
engine pops events in timestamp order (FIFO among equal timestamps) and
invokes them.  This is deliberately minimal — deterministic, allocation
light, and easy to reason about in tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import LivelockError, SimulationError

Callback = Callable[[], None]


class Event:
    """A scheduled callback.  Cancellable; compare by (when, seq)."""

    __slots__ = ("when", "seq", "callback", "cancelled", "label")

    def __init__(self, when: int, seq: int, callback: Callback, label: str = ""):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(when={self.when}, label={self.label!r}, {state})"


class Simulator:
    """Priority-queue event loop with a cycle-granularity clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.now: int = 0
        self._events_fired = 0
        # Optional progress monitor (see repro.faults.watchdog.Watchdog):
        # observes every fired event and raises LivelockError with a
        # post-mortem when simulated time stops advancing.
        self.watchdog = None

    # ------------------------------------------------------------ schedule
    def schedule(self, delay: int, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        event = Event(self.now + int(delay), next(self._seq), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when: int, callback: Callback, label: str = "") -> Event:
        """Schedule ``callback`` at absolute cycle ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when}, now is {self.now}")
        event = Event(int(when), next(self._seq), callback, label)
        heapq.heappush(self._queue, event)
        return event

    # ----------------------------------------------------------------- run
    def run(self, until: Optional[int] = None, max_events: int = 200_000_000) -> int:
        """Drain the event queue.

        Runs until the queue is empty, or the clock would pass ``until``
        (events at exactly ``until`` still fire).  Returns the final clock.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if event.when < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = event.when
            event.callback()
            fired += 1
            self._events_fired += 1
            if self.watchdog is not None:
                self.watchdog.observe(event.label, self.now)
            if fired >= max_events and self._queue:
                self._raise_livelock(max_events)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _raise_livelock(self, max_events: int) -> None:
        message = f"exceeded {max_events} events; likely a livelock"
        post_mortem = ""
        if self.watchdog is not None:
            post_mortem = self.watchdog.post_mortem(
                f"event budget of {max_events} exhausted")
        raise LivelockError(message, post_mortem=post_mortem)

    def step(self) -> bool:
        """Fire the single next pending event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.when < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = event.when
            event.callback()
            self._events_fired += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def queue_labels(self, limit: Optional[int] = None) -> Dict[str, int]:
        """Histogram of pending-event labels, most frequent first.

        The watchdog post-mortem uses this to answer "what is the queue
        full of?" — a livelock usually shows one label dominating.
        """
        counts: Dict[str, int] = {}
        for event in self._queue:
            if not event.cancelled:
                label = event.label or "<unlabelled>"
                counts[label] = counts.get(label, 0) + 1
        # Tie-break equal counts by label so the histogram is a pure
        # function of the queue contents, not of insertion order.
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ordered = ordered[:limit]
        return dict(ordered)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending})"
