"""Memory-system packets.

A :class:`Packet` is the unit of communication between the caches, the
interconnect, and the memory controllers.  Packets carry physical addresses
at cacheline granularity plus (for the (MC)² control packets) the lazy-copy
descriptor.  Completion is continuation-passing: the issuer attaches a
callback which fires when the packet is done, at the completing component's
simulated time.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.shard import shared


class PacketType(enum.Enum):
    """Kinds of traffic the memory system understands."""

    READ = "read"                # fetch a cacheline
    WRITE = "write"              # write back / store a cacheline
    MCLAZY = "mclazy"            # register a prospective copy (broadcast)
    MCFREE = "mcfree"            # drop CTT entries covered by a buffer
    CTT_UPDATE = "ctt_update"    # inter-MC snoop keeping CTTs consistent
    INMEM_COPY = "inmem_copy"    # in-DRAM row copy (RowClone / mirroring)


@shared
class Packet:
    """One memory-system transaction.

    Attributes
    ----------
    ptype:
        What kind of transaction this is.
    addr:
        Physical byte address (cacheline-aligned for READ/WRITE).
    size:
        Bytes covered.  64 for cacheline ops; arbitrary multiples of the
        cacheline for MCLAZY / MCFREE descriptors.
    src_addr:
        For MCLAZY: physical address of the copy source buffer.
    on_complete:
        Continuation invoked once when the transaction finishes.
    requestor:
        Integer id of the issuing core (or -1 for hardware-generated
        traffic such as prefetches, bounces and async CTT frees).
    is_prefetch / is_bounce / is_async_copy:
        Provenance flags used for statistics and scheduling priorities.
    poisoned:
        Set when the payload derives from a detected-uncorrectable memory
        error (SEC-DED double-bit).  Poison travels with the data — fills,
        writebacks, parked BPQ writes — so corruption is *contained* and
        never silently re-laundered as clean bytes (see ``repro.faults``).
    """

    __slots__ = (
        "ptype", "addr", "size", "src_addr", "on_complete",
        "requestor", "is_prefetch", "is_bounce", "is_async_copy",
        "copy_mode", "issued_at", "completed_at", "data", "poisoned",
    )

    def __init__(
        self,
        ptype: PacketType,
        addr: int,
        size: int = 64,
        src_addr: Optional[int] = None,
        on_complete: Optional[Callable[["Packet"], None]] = None,
        requestor: int = -1,
    ):
        # Deliberately no serial id: a process-global counter would be
        # shared mutable state across forked sweep workers (MC2401) and
        # across back-to-back simulations in one process.
        self.ptype = ptype
        self.addr = addr
        self.size = size
        self.src_addr = src_addr
        self.on_complete = on_complete
        self.requestor = requestor
        self.is_prefetch = False
        self.is_bounce = False
        self.is_async_copy = False
        self.copy_mode: Optional[str] = None  # INMEM_COPY: rowclone|mirror
        self.issued_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.data: Optional[bytes] = None
        self.poisoned = False

    def complete(self, now: int) -> None:
        """Mark done at cycle ``now`` and fire the continuation once."""
        self.completed_at = now
        callback = self.on_complete
        self.on_complete = None
        if callback is not None:
            callback(self)

    @property
    def is_read(self) -> bool:
        """True for READ packets."""
        return self.ptype is PacketType.READ

    @property
    def is_write(self) -> bool:
        """True for WRITE packets."""
        return self.ptype is PacketType.WRITE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f", src={self.src_addr:#x}" if self.src_addr is not None else ""
        return (
            f"Packet({self.ptype.value}, addr={self.addr:#x}, "
            f"size={self.size}{extra})"
        )
