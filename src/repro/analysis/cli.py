"""Command-line driver: ``python -m repro.analysis`` / ``mc2-analyze``.

Exit codes: 0 — clean (no active findings); 1 — active findings; 2 —
usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis import engine, sarif
from repro.analysis import baseline as baseline_mod
from repro.analysis.core import all_rules
from repro.common.errors import ConfigError

DEFAULT_BASELINE = "analysis-baseline.json"


def _default_paths() -> List[str]:
    """``src/repro`` relative to cwd, else the installed package dir."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def _text_report(report: engine.Report, show_suppressed: bool) -> str:
    lines: List[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        tag = ""
        if finding.suppressed:
            tag = " [suppressed]"
        elif finding.baselined:
            tag = " [baselined]"
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.message}{tag}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    active = len(report.active)
    lines.append(
        f"{report.files_analyzed} files analyzed: {active} finding(s)"
        + (f", {len(report.baselined)} baselined" if report.baselined else "")
        + (f", {len(report.suppressed)} suppressed"
           if report.suppressed else ""))
    return "\n".join(lines) + "\n"


def _json_report(report: engine.Report, stats: bool = False) -> str:
    payload = {
        "files_analyzed": report.files_analyzed,
        "ok": report.ok,
        "findings": [
            {
                "rule": f.rule, "message": f.message, "path": f.path,
                "line": f.line, "col": f.col, "snippet": f.snippet,
                "suppressed": f.suppressed, "baselined": f.baselined,
            }
            for f in report.findings
        ],
    }
    if stats:
        payload["stats"] = {
            code: {"seconds": entry["seconds"],
                   "findings": int(entry["findings"])}
            for code, entry in report.rule_stats.items()
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _stats_table(report: engine.Report) -> str:
    """Per-rule cost table, slowest rule first."""
    lines = ["per-rule stats (wall time, raw findings):"]
    entries = sorted(report.rule_stats.items(),
                     key=lambda kv: (-kv[1]["seconds"], kv[0]))
    for code, entry in entries:
        lines.append(f"  {code}  {entry['seconds'] * 1000.0:8.2f} ms  "
                     f"{int(entry['findings']):4d} finding(s)")
    total = sum(e["seconds"] for e in report.rule_stats.values())
    lines.append(f"  total rule time: {total * 1000.0:.2f} ms")
    return "\n".join(lines) + "\n"


def _diff_report(report: engine.Report, known, output: Optional[str]) -> int:
    """Print the baseline delta; exit 1 only on *new* findings.

    The delta is the reviewable unit for a pull request: ``+`` lines
    are findings this change introduces, ``-`` lines are baseline
    entries the change paid off (drop them with ``--write-baseline``).
    """
    new, fixed = baseline_mod.diff(report.findings, known)
    lines: List[str] = []
    for finding in new:
        lines.append(f"+ {finding.location()}: {finding.rule} "
                     f"{finding.message}")
        if finding.snippet:
            lines.append(f"      {finding.snippet}")
    for entry in fixed:
        lines.append(f"- {entry.get('path', '?')}: {entry.get('rule', '?')} "
                     f"(baseline entry no longer matches)")
    lines.append(f"baseline diff: {len(new)} new finding(s), "
                 f"{len(fixed)} fixed baseline entr"
                 f"{'y' if len(fixed) == 1 else 'ies'}")
    _emit("\n".join(lines) + "\n", output)
    return 1 if new else 0


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name:<22} {rule.summary}")
    return "\n".join(lines) + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mc2-analyze",
        description="Simulator-invariant static analyzer for the (MC)^2 "
                    "reproduction: determinism lint, event-safety rules, "
                    "poison-taint completeness.")
    parser.add_argument(
        "paths", nargs="*", help="files or directories "
        "(default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} when present)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0")
    parser.add_argument(
        "--diff", action="store_true",
        help="compare findings against the baseline and print the delta: "
             "exit 1 only when *new* findings (absent from the baseline) "
             "exist; also lists baseline entries that no longer match")
    parser.add_argument(
        "--exclude", metavar="PATH", action="append", default=[],
        help="file or directory prefix to skip (repeatable); used to "
             "carve planted sanitizer fixtures out of a lint sweep")
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include noqa-suppressed findings in the text report")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--sharding-report", action="store_true",
        help="classify engine/controller/CTT/BPQ instance state as "
             "provably shard-local, cross-shard (with rendezvous "
             "points), or unknown — the inventory the per-channel "
             "engine split starts from")
    parser.add_argument(
        "--ownership-report", action="store_true",
        help="prove the declared per-channel partition: per-shard "
             "attribute inventories, the exact rendezvous edge list, "
             "and the unknown/problem buckets the MC27xx gate drives "
             "to zero (exit 1 when the partition is not proven)")
    parser.add_argument(
        "--stats", action="store_true",
        help="append per-rule wall time and raw finding counts to the "
             "report (text: a table; json: a 'stats' key)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0

    paths = args.paths or _default_paths()

    if args.sharding_report:
        from repro.analysis import sharding
        try:
            files = engine.collect_files(paths, exclude=args.exclude)
            modules = engine.parse_modules(files)
            report = sharding.classify(modules)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            _emit(sharding.report_json(report), args.output)
        else:
            _emit(sharding.report_text(report), args.output)
        return 0

    if args.ownership_report:
        from repro.analysis import ownership
        try:
            files = engine.collect_files(paths, exclude=args.exclude)
            modules = engine.parse_modules(files)
            report = ownership.analyze(modules)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.format == "json":
            _emit(ownership.report_json(report), args.output)
        else:
            _emit(ownership.report_text(report), args.output)
        return 0 if report.ok else 1

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    select = (args.select.split(",") if args.select else None)

    try:
        report = engine.run(paths, baseline_path=baseline_path,
                            select=select, exclude=args.exclude)
        if args.diff:
            known = baseline_mod.load(args.baseline or DEFAULT_BASELINE)
            return _diff_report(report, known, args.output)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        count = baseline_mod.save(
            target, [f for f in report.findings if not f.suppressed])
        print(f"wrote {count} fingerprint(s) to {target}")
        return 0

    if args.format == "sarif":
        _emit(sarif.dumps(report.findings), args.output)
    elif args.format == "json":
        _emit(_json_report(report, stats=args.stats), args.output)
    else:
        text = _text_report(report, args.show_suppressed)
        if args.stats:
            text += _stats_table(report)
        _emit(text, args.output)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
