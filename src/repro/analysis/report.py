"""Assemble a results summary from the generated ``results/`` files.

After ``pytest benchmarks/ --benchmark-only`` has populated ``results/``,
:func:`build_report` stitches every exhibit into one text report (the
reproduction's analogue of the artifact's ``figures/`` folder), and
:func:`coverage` lists which paper exhibits have been regenerated.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional

#: Every exhibit the paper's evaluation contains, in presentation order.
EXPECTED_EXHIBITS = [
    "table1", "figure2", "figure3", "figure4",
    "figure10", "figure11", "figure12", "figure13", "figure14",
    "figure15", "figure16a", "figure16b", "figure17a", "figure17b",
    "figure18", "figure19", "figure20", "figure21", "figure22",
    "ablation_wide_writeback", "ablation_async_engine",
    "ablation_interposer", "sensitivity_cxl",
]


def default_results_dir() -> pathlib.Path:
    """``results/`` at the repository root."""
    return pathlib.Path(__file__).resolve().parents[3] / "results"


def coverage(results_dir: Optional[pathlib.Path] = None) -> Dict[str, bool]:
    """Which expected exhibits have a generated result file."""
    results_dir = results_dir or default_results_dir()
    return {name: (results_dir / f"{name}.txt").exists()
            for name in EXPECTED_EXHIBITS}


def build_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """One combined text report of every generated exhibit."""
    results_dir = results_dir or default_results_dir()
    sections: List[str] = [
        "(MC)^2 reproduction — generated results",
        "=" * 46,
    ]
    present = coverage(results_dir)
    done = sum(present.values())
    sections.append(f"exhibits generated: {done}/{len(present)}")
    missing = [n for n, ok in present.items() if not ok]
    if missing:
        sections.append("missing (run pytest benchmarks/ --benchmark-only): "
                        + ", ".join(missing))
    sections.append("")
    for name in EXPECTED_EXHIBITS:
        path = results_dir / f"{name}.txt"
        if path.exists():
            sections.append(path.read_text().rstrip())
            sections.append("")
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: print the combined report (optionally to a file)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.report",
        description="Summarize generated (MC)^2 reproduction results.")
    parser.add_argument("--results", type=pathlib.Path, default=None,
                        help="results directory (default: repo results/)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)
    report = build_report(args.results)
    if args.output:
        args.output.write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
