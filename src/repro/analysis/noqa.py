"""Per-line suppression comments.

A finding is suppressed when the physical line it anchors to carries a
``# noqa`` comment — either bare (suppresses every rule on that line) or
listing codes (``# noqa: MC2003`` or ``# noqa: MC2003, MC2104``).  The
codes are matched case-insensitively.  Suppressions are surfaced in the
report (``--show-suppressed``) rather than silently swallowed, so a
stale ``noqa`` is visible during review.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

#: Marker meaning "every rule suppressed on this line".
ALL = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Za-z0-9, ]+))?", re.IGNORECASE)


def suppressions(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of suppressed rule codes.

    Bare ``# noqa`` maps to :data:`ALL`.  Lines without a marker are
    absent from the mapping.
    """
    out: Dict[int, FrozenSet[str]] = {}
    for idx, text in enumerate(lines, start=1):
        if "noqa" not in text.lower():
            continue
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[idx] = ALL
        else:
            parsed = frozenset(
                c.strip().upper() for c in codes.split(",") if c.strip())
            out[idx] = parsed or ALL
    return out


def is_suppressed(rule: str, line: int,
                  table: Dict[int, FrozenSet[str]]) -> bool:
    """Whether ``rule`` is suppressed on ``line`` by ``table``."""
    codes = table.get(line)
    if codes is None:
        return False
    return codes is ALL or "*" in codes or rule.upper() in codes
