"""Per-line suppression comments.

A finding is suppressed when the physical line it anchors to carries a
``# noqa`` comment — either bare (suppresses every rule on that line) or
listing codes (``# noqa: MC2003`` or ``# noqa: MC2003, MC2104``).  The
codes are matched case-insensitively.  Suppressions are surfaced in the
report (``--show-suppressed``) rather than silently swallowed, and the
MC2901 hygiene pass flags any that no longer suppress anything.

Markers are located with :mod:`tokenize` so that only *actual comments*
count: a test fixture embedding ``"... # noqa"`` inside a string
literal is data, not a suppression.  Sources that fail to tokenize
(syntax errors already surfaced as MC2000) fall back to a line regex.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional

#: Marker meaning "every rule suppressed on this line".
ALL = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#+\s*noqa(?::\s*(?P<codes>[A-Za-z0-9, ]+))?", re.IGNORECASE)


def _parse_marker(comment: str) -> Optional[FrozenSet[str]]:
    """The code set for one comment text, or None without a marker.

    The directive must open the comment (``x = 1  # noqa: MC2003``); a
    comment merely *mentioning* ``# noqa`` mid-sentence is prose, not a
    suppression.  A full source line (the regex fallback) is anchored
    at its first ``#`` — where the comment starts.
    """
    if not comment.startswith("#"):
        start = comment.find("#")
        if start < 0:
            return None
        comment = comment[start:]
    match = _NOQA_RE.match(comment)
    if not match:
        return None
    codes = match.group("codes")
    if codes is None:
        return ALL
    parsed = frozenset(
        c.strip().upper() for c in codes.split(",") if c.strip())
    return parsed or ALL


def _comment_lines(source: str) -> Optional[Dict[int, str]]:
    """1-based line -> comment text, via tokenize (None on failure)."""
    out: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                out[token.start[0]] = token.string
    except (tokenize.TokenError, SyntaxError, ValueError,
            IndentationError):
        return None
    return out


def suppressions(lines: List[str],
                 source: Optional[str] = None) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of suppressed rule codes.

    Bare ``# noqa`` maps to :data:`ALL`.  Lines without a marker are
    absent from the mapping.  When ``source`` is given, markers are
    located through the tokenizer so string literals containing
    ``# noqa`` are ignored; without it (or when tokenization fails) the
    scan falls back to per-line regex matching.
    """
    comments: Optional[Dict[int, str]] = None
    if source is not None:
        comments = _comment_lines(source)
    if comments is None:
        comments = {idx: text for idx, text in enumerate(lines, start=1)
                    if "noqa" in text.lower()}
    out: Dict[int, FrozenSet[str]] = {}
    for idx, text in sorted(comments.items()):
        if "noqa" not in text.lower():
            continue
        codes = _parse_marker(text)
        if codes is not None:
            out[idx] = codes
    return out


def is_suppressed(rule: str, line: int,
                  table: Dict[int, FrozenSet[str]]) -> bool:
    """Whether ``rule`` is suppressed on ``line`` by ``table``."""
    codes = table.get(line)
    if codes is None:
        return False
    return codes is ALL or "*" in codes or rule.upper() in codes
