"""Analysis layer: paper result assembly and static simulator linting.

Two halves share this package:

* **result assembly** — one builder per paper figure/table
  (:mod:`repro.analysis.figures`, :mod:`repro.analysis.plotting`,
  :mod:`repro.analysis.report`);
* **static analysis** — the simulator-invariant analyzer behind
  ``python -m repro.analysis`` (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`): determinism lint, event-safety rules,
  and the interprocedural poison-taint pass, with text/JSON/SARIF
  output and a CI baseline gate.
"""

from repro.analysis.figures import format_rows
from repro.analysis.plotting import bar_chart, cdf_plot, line_plot

__all__ = ["format_rows", "figures", "bar_chart", "line_plot", "cdf_plot",
           "engine", "cli"]
