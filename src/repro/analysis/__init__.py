"""Result assembly: one builder per paper figure/table."""

from repro.analysis.figures import format_rows
from repro.analysis.plotting import bar_chart, cdf_plot, line_plot

__all__ = ["format_rows", "figures", "bar_chart", "line_plot", "cdf_plot"]
