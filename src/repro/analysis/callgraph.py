"""Shared whole-program call-graph IR for interprocedural rules.

PR 2's poison-taint pass (MC2301) carried its own ad-hoc function
walker and bare-name call map; the fork-safety (MC24xx) and
cache-soundness (MC25xx) families need the same machinery, so it lives
here once.  The IR is deliberately lightweight — no types, no dataflow
lattice — because the simulator codebase's uniform method-call style
makes conservative name matching precise enough in practice:

* every function/method in the analyzed modules becomes a
  :class:`FunctionNode` carrying syntactic **facts** (module-global
  writes, ambient environment reads, global-RNG use, ``open()`` calls,
  mutable-global reads) collected in one AST walk;
* call sites resolve in priority order — same-module functions, names
  imported ``from X import f``, module attributes ``mod.f`` (via the
  import map), class constructors (``Cls()`` edges to
  ``Cls.__init__``) — and fall back to **bare-name matching** for
  method calls, the same sound over-approximation MC2301 shipped with;
* :meth:`CallGraph.reachable` computes the transitive closure from a
  root set (e.g. every ``SimPoint``-dispatched worker function), and
  :meth:`CallGraph.propagate_up` runs the generic callee->caller
  fixed point the taint pass uses for poison awareness.

Over-approximate reachability means the interprocedural rules may
reach more functions than a real execution would; rules compensate by
only flagging *facts* (an actual global write, an actual env read), so
a false edge alone never produces a finding on clean code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.core import Module, module_imports

#: Call names whose results are freshly-allocated mutable containers
#: (or stateful iterators — ``itertools.count`` burned us in
#: ``sim.packet``); a module-level name bound to one is shared mutable
#: state.
MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "deque",
                     "defaultdict", "OrderedDict", "Counter", "count",
                     "cycle", "chain", "iter"}

#: ``random.<fn>`` calls that consume the process-global RNG stream
#: (kept in sync with the MC2002 module rule).
GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed",
}


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    bare: str                  # rightmost name: ``obj.read_line`` -> "read_line"
    dotted: str = ""           # best-effort source text, e.g. "os.environ.get"
    is_method: bool = False    # attribute call (``x.f()``) vs plain name (``f()``)


@dataclass
class ScheduleSite:
    """One ``sim.schedule`` / ``sim.schedule_at`` call.

    The race rules (MC26xx) reason about which callbacks can fire at
    the same cycle and in which engine phase, so the site records the
    statically-recoverable scheduling shape: how far in the future the
    event lands (``delay_kind``), the dispatch ``phase`` (``None`` when
    the phase expression is not a constant), and the *handler* the
    event will invoke, resolved through the common callback idioms —
    ``self._meth`` bound methods, local nested ``def`` names, and
    ``lambda: obj.meth(...)`` trampolines.
    """

    node: ast.Call
    method: str                # "schedule" | "schedule_at"
    delay_kind: str            # "zero" | "const:<n>" | "dynamic"
    phase: Optional[int]       # constant phase, or None when dynamic
    handler: str               # bare handler name ("" when unresolvable)
    handler_kind: str          # "method" | "local" | "lambda-method" | "lambda" | "unknown"
    label: str = ""


#: Attribute-write kinds recorded in ``FunctionNode.attr_writes``.
ATTR_ASSIGN = "assign"         # self.x = ...
ATTR_AUGADD = "augadd"         # self.x += ... (commutative-looking RMW)
ATTR_AUGOTHER = "augother"     # self.x -= / *= / ... (other RMW)
ATTR_MUTATE = "mutate"         # self.x.append(...) etc.
ATTR_SUBSCRIPT = "subscript"   # self.x[k] = ...


@dataclass
class FunctionNode:
    """One function or method plus the syntactic facts rules consume."""

    qualname: str              # "repro.mem.backing_store.BackingStore.copy"
    name: str                  # bare function name
    module: Module
    node: ast.AST              # the FunctionDef / AsyncFunctionDef
    class_name: str = ""       # enclosing class bare name ("" for free fns)
    parent: str = ""           # qualname of the enclosing function ("" at top)
    calls: List[CallSite] = field(default_factory=list)

    # Facts (node lists so rules can anchor findings precisely).
    global_writes: Dict[str, List[ast.AST]] = field(default_factory=dict)
    global_reads: Dict[str, List[ast.AST]] = field(default_factory=dict)
    env_reads: List[ast.AST] = field(default_factory=list)
    rng_calls: List[ast.AST] = field(default_factory=list)
    open_calls: List[ast.AST] = field(default_factory=list)

    # Instance-state facts for the same-cycle race rules (MC26xx):
    # accesses through the literal ``self`` receiver, keyed by attribute
    # name.  Writes carry an access kind (ATTR_* above).
    attr_writes: Dict[str, List[tuple]] = field(default_factory=dict)
    attr_reads: Dict[str, List[ast.AST]] = field(default_factory=dict)
    # Event-scheduling sites inside this function.
    schedule_sites: List[ScheduleSite] = field(default_factory=list)
    # ``d[... sim.now ...] = v`` stores (MC2602 order-escape rule).
    now_key_stores: List[ast.AST] = field(default_factory=list)
    # ``<stat>.value`` read-modify-writes outside the stats module
    # (MC2603); each entry is ``(node, dotted_target)``.
    stat_value_rmw: List[tuple] = field(default_factory=list)

    @property
    def is_nested(self) -> bool:
        """Defined inside another function (a closure when dispatched)."""
        return bool(self.parent)

    def callee_names(self) -> Set[str]:
        return {site.bare for site in self.calls}


def module_mutable_globals(module: Module) -> Set[str]:
    """Names bound at module level to mutable container expressions.

    These are the globals whose *in-place* mutation from a forked
    worker silently diverges from a serial run: the parent never sees
    the write.  Immutable rebindings are caught separately through the
    ``global`` statement.
    """
    out: Set[str] = set()
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp, ast.SetComp))
        if (not mutable and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)):
            mutable = value.func.id in MUTABLE_FACTORIES
        if (not mutable and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)):
            mutable = value.func.attr in MUTABLE_FACTORIES
        if mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "popleft", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft",
}


def _is_env_read(node: ast.AST) -> bool:
    """``os.environ[...]`` / ``os.environ.get(...)`` / ``os.getenv(...)``.

    Only the Call and Subscript forms are counted so one read is one
    fact (the inner ``os.environ`` attribute node is not re-counted).
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return _dotted(node.func) in ("os.environ.get", "os.getenv",
                                      "environ.get", "getenv")
    if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
        return _dotted(node.value) in ("os.environ", "environ")
    return False


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def _contains_now(node: ast.AST) -> bool:
    """True when the subtree reads a ``.now`` attribute (``sim.now``)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now" \
                and isinstance(sub.ctx, ast.Load):
            return True
    return False


def _resolve_handler(arg: ast.AST) -> tuple:
    """``(bare name, kind)`` for a schedule-call callback argument."""
    if isinstance(arg, ast.Attribute):
        return arg.attr, "method"
    if isinstance(arg, ast.Name):
        return arg.id, "local"
    if isinstance(arg, ast.Lambda):
        # The dominant trampoline shape: ``lambda: obj.meth(...)`` —
        # resolve to the innermost called method so the race rules see
        # through the closure.
        for sub in ast.walk(arg.body):
            if isinstance(sub, ast.Call):
                if isinstance(sub.func, ast.Attribute):
                    return sub.func.attr, "lambda-method"
                if isinstance(sub.func, ast.Name):
                    return sub.func.id, "lambda-method"
        return "<lambda>", "lambda"
    return "", "unknown"


def _schedule_site(node: ast.Call, bare: str, dotted: str,
                   ) -> Optional[ScheduleSite]:
    """Build a :class:`ScheduleSite` when ``node`` schedules an event.

    Recognizes ``<recv>.sim.schedule(...)`` / ``sim.schedule(...)`` and
    the ``schedule_at`` variant; other methods that happen to be named
    ``schedule`` (none in this codebase) would need a ``sim`` receiver
    to match, keeping the extraction precise.
    """
    if bare not in ("schedule", "schedule_at"):
        return None
    parts = dotted.split(".")
    if len(parts) < 2 or parts[-2] != "sim":
        return None
    if not node.args:
        return None
    when = node.args[0]
    if bare == "schedule" and isinstance(when, ast.Constant) \
            and isinstance(when.value, int):
        delay_kind = "zero" if when.value == 0 else f"const:{when.value}"
    else:
        # schedule_at targets an arbitrary cycle; without value tracking
        # it may land on the current one, so it is "dynamic" like any
        # computed delay.
        delay_kind = "dynamic"
    handler, handler_kind = ("", "unknown")
    if len(node.args) > 1:
        handler, handler_kind = _resolve_handler(node.args[1])
    phase: Optional[int] = 0
    label = ""
    for kw in node.keywords:
        if kw.arg == "phase":
            phase = (kw.value.value
                     if isinstance(kw.value, ast.Constant)
                     and isinstance(kw.value.value, int) else None)
        elif kw.arg == "label" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            label = kw.value.value
    return ScheduleSite(node=node, method=bare, delay_kind=delay_kind,
                        phase=phase, handler=handler,
                        handler_kind=handler_kind, label=label)


def _collect_facts(fn: FunctionNode, imports: Dict[str, str],
                   mutable_globals: Set[str]) -> None:
    """One walk over ``fn``'s full subtree (nested defs included).

    Nested functions get their own :class:`FunctionNode`, but their
    facts and call sites are *also* attributed to the enclosing
    function: workload code routinely does its work inside a nested
    ``program()`` generator handed to ``system.run_program``, an
    indirect call no static graph can trace — subtree attribution is
    what keeps such functions on the worker-reachability closure.
    Rules de-duplicate the doubly-attributed fact nodes
    (:func:`innermost_facts`).
    """
    declared_global: Set[str] = set()
    local_names: Set[str] = set()

    # First pass: local bindings, so a local list named like a module
    # global is not mistaken for shared state.
    for node in walk_body(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local_names.add(node.id)
    args = getattr(fn.node, "args", None)
    if isinstance(args, ast.arguments):
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)):
            local_names.add(a.arg)
        if args.vararg:
            local_names.add(args.vararg.arg)
        if args.kwarg:
            local_names.add(args.kwarg.arg)
    # A name both declared global and stored is a rebinding write.
    shadowed = (local_names - declared_global)

    def refers_to_global(name: str) -> bool:
        if name in declared_global:
            return True
        return name in mutable_globals and name not in shadowed

    for node in walk_body(fn.node):
        if isinstance(node, ast.Call):
            func = node.func
            bare = ""
            dotted = ""
            is_method = False
            if isinstance(func, ast.Attribute):
                bare = func.attr
                dotted = _dotted(func)
                is_method = True
            elif isinstance(func, ast.Name):
                bare = func.id
                dotted = func.id
            if bare:
                fn.calls.append(CallSite(node=node, bare=bare,
                                         dotted=dotted, is_method=is_method))
                site = _schedule_site(node, bare, dotted)
                if site is not None:
                    fn.schedule_sites.append(site)
            # In-place mutation of instance state: self.x.append(...).
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"):
                fn.attr_writes.setdefault(func.value.attr, []).append(
                    (node, ATTR_MUTATE))
            # open() on a fn/cached path.
            if isinstance(func, ast.Name) and func.id == "open" \
                    and "open" not in shadowed:
                fn.open_calls.append(node)
            # next(counter) advances a module-global iterator in place.
            if (isinstance(func, ast.Name) and func.id == "next"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and refers_to_global(node.args[0].id)):
                fn.global_writes.setdefault(
                    node.args[0].id, []).append(node)
            # Mutating method on a module-level mutable global.
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and refers_to_global(func.value.id)):
                fn.global_writes.setdefault(func.value.id, []).append(node)
            # Process-global RNG stream.
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and imports.get(func.value.id) == "random"
                    and func.value.id not in shadowed
                    and func.attr in GLOBAL_RANDOM_FNS):
                fn.rng_calls.append(node)
        if _is_env_read(node):
            fn.env_reads.append(node)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)):
            fn.attr_reads.setdefault(node.attr, []).append(node)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if isinstance(node, ast.AugAssign):
                aug_kind = (ATTR_AUGADD if isinstance(node.op, ast.Add)
                            else ATTR_AUGOTHER)
            else:
                aug_kind = ATTR_ASSIGN
            for target in targets:
                # Instance-state writes through the literal ``self``.
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    fn.attr_writes.setdefault(target.attr, []).append(
                        (node, aug_kind))
                elif (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == "self"):
                    fn.attr_writes.setdefault(
                        target.value.attr, []).append((node, ATTR_SUBSCRIPT))
                # ``<stat>.value`` read-modify-write (MC2603 fact).
                if (isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Attribute)
                        and target.attr == "value"):
                    fn.stat_value_rmw.append((node, _dotted(target)))
                # ``d[... sim.now ...] = v`` (MC2602 fact).
                if (isinstance(target, ast.Subscript)
                        and _contains_now(target.slice)):
                    fn.now_key_stores.append(node)
            for target in targets:
                # Rebinding a declared-global name.
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    fn.global_writes.setdefault(target.id, []).append(node)
                # Subscript/attribute store into a module-level mutable.
                elif (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and refers_to_global(target.value.id)):
                    fn.global_writes.setdefault(
                        target.value.id, []).append(node)
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id in mutable_globals and node.id not in shadowed):
            fn.global_reads.setdefault(node.id, []).append(node)


def walk_body(fn_node: ast.AST) -> Iterable[ast.AST]:
    """Every node below the def line (the full subtree, decorators too)."""
    for child in ast.iter_child_nodes(fn_node):
        yield from ast.walk(child)


def innermost_facts(graph: "CallGraph", reached: Iterable[str],
                    fact_of: Callable[[FunctionNode],
                                      Iterable[tuple]],
                    ) -> List["AttributedFact"]:
    """De-duplicate subtree-attributed facts across nesting levels.

    ``fact_of`` yields ``(ast node, label)`` pairs.  A fact node inside
    a nested def is attributed both to the nested function and to every
    enclosing one; report it once, against the innermost *reached*
    function (longest qualname wins).
    """
    best: Dict[int, AttributedFact] = {}
    for qualname in reached:
        fn = graph.functions.get(qualname)
        if fn is None:
            continue
        for node, label in fact_of(fn):
            prior = best.get(id(node))
            if prior is None or len(fn.qualname) > len(prior.fn.qualname):
                best[id(node)] = AttributedFact(fn=fn, node=node, label=label)
    ordered = sorted(best.values(),
                     key=lambda f: (f.fn.module.path,
                                    getattr(f.node, "lineno", 0),
                                    getattr(f.node, "col_offset", 0)))
    return ordered


@dataclass
class AttributedFact:
    """One fact node paired with the function it is reported against."""

    fn: FunctionNode
    node: ast.AST
    label: str = ""


class CallGraph:
    """Functions, classes and call edges for a set of parsed modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.by_name: Dict[str, List[FunctionNode]] = {}
        #: class qualname -> list of method FunctionNodes
        self.classes: Dict[str, List[FunctionNode]] = {}
        #: class bare name -> class qualnames (for Cls() constructor edges)
        self.class_names: Dict[str, List[str]] = {}
        #: class qualname -> base-class bare names (for role inheritance)
        self.class_bases: Dict[str, List[str]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}   # module path -> import map
        self.mutable_globals: Dict[str, Set[str]] = {}  # module path -> names

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, modules: Sequence[Module],
              packages: Optional[Sequence[str]] = None) -> "CallGraph":
        """Build the graph over ``modules``.

        ``packages`` restricts collection to modules whose dotted name
        matches one of the prefixes (the taint pass scopes itself to
        the poison-critical packages this way).
        """
        graph = cls()
        for module in modules:
            if packages is not None and not any(
                    module.package == pkg
                    or module.package.startswith(pkg + ".")
                    for pkg in packages):
                continue
            graph._add_module(module)
        return graph

    def _add_module(self, module: Module) -> None:
        imports = module_imports(module.tree)
        mutable = module_mutable_globals(module)
        self.imports[module.path] = imports
        self.mutable_globals[module.path] = mutable

        def walk(body, prefix: str, class_name: str, parent_fn: str) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    fn = FunctionNode(qualname=qualname, name=node.name,
                                      module=module, node=node,
                                      class_name=class_name,
                                      parent=parent_fn)
                    _collect_facts(fn, imports, mutable)
                    self.functions[qualname] = fn
                    self.by_name.setdefault(node.name, []).append(fn)
                    if class_name:
                        self.classes.setdefault(prefix, []).append(fn)
                    walk(node.body, qualname, "", qualname)
                elif isinstance(node, ast.ClassDef):
                    class_qual = f"{prefix}.{node.name}"
                    self.class_names.setdefault(node.name, []).append(
                        class_qual)
                    self.class_bases[class_qual] = [
                        base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else "?"
                        for base in node.bases]
                    walk(node.body, class_qual, node.name, parent_fn)

        walk(module.tree.body, module.package, "", "")

    # -- resolution --------------------------------------------------------
    def resolve_call(self, caller: FunctionNode,
                     site: CallSite) -> List[FunctionNode]:
        """Possible targets of one call site, most precise rule first.

        Returns an empty list for calls into code outside the graph
        (stdlib, builtins) — absent knowledge is treated as "no facts",
        which is safe because rules flag facts, not edges.
        """
        imports = self.imports.get(caller.module.path, {})
        if not site.is_method:
            name = site.bare
            # Constructor: Cls() -> Cls.__init__ (same module or imported).
            for class_qual in self.class_names.get(name, ()):
                init = self.functions.get(f"{class_qual}.__init__")
                if init is not None:
                    return [init]
            # Same-module function.
            same = [fn for fn in self.by_name.get(name, ())
                    if fn.module.path == caller.module.path]
            if same:
                return same
            # from X import name
            origin = imports.get(name)
            if origin is not None:
                target = self.functions.get(origin)
                if target is not None:
                    return [target]
                # Imported class: edge to its __init__.
                init = self.functions.get(f"{origin}.__init__")
                if init is not None:
                    return [init]
            # Fall back: module-level functions with this bare name.
            return [fn for fn in self.by_name.get(name, ())
                    if not fn.class_name]
        # Method-style call: module attribute first (ops.compute -> the
        # repro.isa.ops.compute function), else bare-name matching.
        parts = site.dotted.split(".")
        if len(parts) == 2:
            origin = imports.get(parts[0])
            if origin is not None:
                target = self.functions.get(f"{origin}.{site.bare}")
                if target is not None:
                    return [target]
                init = self.functions.get(f"{origin}.{site.bare}.__init__")
                if init is not None:
                    return [init]
        return list(self.by_name.get(site.bare, ()))

    def resolve_handler(self, scheduler: FunctionNode,
                        site: ScheduleSite) -> List[FunctionNode]:
        """Functions a schedule site's callback may invoke.

        Same-class methods win (``self._meth`` and the overwhelmingly
        common ``lambda: self._meth(...)``); nested local defs resolve
        to their synthetic node under the scheduling function; anything
        else falls back to bare-name matching — the same sound
        over-approximation :meth:`resolve_call` uses.
        """
        if not site.handler or site.handler == "<lambda>":
            return []
        if site.handler_kind == "local":
            # Nested def: its qualname hangs off the enclosing function.
            for owner in (scheduler.qualname, scheduler.parent):
                if not owner:
                    continue
                target = self.functions.get(f"{owner}.{site.handler}")
                if target is not None:
                    return [target]
            return [fn for fn in self.by_name.get(site.handler, ())
                    if not fn.class_name]
        if scheduler.class_name:
            class_qual = scheduler.qualname.rsplit(".", 1)[0]
            target = self.functions.get(f"{class_qual}.{site.handler}")
            if target is not None:
                return [target]
        return list(self.by_name.get(site.handler, ()))

    # -- queries -----------------------------------------------------------
    def reachable(self, roots: Iterable[FunctionNode],
                  skip: Optional[Callable[[str], bool]] = None,
                  ) -> Dict[str, List[str]]:
        """Transitive closure from ``roots`` over resolved call edges.

        Returns ``{reached qualname: [path of qualnames from a root]}``
        so rules can explain *why* a function is on a worker path.
        ``skip(bare_name)`` prunes edges (e.g. the taint pass's
        non-conferring primitives).
        """
        out: Dict[str, List[str]] = {}
        stack: List[FunctionNode] = []
        for root in roots:
            if root.qualname not in out:
                out[root.qualname] = [root.qualname]
                stack.append(root)
        while stack:
            fn = stack.pop()
            for site in fn.calls:
                if skip is not None and skip(site.bare):
                    continue
                for target in self.resolve_call(fn, site):
                    if target.qualname in out:
                        continue
                    out[target.qualname] = (out[fn.qualname]
                                            + [target.qualname])
                    stack.append(target)
        return out

    def propagate_up(self, seed: Callable[[FunctionNode], bool],
                     skip: Optional[Callable[[str], bool]] = None,
                     ) -> Set[str]:
        """Callee->caller fixed point over **bare-name** edges.

        A function holds the property when ``seed`` says so or when any
        bare-name callee (minus ``skip``-ped names) holds it — exactly
        the over-approximation the MC2301 awareness walk uses, hoisted
        here so every interprocedural rule shares one implementation.
        """
        holds: Set[str] = {fn.qualname for fn in self.functions.values()
                           if seed(fn)}
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                if fn.qualname in holds:
                    continue
                for site in fn.calls:
                    if skip is not None and skip(site.bare):
                        continue
                    if any(t.qualname in holds
                           for t in self.by_name.get(site.bare, ())):
                        holds.add(fn.qualname)
                        changed = True
                        break
        return holds


class ProjectContext:
    """Whole-program facts shared by every interprocedural rule.

    The engine builds one context per run and hands it to each project
    rule, so the full call graph and the worker-reachability closure
    are computed once, not once per rule family.  Everything is lazy —
    a run selecting only syntactic rules never builds the graph.
    """

    def __init__(self, modules: Sequence[Module]):
        self.modules = list(modules)
        self._graph: Optional[CallGraph] = None
        self._workers: Optional[Dict[str, List[ast.Call]]] = None
        self._reached: Optional[Dict[str, List[str]]] = None
        self._handlers: Optional[Dict[str, List[tuple]]] = None

    @property
    def graph(self) -> CallGraph:
        """Call graph over every analyzed module."""
        if self._graph is None:
            self._graph = CallGraph.build(self.modules)
        return self._graph

    @property
    def workers(self) -> Dict[str, List[ast.Call]]:
        """``SimPoint``-dispatched functions: qualname -> call sites."""
        if self._workers is None:
            self._workers = worker_roots(self.modules, self.graph)
        return self._workers

    @property
    def reached(self) -> Dict[str, List[str]]:
        """Worker-reachability closure: qualname -> path from a root."""
        if self._reached is None:
            roots = [self.graph.functions[q] for q in sorted(self.workers)
                     if q in self.graph.functions]
            self._reached = self.graph.reachable(roots)
        return self._reached

    @property
    def handlers(self) -> Dict[str, List[tuple]]:
        """Event handlers: handler qualname -> [(scheduler, site)].

        A *handler* is any function some schedule site's callback
        resolves to — the set of code that the engine may dispatch at
        an arbitrary tie-break position.  The MC26xx race rules pair
        handlers of one class against each other through this map.
        """
        if self._handlers is None:
            out: Dict[str, List[tuple]] = {}
            for fn in self.graph.functions.values():
                for site in fn.schedule_sites:
                    for target in self.graph.resolve_handler(fn, site):
                        out.setdefault(target.qualname, []).append(
                            (fn, site))
            self._handlers = out
        return self._handlers

    def route(self, qualname: str) -> str:
        """Human-readable worker path, e.g. ``sweep -> run -> helper``."""
        path = self.reached.get(qualname, [qualname])
        return " -> ".join(q.rsplit(".", 1)[-1] for q in path)


def worker_roots(modules: Sequence[Module],
                 graph: CallGraph) -> Dict[str, List[ast.Call]]:
    """Functions dispatched through ``SimPoint(fn, ...)``.

    Scans every module (not just graph members) for ``SimPoint``
    constructions and resolves the first argument to graph functions.
    Returns ``{qualname: [SimPoint call nodes]}`` — the roots of every
    worker/cached execution path.
    """
    roots: Dict[str, List[ast.Call]] = {}
    for module in modules:
        imports = module_imports(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else "")
            if name != "SimPoint":
                continue
            target = node.args[0]
            if isinstance(target, ast.Name):
                origin = imports.get(target.id)
                candidates = []
                if origin is not None and origin in graph.functions:
                    candidates = [graph.functions[origin]]
                else:
                    candidates = [fn for fn in graph.by_name.get(
                        target.id, ()) if not fn.class_name]
                for fn in candidates:
                    roots.setdefault(fn.qualname, []).append(node)
            elif isinstance(target, ast.Attribute):
                dotted = _dotted(target)
                root_name = dotted.split(".")[0]
                origin = imports.get(root_name)
                qual = (f"{origin}.{target.attr}" if origin is not None
                        else dotted)
                if qual in graph.functions:
                    roots.setdefault(qual, []).append(node)
                else:
                    for fn in graph.by_name.get(target.attr, ()):
                        roots.setdefault(fn.qualname, []).append(node)
    return roots
