"""simsan — runtime sanitizer for the parallel sweep runner.

The fork-safety (MC24xx) and cache-soundness (MC25xx) rules prove sweep
purity *statically*, on the worker-reachability closure of the shared
call graph.  simsan is the matching *dynamic* oracle: with
``REPRO_SIMSAN=1`` the sweep runner (:mod:`repro.perf.runner`) and the
result cache (:mod:`repro.perf.cache`) route through the hooks below,
which

* snapshot the module-level globals of every loaded ``repro.*`` module
  around each dispatched point and flag any mutation — the runtime
  analogue of MC2401 (a forked worker mutating its copy-on-write image
  diverges silently from the serial run);
* audit every Nth cache hit (``REPRO_SIMSAN_PERIOD``, default 8) by
  recomputing the point and comparing against the stored value — the
  runtime analogue of MC2501 (a parameter influencing the result but
  missing from the cache key makes stale hits indistinguishable from
  fresh runs);
* harden the cache itself: a structurally corrupt store entry or a
  value failing the JSON round-trip contract (MC2502's analogue) is
  reported instead of silently degraded to a miss.

Modes: ``REPRO_SIMSAN=1`` (or ``on``/``strict``) raises
:class:`~repro.common.errors.SanitizerError`; ``REPRO_SIMSAN=warn``
prints to stderr and continues.  Anything else (including unset)
disables every hook; the instrumented call sites check :func:`enabled`
first, so the sanitizer costs nothing when off.

The orchestration layer itself (``repro.perf``) and this package are
excluded from the global snapshot for the same reason the static rules
exempt them (see :data:`repro.analysis.rules.forksafety.INFRA_MODULES`):
their memoization state is process-local by design.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Callable, Dict, List, Tuple

from repro.common.errors import SanitizerError

#: Module-name prefixes excluded from the global-mutation snapshot —
#: must stay in sync with the static exemption in
#: :data:`repro.analysis.rules.forksafety.INFRA_MODULES`.
EXCLUDE_PREFIXES = ("repro.perf", "repro.analysis", "repro.resilience")

#: Fingerprints longer than this are truncated: a mutation almost
#: always changes the head of the repr, and unbounded reprs of large
#: result tables would dominate the sanitizer's cost.
_REPR_CAP = 512

_DEFAULT_PERIOD = 8

#: Cache hits observed since process start (drives the audit period).
_hit_count = 0


def mode() -> str:
    """``"strict"``, ``"warn"``, or ``"off"`` from ``REPRO_SIMSAN``."""
    raw = os.environ.get("REPRO_SIMSAN", "").strip().lower()
    if raw in ("1", "on", "strict", "true"):
        return "strict"
    if raw == "warn":
        return "warn"
    return "off"


def enabled() -> bool:
    """Whether any sanitizer hook should run."""
    return mode() != "off"


def period() -> int:
    """Audit every Nth cache hit (``REPRO_SIMSAN_PERIOD``, min 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_SIMSAN_PERIOD",
                                         str(_DEFAULT_PERIOD))))
    except ValueError:
        return _DEFAULT_PERIOD


def report(kind: str, message: str) -> None:
    """Surface one violation according to the active mode."""
    text = f"simsan[{kind}]: {message}"
    if mode() == "warn":
        print(text, file=sys.stderr)
        return
    raise SanitizerError(text)


def _fingerprint(value: Any) -> str:
    try:
        return f"{type(value).__name__}:{repr(value)[:_REPR_CAP]}"
    except Exception:  # a hostile __repr__ must not kill the sweep
        return f"{type(value).__name__}:<unrepresentable>"


def _watched_modules(extra: Tuple[str, ...] = ()) -> List[str]:
    return [name for name in sys.modules
            if (name == "repro" or name.startswith("repro.")
                or name in extra)
            and not any(name == p or name.startswith(p + ".")
                        for p in EXCLUDE_PREFIXES)]


def snapshot(extra: Tuple[str, ...] = ()) -> Dict[str, Dict[str, str]]:
    """Fingerprint the globals of every loaded, watched repro module.

    ``extra`` names additional modules to watch — the dispatched
    point's own module, which is sim code by definition even when it
    lives outside the ``repro`` package (workload fixtures, tests).
    """
    out: Dict[str, Dict[str, str]] = {}
    for name in _watched_modules(extra):
        module = sys.modules.get(name)
        if module is None:
            continue
        out[name] = {attr: _fingerprint(value)
                     for attr, value in vars(module).items()
                     if not attr.startswith("__")}
    return out


def diff_snapshots(before: Dict[str, Dict[str, str]],
                   after: Dict[str, Dict[str, str]]
                   ) -> List[Tuple[str, str, str]]:
    """(module, name, change) triples for globals that changed.

    Only modules present in ``before`` are compared: a module first
    imported *during* the call brings all its globals with it, which is
    an import side effect, not a mutation.  For the same reason a
    *created* attribute whose value is a module is ignored — importing
    ``pkg.sub`` lazily binds ``sub`` on the parent package.  Within a
    pre-existing module, everything else counts.
    """
    changes: List[Tuple[str, str, str]] = []
    for mod_name, old in before.items():
        new = after.get(mod_name)
        if new is None:  # module vanished: del sys.modules[...] — flag
            changes.append((mod_name, "*", "module removed"))
            continue
        for attr in sorted(set(old) | set(new)):
            if attr not in old:
                if new[attr].startswith("module:"):
                    continue  # lazy submodule import, not a mutation
                changes.append((mod_name, attr, "created"))
            elif attr not in new:
                changes.append((mod_name, attr, "deleted"))
            elif old[attr] != new[attr]:
                changes.append((mod_name, attr, "mutated"))
    return changes


def checked_call(fn: Callable[..., Any], args: Tuple, kwargs: Dict[str, Any],
                 name: str) -> Any:
    """Run one sweep point with the global-mutation audit around it."""
    extra = (getattr(fn, "__module__", None) or "",)
    before = snapshot(extra)
    value = fn(*args, **kwargs)
    changes = diff_snapshots(before, snapshot(extra))
    if changes:
        detail = "; ".join(f"{mod}.{attr} {change}"
                           for mod, attr, change in changes[:5])
        more = len(changes) - 5
        if more > 0:
            detail += f"; and {more} more"
        report("global-write",
               f"sim point {name} mutated module-level state ({detail}); "
               f"forked workers mutate a private copy, so parallel and "
               f"serial sweeps diverge (static rule: MC2401)")
    return value


def should_audit_hit() -> bool:
    """True on every Nth cache hit (process-local counter)."""
    global _hit_count
    _hit_count += 1
    return _hit_count % period() == 0


def _json_normal(value: Any) -> Any:
    return json.loads(json.dumps(value, sort_keys=True, allow_nan=False))


def audit_hit(name: str, key: str, cached: Any,
              recompute: Callable[[], Any]) -> None:
    """Recompute a cache hit and compare against the stored value.

    ``cached`` already survived one JSON round trip at ``put`` time, so
    the fresh value is normalized the same way before comparison.
    """
    try:
        fresh = _json_normal(recompute())
    except (TypeError, ValueError) as exc:
        report("cache-audit",
               f"recomputed value for {name} is no longer "
               f"JSON-representable ({exc}) although key {key[:12]}… holds "
               f"a cached result (static rule: MC2502)")
        return
    if fresh != cached:
        report("cache-audit",
               f"cache hit for {name} (key {key[:12]}…) differs from a "
               f"fresh recompute; some input that influences the result "
               f"is missing from the cache key (static rule: MC2501)")


def check_payload(path: str, payload: Any) -> None:
    """Validate the structure of a deserialized cache entry."""
    if not (isinstance(payload, dict)
            and "fn" in payload and "value" in payload):
        report("cache-entry",
               f"corrupt cache entry {path}: expected an object with "
               f"'fn' and 'value' keys")


def report_unroundtrippable(fn_name: str, reason: str) -> None:
    """A result failed the cache's JSON round-trip contract."""
    report("json-round-trip",
           f"result of {fn_name} violates the JSON round-trip contract "
           f"({reason}); it cannot be cached bit-identically — return "
           f"plain dicts/lists/scalars (static rule: MC2502)")
