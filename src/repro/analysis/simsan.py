"""simsan — runtime sanitizer for the parallel sweep runner.

The fork-safety (MC24xx) and cache-soundness (MC25xx) rules prove sweep
purity *statically*, on the worker-reachability closure of the shared
call graph.  simsan is the matching *dynamic* oracle: with
``REPRO_SIMSAN=1`` the sweep runner (:mod:`repro.perf.runner`) and the
result cache (:mod:`repro.perf.cache`) route through the hooks below,
which

* snapshot the module-level globals of every loaded ``repro.*`` module
  around each dispatched point and flag any mutation — the runtime
  analogue of MC2401 (a forked worker mutating its copy-on-write image
  diverges silently from the serial run);
* audit every Nth cache hit (``REPRO_SIMSAN_PERIOD``, default 8) by
  recomputing the point and comparing against the stored value — the
  runtime analogue of MC2501 (a parameter influencing the result but
  missing from the cache key makes stale hits indistinguishable from
  fresh runs);
* harden the cache itself: a structurally corrupt store entry or a
  value failing the JSON round-trip contract (MC2502's analogue) is
  reported instead of silently degraded to a miss.

A fourth hook has its own switch: ``REPRO_TIE_ORDER`` (see the
tie-order section below) perturbs the engine's equal-cycle event
ordering and, in paired mode, runs every sweep point under several
orders and diffs the results and full StatGroup trees — the runtime
analogue of the same-cycle race rules (MC2601).  It works without
``REPRO_SIMSAN`` set; violations still honour ``REPRO_SIMSAN=warn``.

A fifth hook, ``REPRO_SIMSAN=own`` (the ownership-audit section
below), stamps every ``@shard_local`` instance with its owning shard at
construction and audits attribute mutations against the declared
``@rendezvous`` ports — the runtime analogue of the MC27xx
shard-ownership rules (see :mod:`repro.analysis.ownership`).

Modes: ``REPRO_SIMSAN=1`` (or ``on``/``strict``) raises
:class:`~repro.common.errors.SanitizerError`; ``own`` does the same and
additionally arms the ownership audit; ``REPRO_SIMSAN=warn`` prints to
stderr and continues.  Anything else (including unset) disables every
hook; the instrumented call sites check :func:`enabled` first, so the
sanitizer costs nothing when off.

The orchestration layer itself (``repro.perf``) and this package are
excluded from the global snapshot for the same reason the static rules
exempt them (see :data:`repro.analysis.rules.forksafety.INFRA_MODULES`):
their memoization state is process-local by design.
"""

from __future__ import annotations

import json
import os
import sys
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SanitizerError

#: Module-name prefixes excluded from the global-mutation snapshot —
#: must stay in sync with the static exemption in
#: :data:`repro.analysis.rules.forksafety.INFRA_MODULES`.
EXCLUDE_PREFIXES = ("repro.perf", "repro.analysis", "repro.resilience")

#: Fingerprints longer than this are truncated: a mutation almost
#: always changes the head of the repr, and unbounded reprs of large
#: result tables would dominate the sanitizer's cost.
_REPR_CAP = 512

_DEFAULT_PERIOD = 8

#: Cache hits observed since process start (drives the audit period).
_hit_count = 0


def mode() -> str:
    """``"strict"``, ``"warn"``, or ``"off"`` from ``REPRO_SIMSAN``."""
    raw = os.environ.get("REPRO_SIMSAN", "").strip().lower()
    if raw in ("1", "on", "strict", "true", "own"):
        return "strict"
    if raw == "warn":
        return "warn"
    return "off"


def enabled() -> bool:
    """Whether any sanitizer hook should run."""
    return mode() != "off"


def period() -> int:
    """Audit every Nth cache hit (``REPRO_SIMSAN_PERIOD``, min 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_SIMSAN_PERIOD",
                                         str(_DEFAULT_PERIOD))))
    except ValueError:
        return _DEFAULT_PERIOD


def report(kind: str, message: str) -> None:
    """Surface one violation according to the active mode."""
    text = f"simsan[{kind}]: {message}"
    if mode() == "warn":
        print(text, file=sys.stderr)
        return
    raise SanitizerError(text)


def _fingerprint(value: Any) -> str:
    try:
        return f"{type(value).__name__}:{repr(value)[:_REPR_CAP]}"
    except Exception:  # a hostile __repr__ must not kill the sweep
        return f"{type(value).__name__}:<unrepresentable>"


def _watched_modules(extra: Tuple[str, ...] = ()) -> List[str]:
    return [name for name in sys.modules
            if (name == "repro" or name.startswith("repro.")
                or name in extra)
            and not any(name == p or name.startswith(p + ".")
                        for p in EXCLUDE_PREFIXES)]


def snapshot(extra: Tuple[str, ...] = ()) -> Dict[str, Dict[str, str]]:
    """Fingerprint the globals of every loaded, watched repro module.

    ``extra`` names additional modules to watch — the dispatched
    point's own module, which is sim code by definition even when it
    lives outside the ``repro`` package (workload fixtures, tests).
    """
    out: Dict[str, Dict[str, str]] = {}
    for name in _watched_modules(extra):
        module = sys.modules.get(name)
        if module is None:
            continue
        out[name] = {attr: _fingerprint(value)
                     for attr, value in vars(module).items()
                     if not attr.startswith("__")}
    return out


def diff_snapshots(before: Dict[str, Dict[str, str]],
                   after: Dict[str, Dict[str, str]]
                   ) -> List[Tuple[str, str, str]]:
    """(module, name, change) triples for globals that changed.

    Only modules present in ``before`` are compared: a module first
    imported *during* the call brings all its globals with it, which is
    an import side effect, not a mutation.  For the same reason a
    *created* attribute whose value is a module is ignored — importing
    ``pkg.sub`` lazily binds ``sub`` on the parent package.  Within a
    pre-existing module, everything else counts.
    """
    changes: List[Tuple[str, str, str]] = []
    for mod_name, old in before.items():
        new = after.get(mod_name)
        if new is None:  # module vanished: del sys.modules[...] — flag
            changes.append((mod_name, "*", "module removed"))
            continue
        for attr in sorted(set(old) | set(new)):
            if attr not in old:
                if new[attr].startswith("module:"):
                    continue  # lazy submodule import, not a mutation
                changes.append((mod_name, attr, "created"))
            elif attr not in new:
                changes.append((mod_name, attr, "deleted"))
            elif old[attr] != new[attr]:
                changes.append((mod_name, attr, "mutated"))
    return changes


def checked_call(fn: Callable[..., Any], args: Tuple, kwargs: Dict[str, Any],
                 name: str) -> Any:
    """Run one sweep point with the global-mutation audit around it."""
    extra = (getattr(fn, "__module__", None) or "",)
    before = snapshot(extra)
    value = fn(*args, **kwargs)
    changes = diff_snapshots(before, snapshot(extra))
    if changes:
        detail = "; ".join(f"{mod}.{attr} {change}"
                           for mod, attr, change in changes[:5])
        more = len(changes) - 5
        if more > 0:
            detail += f"; and {more} more"
        report("global-write",
               f"sim point {name} mutated module-level state ({detail}); "
               f"forked workers mutate a private copy, so parallel and "
               f"serial sweeps diverge (static rule: MC2401)")
    return value


def should_audit_hit() -> bool:
    """True on every Nth cache hit (process-local counter)."""
    global _hit_count
    _hit_count += 1
    return _hit_count % period() == 0


def _json_normal(value: Any) -> Any:
    return json.loads(json.dumps(value, sort_keys=True, allow_nan=False))


def audit_hit(name: str, key: str, cached: Any,
              recompute: Callable[[], Any]) -> None:
    """Recompute a cache hit and compare against the stored value.

    ``cached`` already survived one JSON round trip at ``put`` time, so
    the fresh value is normalized the same way before comparison.
    """
    try:
        fresh = _json_normal(recompute())
    except (TypeError, ValueError) as exc:
        report("cache-audit",
               f"recomputed value for {name} is no longer "
               f"JSON-representable ({exc}) although key {key[:12]}… holds "
               f"a cached result (static rule: MC2502)")
        return
    if fresh != cached:
        report("cache-audit",
               f"cache hit for {name} (key {key[:12]}…) differs from a "
               f"fresh recompute; some input that influences the result "
               f"is missing from the cache key (static rule: MC2501)")


def check_payload(path: str, payload: Any) -> None:
    """Validate the structure of a deserialized cache entry."""
    if not (isinstance(payload, dict)
            and "fn" in payload and "value" in payload):
        report("cache-entry",
               f"corrupt cache entry {path}: expected an object with "
               f"'fn' and 'value' keys")


def report_unroundtrippable(fn_name: str, reason: str) -> None:
    """A result failed the cache's JSON round-trip contract."""
    report("json-round-trip",
           f"result of {fn_name} violates the JSON round-trip contract "
           f"({reason}); it cannot be cached bit-identically — return "
           f"plain dicts/lists/scalars (static rule: MC2502)")


# --------------------------------------------------------------------------
# Tie-order perturbation (the MC26xx dynamic oracle)
#
# The engine's tie-break hook permutes the pop order of equal-cycle
# events (see repro.sim.engine).  No simulation result may depend on
# that order; ``REPRO_TIE_ORDER`` makes the claim testable:
#
#   REPRO_TIE_ORDER=lifo          run everything under one perturbed order
#   REPRO_TIE_ORDER=fifo,lifo     *paired* mode: run every sweep point
#   REPRO_TIE_ORDER=paired        under each listed order (``paired`` is
#   REPRO_TIE_ORDER=fifo,seeded:7 shorthand for ``fifo,lifo``) and diff
#                                 the results and full StatGroup trees
#
# A divergence is a confirmed same-cycle race — the dynamic counterpart
# of the static MC2601 rule.  The comparison names the first divergent
# stat leaf and, from the per-order (cycle, label) event streams, the
# first cycle whose fired-event multiset differs (a pure within-cycle
# permutation is expected and ignored).  Violations route through
# :func:`report` — strict by default, ``REPRO_SIMSAN=warn`` demotes.

#: Tie-order env values meaning "off" (mirrors REPRO_SIMSAN's offs).
_TIE_OFF = ("", "0", "off", "none", "false")

#: Per-run cap on captured (cycle, label) event records.  Beyond it the
#: stream is truncated and divergence localisation degrades gracefully
#: (the stat-tree diff still decides pass/fail).
_TIE_EVENT_CAP = 2_000_000

#: Events listed per side when naming a divergent cycle.
_TIE_DETAIL_CAP = 6


def tie_order_spec() -> List[str]:
    """Parsed ``REPRO_TIE_ORDER``: a list of order names (may be empty).

    One name installs that order globally; two or more trigger paired
    mode.  Malformed names raise :class:`ConfigError` here, at parse
    time, not mid-sweep.
    """
    raw = os.environ.get("REPRO_TIE_ORDER", "").strip().lower()
    if raw in _TIE_OFF:
        return []
    if raw == "paired":
        return ["fifo", "lifo"]
    orders = [token.strip() for token in raw.split(",") if token.strip()]
    for order in orders:
        tie_break_for(order)  # validate every token up front
    return orders


def tie_break_for(order: str) -> Optional[Callable[[int], int]]:
    """The engine tie-break hook for one order name.

    ``fifo`` is ``None`` (the engine's native order), ``lifo`` reverses
    equal-cycle pops, ``seeded:N`` shuffles them by a Weyl/golden-ratio
    hash of the insertion sequence — three cheap, deterministic
    permutations that disagree with each other wherever order can leak.
    Keys stay far below the engine's phase stride (2**40).
    """
    if order == "fifo":
        return None
    if order == "lifo":
        return lambda seq: -seq
    if order.startswith("seeded:"):
        try:
            seed = int(order.split(":", 1)[1])
        except ValueError:
            raise ConfigError(
                f"bad REPRO_TIE_ORDER entry {order!r}: seeded:N needs an "
                f"integer seed")
        return lambda seq, _s=seed: ((seq + _s) * 0x9E3779B1) & 0xFFFFFFFF
    raise ConfigError(
        f"unknown tie order {order!r}: expected fifo, lifo, or seeded:N")


def tie_call(fn: Callable[..., Any], args: Tuple,
             kwargs: Dict[str, Any]) -> Any:
    """Run one call under the single order ``REPRO_TIE_ORDER`` names."""
    from repro.sim import engine as sim_engine
    orders = tie_order_spec()
    previous = sim_engine.default_tie_break()
    sim_engine.set_default_tie_break(tie_break_for(orders[0]))
    try:
        return fn(*args, **kwargs)
    finally:
        sim_engine.set_default_tie_break(previous)


def _tie_run(order: str, fn: Callable[..., Any], args: Tuple,
             kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """One sub-run under ``order``, capturing stats trees and events.

    The StatGroup construction hook and the engine's default trace
    hook are installed *around* the call (and restored afterwards), so
    a sanitized inner call sees identical module state in its before
    and after snapshots — the capture itself must not read as a
    global write.
    """
    from repro.sim import engine as sim_engine
    from repro.sim import stats as sim_stats

    groups: List[Any] = []
    events: List[Tuple[int, str]] = []
    state = {"truncated": False}

    def _on_group(group: Any) -> None:
        groups.append(group)

    def _on_event(label: str, now: int) -> None:
        if len(events) < _TIE_EVENT_CAP:
            events.append((now, label))
        else:
            state["truncated"] = True

    prev_tie = sim_engine.default_tie_break()
    prev_trace = sim_engine.default_trace_hook()
    prev_groups = sim_stats.construction_hook()
    sim_engine.set_default_tie_break(tie_break_for(order))
    sim_engine.set_default_trace_hook(_on_event)
    sim_stats.set_construction_hook(_on_group)
    try:
        result = fn(*args, **kwargs)
    finally:
        sim_engine.set_default_tie_break(prev_tie)
        sim_engine.set_default_trace_hook(prev_trace)
        sim_stats.set_construction_hook(prev_groups)

    # Roots: captured groups that are nobody's child — compared whole,
    # so every counter, distribution, and child group participates.
    child_ids = set()
    for group in groups:
        child_ids.update(id(child) for child in group.children.values())
    roots = [group for group in groups if id(group) not in child_ids]
    trees = [root.to_dict(include_samples=True) for root in roots]
    return {"order": order, "result": result, "trees": trees,
            "events": events, "truncated": state["truncated"]}


def _tie_normal(value: Any) -> Any:
    """JSON-normalize for comparison; fall back to repr for oddballs."""
    try:
        return _json_normal(value)
    except (TypeError, ValueError):
        return repr(value)


def _first_diff(a: Any, b: Any, path: str = "$"):
    """(path, left, right) of the first differing leaf, or None."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return (f"{path}.{key}", "<absent>", b[key])
            if key not in b:
                return (f"{path}.{key}", a[key], "<absent>")
            found = _first_diff(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, list) and isinstance(b, list):
        for i in range(max(len(a), len(b))):
            if i >= len(a):
                return (f"{path}[{i}]", "<absent>", b[i])
            if i >= len(b):
                return (f"{path}[{i}]", a[i], "<absent>")
            found = _first_diff(a[i], b[i], f"{path}[{i}]")
            if found:
                return found
        return None
    return None if a == b else (path, a, b)


def _first_divergence(a: List[Tuple[int, str]], b: List[Tuple[int, str]]):
    """First cycle whose fired-event *multiset* differs between streams.

    Equal-cycle events firing in a different order is exactly what a
    tie-break is allowed to change; the schedules only truly diverge
    once some cycle fires different *work*.  Returns ``(cycle,
    only_in_a, only_in_b)`` label lists, or None when the streams agree
    cycle-for-cycle.
    """
    ia = ib = 0
    len_a, len_b = len(a), len(b)
    while ia < len_a or ib < len_b:
        cycle_a = a[ia][0] if ia < len_a else None
        cycle_b = b[ib][0] if ib < len_b else None
        if cycle_a is None or cycle_b is None or cycle_a != cycle_b:
            if cycle_a is not None and (cycle_b is None
                                        or cycle_a < cycle_b):
                return (cycle_a,
                        [label for _c, label in a[ia:ia + _TIE_DETAIL_CAP]],
                        [])
            return (cycle_b, [],
                    [label for _c, label in b[ib:ib + _TIE_DETAIL_CAP]])
        cycle = cycle_a
        labels_a: Counter = Counter()
        while ia < len_a and a[ia][0] == cycle:
            labels_a[a[ia][1]] += 1
            ia += 1
        labels_b: Counter = Counter()
        while ib < len_b and b[ib][0] == cycle:
            labels_b[b[ib][1]] += 1
            ib += 1
        if labels_a != labels_b:
            only_a = sorted((labels_a - labels_b).elements())
            only_b = sorted((labels_b - labels_a).elements())
            return (cycle, only_a[:_TIE_DETAIL_CAP],
                    only_b[:_TIE_DETAIL_CAP])
    return None


def _export_divergence(name: str, order_a: str, order_b: str,
                       payload: Dict[str, Any]) -> Optional[str]:
    """Drop a divergence report next to the obs traces, when tracing is on.

    Returns the written path (named in the violation message) or None
    when the obs runtime is unconfigured — the sanitizer never *requires*
    tracing, it only enriches its report when tracing is already active.
    """
    try:
        from repro.obs import runtime as obs_runtime
        if not obs_runtime.is_configured():
            return None
        from pathlib import Path
        config = obs_runtime.current_config()
        out_dir = Path((config.out_dir if config is not None else None)
                       or obs_runtime.DEFAULT_TRACE_DIR)
        out_dir.mkdir(parents=True, exist_ok=True)
        safe = name.replace("/", "_")
        path = out_dir / (f"tie-divergence.{safe}."
                          f"{order_a}-vs-{order_b}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=repr)
        return str(path)
    except OSError:
        return None


def _window(events: List[Tuple[int, str]], cycle: int,
            radius: int = 2) -> List[Tuple[int, str]]:
    """The slice of an event stream within ``radius`` cycles of ``cycle``."""
    return [(when, label) for when, label in events
            if cycle - radius <= when <= cycle + radius][:64]


def _compare_tie_runs(name: str, base: Dict[str, Any],
                      other: Dict[str, Any]) -> None:
    """Diff two sub-runs; report a tie-order violation on any mismatch."""
    problems: List[str] = []
    result_a = _tie_normal(base["result"])
    result_b = _tie_normal(other["result"])
    if result_a != result_b:
        where = _first_diff(result_a, result_b) or ("$", result_a, result_b)
        problems.append(
            f"result {where[0]}: {where[1]!r} != {where[2]!r}")
    if len(base["trees"]) != len(other["trees"]):
        problems.append(f"stat tree count {len(base['trees'])} != "
                        f"{len(other['trees'])}")
    else:
        for tree_a, tree_b in zip(base["trees"], other["trees"]):
            where = _first_diff(_tie_normal(tree_a), _tie_normal(tree_b))
            if where:
                problems.append(
                    f"stat {where[0]}: {where[1]!r} != {where[2]!r}")
                break
    if not problems:
        return

    divergence = _first_divergence(base["events"], other["events"])
    if divergence is not None:
        cycle, only_a, only_b = divergence
        locus = (f"first divergent cycle {cycle}: "
                 f"only[{base['order']}]={only_a}, "
                 f"only[{other['order']}]={only_b}")
    elif base["truncated"] or other["truncated"]:
        locus = (f"event streams truncated at {_TIE_EVENT_CAP} records; "
                 f"divergence lies past the capture cap")
    else:
        locus = ("event schedules agree cycle-for-cycle; a same-cycle "
                 "handler pair raced on shared state without changing "
                 "the schedule")
    payload = {
        "point": name,
        "orders": [base["order"], other["order"]],
        "problems": problems,
        "locus": locus,
        "events_truncated": base["truncated"] or other["truncated"],
    }
    if divergence is not None:
        payload["divergent_cycle"] = divergence[0]
        payload["window"] = {
            base["order"]: _window(base["events"], divergence[0]),
            other["order"]: _window(other["events"], divergence[0]),
        }
    artifact = _export_divergence(name, base["order"], other["order"],
                                  payload)
    detail = "; ".join(problems[:3])
    report("tie-order",
           f"sim point {name} is tie-order dependent "
           f"({base['order']} vs {other['order']}): {detail}; {locus}"
           + (f" [details: {artifact}]" if artifact else "")
           + " — equal-cycle dispatch order leaked into results "
             "(static family: MC26xx)")


# --------------------------------------------------------------------------
# Ownership audit (the MC27xx dynamic oracle)
#
# The MC27xx rules prove the per-channel partition statically, on the
# shared call graph.  ``REPRO_SIMSAN=own`` checks the same contract on a
# live simulation using the registries in :mod:`repro.sim.shard`:
#
# * every ``@shard_local`` class's ``__init__`` is wrapped to stamp the
#   new instance with its owner ``(domain, ident)`` — from the declared
#   key attribute (``channel_id``), or inherited from the component
#   whose constructor is on the stack (the BPQ, banks, and the DRAM
#   device model are built inside their owning controller's ``__init__``);
# * a sampling ``__setattr__`` (``REPRO_SIMSAN_OWN_SAMPLE``, default
#   every mutation) audits attribute writes: a write driven by a
#   different shard's component is allowed only when a declared
#   ``@rendezvous`` port is on the stack (MC2701's analogue), and a
#   stored *value* stamped with a different same-domain owner is a
#   retained cross-owner handle (MC2702's analogue);
# * ``Simulator.schedule`` is patched to flag a rendezvous-port callback
#   scheduled outside the shared-rendezvous phase (MC2703's analogue).
#
# Classes with closed ``__slots__`` (Bank, BpqEntry) cannot carry the
# owner stamp; their writes attribute to the enclosing stamped component
# on the stack, so cross-shard touches still surface.  Violations route
# through :func:`report` — ``own`` is a strict mode; set
# ``REPRO_SIMSAN=warn`` to demote (which also disables install, so
# combine warn-mode audits with an explicit install call in tests).

#: Frames walked when inheriting an owner at construction or
#: attributing a mutation to an actor.
_OWN_FRAME_CAP = 16

_own_state: Dict[str, Any] = {
    "installed": False,
    "inits": [],      # (cls, original __init__) pairs to restore
    "setattrs": [],   # classes that received the audit __setattr__
    "schedule": None,  # original Simulator.schedule
    "counter": 0,     # mutation sample counter
}


def ownership_enabled() -> bool:
    """Whether ``REPRO_SIMSAN=own`` requested the ownership audit."""
    return os.environ.get("REPRO_SIMSAN", "").strip().lower() == "own"


def own_sample() -> int:
    """Audit every Nth mutation (``REPRO_SIMSAN_OWN_SAMPLE``, min 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_SIMSAN_OWN_SAMPLE", "1")))
    except ValueError:
        return 1


def _infer_owner(obj: Any, domain: str, key: str,
                 frame: Any) -> Optional[Tuple[str, Any]]:
    """The owner of a just-constructed ``@shard_local`` instance.

    Priority: the instance's own key attribute; the singleton cpu shard
    for cpu-domain classes; else the nearest constructing component on
    the stack that is already stamped or carries the key attribute
    (``MemoryController.__init__`` sets ``channel_id`` before building
    its channel, so owned sub-objects inherit mid-construction).
    """
    from repro.sim import shard
    ident = getattr(obj, key, None)
    if ident is not None:
        return (domain, ident)
    if domain == shard.DOMAIN_CPU:
        return (domain, 0)
    depth = 0
    while frame is not None and depth < _OWN_FRAME_CAP:
        holder = frame.f_locals.get("self")
        if holder is not None and holder is not obj:
            owner = getattr(holder, shard.OWNER_SLOT, None)
            if owner is not None:
                return owner
            ident = getattr(holder, key, None)
            if ident is not None:
                return (domain, ident)
        frame = frame.f_back
        depth += 1
    return None


def _audit_mutation(obj: Any, name: str, value: Any, frame: Any) -> None:
    """Check one attribute write against the declared partition."""
    from repro.sim import shard
    owner = getattr(obj, shard.OWNER_SLOT, None)
    if owner is None:
        return  # mid-construction, or a slots class that cannot be stamped
    value_owner = (getattr(value, shard.OWNER_SLOT, None)
                   if value is not obj else None)
    if (value_owner is not None and value_owner[0] == owner[0]
            and value_owner != owner):
        report("ownership",
               f"{type(obj).__name__}.{name} (shard {owner}) now holds a "
               f"{type(value).__name__} owned by shard {value_owner}; a "
               f"retained cross-owner handle outlives the rendezvous that "
               f"produced it (static rule: MC2702)")
        return
    depth = 0
    while frame is not None and depth < _OWN_FRAME_CAP:
        if frame.f_code in shard.RENDEZVOUS_CODES:
            return  # the crossing runs inside a declared port
        actor = frame.f_locals.get("self")
        if actor is not None:
            if actor is obj:
                return  # self-mutation
            actor_owner = getattr(actor, shard.OWNER_SLOT, None)
            if actor_owner is None:
                return  # host-side wiring (System) or a shared component
            if actor_owner == owner:
                return  # same shard (owner mutating its sub-object)
            report("ownership",
                   f"{type(actor).__name__} (shard {actor_owner}) mutated "
                   f"{type(obj).__name__}.{name} (shard {owner}) outside "
                   f"a declared rendezvous port (static rule: MC2701)")
            return
        frame = frame.f_back
        depth += 1


def _wrap_init(cls: type, domain: str, key: str) -> bool:
    """Wrap ``cls``'s own ``__init__`` to stamp the owner; False if none."""
    import functools
    from repro.sim import shard
    orig = cls.__dict__.get("__init__")
    if orig is None:
        return False  # inherits __init__; the base's wrapper stamps

    @functools.wraps(orig)
    def stamped_init(self, *args, **kwargs):
        orig(self, *args, **kwargs)
        if getattr(self, shard.OWNER_SLOT, None) is None:
            owner = _infer_owner(self, domain, key, sys._getframe(1))
            if owner is not None:
                try:
                    object.__setattr__(self, shard.OWNER_SLOT, owner)
                except AttributeError:
                    pass  # closed __slots__: stays unstamped
    cls.__init__ = stamped_init
    _own_state["inits"].append((cls, orig))
    return True


def _inject_setattr(cls: type) -> bool:
    """Install the auditing ``__setattr__`` on ``cls``; False if it has one."""
    from repro.sim import shard
    if "__setattr__" in cls.__dict__:
        return False

    def audit_setattr(self, name, value):
        if name != shard.OWNER_SLOT:
            _own_state["counter"] += 1
            if _own_state["counter"] % own_sample() == 0:
                _audit_mutation(self, name, value, sys._getframe(1))
        object.__setattr__(self, name, value)
    cls.__setattr__ = audit_setattr
    _own_state["setattrs"].append(cls)
    return True


def install_ownership_audit() -> None:
    """Instrument every registered ``@shard_local`` class and the engine.

    Idempotent.  Only classes registered at install time are covered —
    import the modules under audit (the system package, test plants)
    before calling.  :func:`uninstall_ownership_audit` restores
    everything, so tests can install around a single simulation.
    """
    if _own_state["installed"]:
        return
    import functools
    import repro.system.system  # noqa: F401  (registers the component classes)
    from repro.analysis.ownership import RENDEZVOUS_PHASE
    from repro.sim import engine as sim_engine
    from repro.sim import shard

    for cls in list(shard.LOCAL_CLASSES):
        role = cls.__dict__.get(shard.ROLE_ATTR)
        if role is None or role[0] != "local":
            continue  # registry holds only locals, but stay defensive
        _, domain, key = role
        _wrap_init(cls, domain, key)
        _inject_setattr(cls)

    orig_schedule = sim_engine.Simulator.schedule

    @functools.wraps(orig_schedule)
    def audited_schedule(self, delay, callback, label="", phase=0):
        fn = getattr(callback, "__func__", callback)
        code = getattr(fn, "__code__", None)
        if code in shard.RENDEZVOUS_CODES and phase != RENDEZVOUS_PHASE:
            report("ownership",
                   f"rendezvous port '{shard.RENDEZVOUS_CODES[code]}' "
                   f"scheduled at phase {phase}, not the shared-rendezvous "
                   f"phase {RENDEZVOUS_PHASE}; its outcome would depend on "
                   f"the same-cycle tie-break (static rule: MC2703)")
        return orig_schedule(self, delay, callback, label=label, phase=phase)
    sim_engine.Simulator.schedule = audited_schedule
    _own_state["schedule"] = orig_schedule
    _own_state["installed"] = True


def uninstall_ownership_audit() -> None:
    """Undo :func:`install_ownership_audit` exactly."""
    if not _own_state["installed"]:
        return
    for cls, orig in _own_state["inits"]:
        cls.__init__ = orig
    for cls in _own_state["setattrs"]:
        del cls.__setattr__
    sim_engine = sys.modules.get("repro.sim.engine")
    if sim_engine is not None and _own_state["schedule"] is not None:
        sim_engine.Simulator.schedule = _own_state["schedule"]
    _own_state.update(installed=False, inits=[], setattrs=[],
                      schedule=None, counter=0)


def maybe_install_ownership() -> None:
    """Install the ownership audit when ``REPRO_SIMSAN=own`` asks for it."""
    if ownership_enabled():
        install_ownership_audit()


def paired_tie_call(fn: Callable[..., Any], args: Tuple,
                    kwargs: Dict[str, Any], name: str) -> Any:
    """Run one sweep point under every configured tie order and diff.

    Returns the first order's result (by convention ``fifo``, the
    production order).  Any mismatch in the JSON-normalized result or
    in any captured StatGroup tree is a confirmed same-cycle race and
    is routed through :func:`report`.
    """
    orders = tie_order_spec()
    base: Optional[Dict[str, Any]] = None
    for order in orders:
        run = _tie_run(order, fn, args, kwargs)
        if base is None:
            base = run
        else:
            _compare_tie_runs(name, base, run)
    assert base is not None  # orders is non-empty by contract
    return base["result"]
