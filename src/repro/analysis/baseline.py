"""Grandfathered-finding baseline.

The CI gate fails on *new* findings only: anything recorded in the
checked-in baseline file is reported as baselined and does not affect
the exit code.  Fingerprints deliberately exclude line numbers so that
unrelated edits above a grandfathered finding do not churn the baseline;
a finding is identified by its rule, file, the normalized text of the
offending line, and an occurrence index (for identical lines repeated in
one file).

The project policy (ISSUE 2) is that the baseline ships empty or
near-empty: real violations get fixed, and the rare deliberate exception
carries a ``justification`` string in the entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding
from repro.common.errors import ConfigError

VERSION = 1


def _normalize(snippet: str) -> str:
    return " ".join(snippet.split())


def _path_key(path: str) -> str:
    """Repo-relative, forward-slash path for fingerprinting.

    The analyzer may be invoked with absolute or relative paths; the
    fingerprint must not depend on which, or a baseline written from
    ``src/repro`` would not match a run over ``/abs/path/src/repro``.
    """
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path)
        except ValueError:  # different drive on Windows
            pass
    return path.replace(os.sep, "/")


def fingerprints(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    Occurrence indices are assigned in (path, line) order so the same
    set of findings always produces the same fingerprints regardless of
    rule execution order.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in ordered:
        key = (finding.rule, _path_key(finding.path),
               _normalize(finding.snippet))
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha1(
            "|".join((*key, str(index))).encode("utf-8")).hexdigest()
        out.append((finding, digest))
    return out


def load(path: str) -> Dict[str, Dict[str, str]]:
    """Read a baseline file: fingerprint -> entry dict.

    A missing file is an empty baseline; a malformed one is a hard
    configuration error (a truncated baseline must not silently admit
    every finding).
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        entries = data["entries"]
        return {e["fingerprint"]: e for e in entries}
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ConfigError(f"malformed baseline file {path!r}: {exc}")


def save(path: str, findings: Iterable[Finding]) -> int:
    """Write a canonical baseline covering ``findings``.

    Canonical means reproducible bytes: entries are sorted by
    ``(path, rule, snippet, fingerprint)`` — not by the line-number
    order findings happened to arrive in — so regenerating an unchanged
    baseline is a no-op diff.  Justifications on entries that survive
    the rewrite are carried over from the existing file (matched by
    fingerprint); a deliberate exception does not lose its audit trail
    just because the baseline was refreshed.  Returns the entry count.
    """
    try:
        existing = load(path)
    except ConfigError:
        existing = {}  # a corrupt file is being replaced wholesale
    entries = [
        {
            "fingerprint": digest,
            "rule": finding.rule,
            "path": _path_key(finding.path),
            "snippet": _normalize(finding.snippet),
            "justification": str(
                existing.get(digest, {}).get("justification", "")),
        }
        for finding, digest in fingerprints(findings)
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["snippet"],
                                e["fingerprint"]))
    payload = {"version": VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply(findings: List[Finding],
          baseline: Dict[str, Dict[str, str]]) -> List[Finding]:
    """Return findings with ``baselined`` set where fingerprints match."""
    from dataclasses import replace

    out: List[Finding] = []
    for finding, digest in fingerprints(findings):
        out.append(replace(finding, baselined=digest in baseline))
    return out


def diff(findings: Iterable[Finding],
         baseline: Dict[str, Dict[str, str]]
         ) -> Tuple[List[Finding], List[Dict[str, str]]]:
    """Compare current findings against a baseline: (new, fixed).

    ``new`` is every unsuppressed finding whose fingerprint the baseline
    does not contain — the reviewable delta a pull request introduces.
    ``fixed`` is every baseline entry no current finding matches — debt
    that has been paid off and should be dropped from the file.
    Suppressed findings are not "new" (the suppression is in source and
    MC2901 audits it), but they also cannot keep a baseline entry alive.
    """
    paired = fingerprints(findings)
    current = {digest for _, digest in paired}
    new = [finding for finding, digest in paired
           if digest not in baseline and not finding.suppressed]
    fixed = [entry for digest, entry in sorted(baseline.items())
             if digest not in current]
    return new, fixed
