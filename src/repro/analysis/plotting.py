"""Terminal plotting for figure data (no external dependencies).

The benchmark harness emits tab-aligned tables; these helpers render the
same row dicts as ASCII bar charts and line plots so a figure's *shape*
can be eyeballed straight from a terminal, like the paper's PNGs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def bar_chart(rows: Sequence[Dict[str, object]], label_key: str,
              value_key: str, width: int = 50,
              title: str = "") -> str:
    """Horizontal bar chart, one bar per row."""
    if not rows:
        return "(no data)"
    values = [float(r[value_key]) for r in rows]
    peak = max(max(values), 1e-12)
    label_w = max(len(str(r[label_key])) for r in rows)
    lines = [title] if title else []
    for r, v in zip(rows, values):
        bar = "#" * max(1, int(v / peak * width)) if v > 0 else ""
        lines.append(f"{str(r[label_key]):>{label_w}} | {bar} {v:g}")
    return "\n".join(lines)


def grouped_bar_chart(rows: Sequence[Dict[str, object]], group_key: str,
                      series_key: str, value_key: str,
                      width: int = 40, title: str = "") -> str:
    """Bars grouped by ``group_key``, one bar per ``series_key`` value."""
    if not rows:
        return "(no data)"
    values = [float(r[value_key]) for r in rows]
    peak = max(max(values), 1e-12)
    series_w = max(len(str(r[series_key])) for r in rows)
    lines = [title] if title else []
    current_group = object()
    for r in rows:
        if r[group_key] != current_group:
            current_group = r[group_key]
            lines.append(f"{group_key}={current_group}")
        v = float(r[value_key])
        bar = "#" * max(1, int(v / peak * width)) if v > 0 else ""
        lines.append(f"  {str(r[series_key]):>{series_w}} | {bar} {v:g}")
    return "\n".join(lines)


def line_plot(series: Dict[str, List[float]], height: int = 12,
              width: int = 60, title: str = "",
              log_y: bool = False) -> str:
    """Multi-series line plot; each series is a list of y values.

    Series are drawn with distinct glyphs on a shared canvas; x positions
    spread each series evenly across the width.
    """
    glyphs = "*o+x@%&"
    all_vals = [v for vs in series.values() for v in vs if v is not None]
    if not all_vals:
        return "(no data)"

    def _t(v: float) -> float:
        return math.log10(max(v, 1e-12)) if log_y else v

    lo = min(_t(v) for v in all_vals)
    hi = max(_t(v) for v in all_vals)
    span = max(hi - lo, 1e-12)
    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, vs) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        n = len(vs)
        for i, v in enumerate(vs):
            if v is None:
                continue
            x = int(i / max(n - 1, 1) * (width - 1))
            y = int((_t(v) - lo) / span * (height - 1))
            canvas[height - 1 - y][x] = glyph
    lines = [title] if title else []
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(series))
    lines.append(legend + ("   (log y)" if log_y else ""))
    return "\n".join(lines)


def cdf_plot(points: Sequence[tuple], width: int = 50,
             title: str = "") -> str:
    """Render (label, cumulative_fraction) pairs as a CDF strip."""
    lines = [title] if title else []
    label_w = max(len(str(l)) for l, _ in points)
    for label, frac in points:
        bar = "#" * int(float(frac) * width)
        lines.append(f"{str(label):>{label_w}} | {bar} {float(frac):.1%}")
    return "\n".join(lines)
