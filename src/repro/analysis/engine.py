"""Analyzer driver: collect files, parse once, run every rule.

Splitting policy from mechanism: rules (:mod:`repro.analysis.rules`)
know what to look for, this module knows how to walk a source tree,
share parsed ASTs, apply ``# noqa`` suppressions and the baseline, and
decide the gate verdict.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import noqa
from repro.analysis.callgraph import ProjectContext
from repro.analysis.core import Finding, Module, all_rules
from repro.common.errors import ConfigError

#: Directory basenames never analyzed.
SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def _guess_package(path: str) -> str:
    """Dotted module name from a file path (best effort).

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``; falls back to
    the stem when no ``repro`` component is present.
    """
    parts = os.path.normpath(path).split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        anchor = parts.index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def _is_excluded(path: str, exclude: Sequence[str]) -> bool:
    norm = os.path.normpath(path)
    for prefix in exclude:
        pref = os.path.normpath(prefix)
        if norm == pref or norm.startswith(pref + os.sep):
            return True
    return False


def collect_files(paths: Sequence[str],
                  exclude: Sequence[str] = ()) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` lists file or directory prefixes to drop — e.g. planted
    sanitizer fixtures that *intentionally* violate the rules.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in SKIP_DIRS)
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise ConfigError(f"no such file or directory: {path!r}")
    out = [p for p in out if not _is_excluded(p, exclude)]
    return sorted(dict.fromkeys(out))


def parse_modules(files: Iterable[str]) -> List[Module]:
    """Parse every file; syntax errors become MC2000 findings later."""
    modules: List[Module] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            # Surfaced by the driver as an MC2000 parse failure.
            bad = ast.Module(body=[], type_ignores=[])
            module = Module(path=path, source=source, tree=bad,
                            lines=source.splitlines(),
                            package=_guess_package(path))
            module.parse_error = exc  # type: ignore[attr-defined]
            modules.append(module)
            continue
        modules.append(Module(path=path, source=source, tree=tree,
                              lines=source.splitlines(),
                              package=_guess_package(path)))
    return modules


def _stale_suppressions(modules: List[Module],
                        tables: Dict[str, Dict[int, frozenset]],
                        findings: List[Finding],
                        ran_codes: set,
                        full_run: bool) -> List[Finding]:
    """MC2901: ``# noqa`` markers that suppress nothing on their line.

    Select-aware: a coded marker is stale only when every listed
    analyzer code actually ran this pass and none fired on the line;
    codes of other tools (``F401`` …) or unknown/un-run codes make the
    marker indeterminate and it is left alone.  A bare marker is stale
    only on a full-rule-set run with no finding of any kind on its
    line.
    """
    from repro.analysis.rules.hygiene import MC_CODE_RE

    fired: Dict[tuple, set] = {}
    for f in findings:
        fired.setdefault((f.path, f.line), set()).add(f.rule)

    out: List[Finding] = []
    for module in modules:
        for line, codes in sorted(tables.get(module.path, {}).items()):
            hits = fired.get((module.path, line), set())
            text = module.line_text(line)
            col = max(module.lines[line - 1].find("#"), 0) \
                if 1 <= line <= len(module.lines) else 0
            if codes is noqa.ALL or "*" in codes:
                if full_run and not hits:
                    out.append(Finding(
                        rule="MC2901",
                        message="bare '# noqa' suppresses nothing on this "
                                "line; delete it (or list the specific "
                                "codes it should suppress)",
                        path=module.path, line=line, col=col, snippet=text))
                continue
            mc_codes = {c for c in codes if MC_CODE_RE.match(c)}
            if not mc_codes or not mc_codes <= ran_codes:
                continue
            if not mc_codes & hits:
                listed = ", ".join(sorted(mc_codes))
                out.append(Finding(
                    rule="MC2901",
                    message=f"'# noqa: {listed}' suppresses nothing on "
                            f"this line; the finding it silenced is gone "
                            f"— delete the suppression",
                    path=module.path, line=line, col=col, snippet=text))
    return out


@dataclass
class Report:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    #: Per-rule cost accounting: code -> {"seconds": float,
    #: "findings": int} (raw counts, before suppression/baselining).
    rule_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def active(self) -> List[Finding]:
        """Findings that gate (not suppressed, not baselined)."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        """True when no active findings remain — the CI gate."""
        return not self.active


def run(paths: Sequence[str], baseline_path: Optional[str] = None,
        select: Optional[Sequence[str]] = None,
        exclude: Sequence[str] = ()) -> Report:
    """Analyze ``paths`` and return a :class:`Report`.

    ``select`` restricts to the given rule codes (all rules otherwise);
    ``exclude`` drops file/directory prefixes from collection.
    """
    files = collect_files(paths, exclude=exclude)
    modules = parse_modules(files)
    rules = all_rules()
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - {r.code for r in rules}
        if unknown:
            raise ConfigError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.code in wanted]

    findings: List[Finding] = []
    stats: Dict[str, Dict[str, float]] = {
        rule.code: {"seconds": 0.0, "findings": 0} for rule in rules}

    def _run_rule(rule, produce) -> None:
        # Wall-clock reads here time the *analyzer's* rules for the
        # --stats table; this driver never runs on a simulation path.
        start = time.perf_counter()  # noqa: MC2001
        batch = list(produce)
        entry = stats[rule.code]
        entry["seconds"] += time.perf_counter() - start  # noqa: MC2001
        entry["findings"] += len(batch)
        findings.extend(batch)

    for module in modules:
        error = getattr(module, "parse_error", None)
        if error is not None:
            findings.append(Finding(
                rule="MC2000", message=f"syntax error: {error.msg}",
                path=module.path, line=error.lineno or 1,
                col=(error.offset or 1) - 1))
            entry = stats.setdefault("MC2000",
                                     {"seconds": 0.0, "findings": 0})
            entry["findings"] += 1
            continue
        for rule in rules:
            _run_rule(rule, rule.check_module(module))
    parsed = [m for m in modules if getattr(m, "parse_error", None) is None]
    project = ProjectContext(parsed)
    for rule in rules:
        _run_rule(rule, rule.check_project(project))

    # Per-line suppressions (tokenize-aware: strings containing
    # "# noqa" are data, not markers).
    tables = {m.path: noqa.suppressions(m.lines, source=m.source)
              for m in modules}

    # MC2901 post-pass: needs the raw findings *and* the marker table,
    # so it cannot run as a normal rule hook.
    if any(r.code == "MC2901" for r in rules):
        start = time.perf_counter()  # noqa: MC2001 (analyzer self-timing)
        stale = _stale_suppressions(
            parsed, tables, findings,
            ran_codes={r.code for r in rules} - {"MC2901"},
            full_run=select is None)
        entry = stats["MC2901"]
        entry["seconds"] += time.perf_counter() - start  # noqa: MC2001
        entry["findings"] += len(stale)
        findings.extend(stale)

    findings = [
        replace(f, suppressed=(
            # The marker MC2901 flags must not suppress its own
            # finding; a stale bare "# noqa" would otherwise
            # self-suppress and never gate.
            f.rule != "MC2901"
            and noqa.is_suppressed(f.rule, f.line, tables.get(f.path, {}))))
        for f in findings
    ]

    # Baseline.
    if baseline_path:
        known = baseline_mod.load(baseline_path)
        if known:
            findings = baseline_mod.apply(findings, known)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(findings=findings, files_analyzed=len(files),
                  rule_stats=stats)
