"""SARIF 2.1.0 output for the static analyzer.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; the CI workflow uploads this as an artifact so findings
render inline on the pull request.  Only the small, stable subset of the
schema is emitted: tool metadata with the rule catalogue, one result per
finding with a physical location, and the baseline fingerprint under
``partialFingerprints`` so downstream tooling can track persistence.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import Finding, all_rules

SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json")
VERSION = "2.1.0"
TOOL_NAME = "mc2-analyze"


def _level(finding: Finding) -> str:
    if finding.suppressed or finding.baselined:
        return "note"
    return "error"


def to_sarif(findings: Iterable[Finding]) -> Dict:
    """Build the SARIF log dict for ``findings``."""
    findings = list(findings)
    rules_meta: List[Dict] = []
    for rule in all_rules():
        rules_meta.append({
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        })
    fingerprint_of = {id(f): digest
                      for f, digest in baseline_mod.fingerprints(findings)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _level(finding),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        **({"snippet": {"text": finding.snippet}}
                           if finding.snippet else {}),
                    },
                },
            }],
            "partialFingerprints": {
                "mc2AnalyzeFingerprint/v1": fingerprint_of[id(finding)],
            },
        }
        if finding.suppressed:
            result["suppressions"] = [{"kind": "inSource"}]
        elif finding.baselined:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    return {
        "$schema": SCHEMA,
        "version": VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "rules": rules_meta,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def dumps(findings: Iterable[Finding]) -> str:
    """Serialized SARIF log (stable key order)."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"


def to_findings(log: Dict) -> List[Finding]:
    """Reconstruct :class:`Finding` objects from a SARIF log.

    The inverse of :func:`to_sarif` for every field the analyzer owns
    (rule, message, path, line, col, snippet, suppressed/baselined) —
    the round trip is lossless, which the test suite asserts.  Used by
    tooling that post-processes an uploaded SARIF artifact.
    """
    out: List[Finding] = []
    for run in log.get("runs", []):
        for result in run.get("results", []):
            location = result["locations"][0]["physicalLocation"]
            region = location["region"]
            suppressions = result.get("suppressions", [])
            kinds = {s.get("kind") for s in suppressions}
            out.append(Finding(
                rule=result["ruleId"],
                message=result["message"]["text"],
                path=location["artifactLocation"]["uri"],
                line=region["startLine"],
                col=region["startColumn"] - 1,
                snippet=region.get("snippet", {}).get("text", ""),
                suppressed="inSource" in kinds,
                baselined="external" in kinds,
            ))
    return out
