"""Shard-locality classifier for the per-channel engine split.

The roadmap's sharded-engine rewrite partitions the simulation by DRAM
channel: each memory controller (and the state it owns) runs in its own
event loop, and anything two shards touch in the same cycle must go
through a deterministic rendezvous.  This pass answers, statically, the
question that rewrite starts from: **which instance state is provably
local to one shard, which is touched across shards, and where are the
rendezvous points?**

The classification is a channel-index dataflow over the call-graph IR
(:mod:`repro.analysis.callgraph`):

* classes are assigned a **role** — ``sharded`` (per-channel instances,
  detected through the ``channel_id`` constructor wiring and base-class
  inheritance), ``sharded-owned`` (objects a sharded class constructs
  and owns, e.g. the DRAM channel model and the BPQ), or ``shared``
  (everything else: the engine, the interconnect fabric, the replicated
  CTT);
* within each method, local names are typed by what they were assigned
  from: ``self``-derived values stay on the owning shard, while values
  returned by the owner-lookup helpers (``_owner_of`` / ``_owner``) or
  subscripted out of a ``controllers`` list are **cross-owner** — they
  may reference a *different* shard's instance;
* an attribute reached through a cross-owner name from a sharded class
  marks that attribute (and, for method accesses, the instance state
  the method's same-class closure touches) as **cross-shard**, with the
  access site recorded as a rendezvous point;
* accesses through untyped receivers that collide with a sharded
  class's known state fall into the **unknown** bucket — the honest
  "needs a human" remainder.

Shared-component state is cross-shard by definition (the fabric is the
rendezvous); packet deliveries through the interconnect are message
passing, not synchronous cross-shard access, so they do not mark the
receiving controller's state.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.core import Module

#: Dotted-module prefixes whose classes the report covers: the engine,
#: both memory controllers, the CTT/BPQ structures, the interconnect
#: and the DRAM device model.
TARGET_PACKAGES = (
    "repro.sim.engine",
    "repro.memctrl",
    "repro.mcsquare",
    "repro.interconnect",
    "repro.dram",
)

#: Helper methods whose return value may be *another* shard's
#: controller (the owner-lookup idiom).
CROSS_OWNER_FNS = {"_owner_of", "_owner"}

ROLE_SHARDED = "sharded"
ROLE_OWNED = "sharded-owned"
ROLE_SHARED = "shared"

CLASS_LOCAL = "local"
CLASS_CROSS = "cross-shard"
CLASS_UNKNOWN = "unknown"


@dataclass
class AttrInfo:
    """Classification of one instance attribute."""

    locality: str                      # local | cross-shard | unknown
    kinds: List[str] = field(default_factory=list)   # write kinds observed
    sites: List[str] = field(default_factory=list)   # rendezvous/unknown sites
    reason: str = ""


@dataclass
class ClassInfo:
    """One component class in the report."""

    qualname: str
    role: str
    attrs: Dict[str, AttrInfo] = field(default_factory=dict)


@dataclass
class Rendezvous:
    """One cross-shard access site."""

    site: str          # path:line
    via: str           # source text shape, e.g. "owner.dram_request"
    target: str        # "<Class>.<member>"


@dataclass
class ShardingReport:
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    rendezvous: List[Rendezvous] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {CLASS_LOCAL: 0, CLASS_CROSS: 0, CLASS_UNKNOWN: 0}
        for cls in self.classes.values():
            for info in cls.attrs.values():
                out[info.locality] += 1
        return out

    def unknown(self) -> List[str]:
        """``Class.attr`` names in the unknown bucket."""
        out = []
        for cls in self.classes.values():
            for name, info in sorted(cls.attrs.items()):
                if info.locality == CLASS_UNKNOWN:
                    out.append(f"{cls.qualname.rsplit('.', 1)[-1]}.{name}")
        return out


def _in_target(package: str) -> bool:
    return any(package == pkg or package.startswith(pkg + ".")
               for pkg in TARGET_PACKAGES)


def _site(module: Module, node: ast.AST) -> str:
    return f"{module.path}:{getattr(node, 'lineno', 0)}"


class _Classifier:
    def __init__(self, modules: Sequence[Module]):
        self.modules = [m for m in modules if _in_target(m.package)]
        self.graph = CallGraph.build(self.modules)
        #: class qualname -> state attr name -> write kinds
        self.state: Dict[str, Dict[str, Set[str]]] = {}
        #: class qualname -> method bare names
        self.methods: Dict[str, Set[str]] = {}
        self.roles: Dict[str, str] = {}
        #: (class qualname, attr) -> rendezvous sites
        self.cross: Dict[tuple, List[str]] = {}
        self.cross_via: Dict[tuple, str] = {}
        #: (class qualname, attr) -> unknown-access sites
        self.hazy: Dict[tuple, List[str]] = {}
        self.rendezvous: List[Rendezvous] = []

    # -- class tables ------------------------------------------------------
    def _collect_classes(self) -> None:
        for class_qual, fns in self.graph.classes.items():
            attrs: Dict[str, Set[str]] = {}
            names: Set[str] = set()
            for fn in fns:
                names.add(fn.name)
                for attr, writes in fn.attr_writes.items():
                    attrs.setdefault(attr, set()).update(
                        kind for _n, kind in writes)
            self.state[class_qual] = attrs
            self.methods[class_qual] = names

    def _base_quals(self, class_qual: str) -> List[str]:
        """The class plus its in-graph bases (bare-name resolution)."""
        out = [class_qual]
        for bare in self.graph.class_bases.get(class_qual, ()):
            for qual in self.graph.class_names.get(bare, ()):
                if qual != class_qual:
                    out.append(qual)
        return out

    def _members(self, class_qual: str) -> Set[str]:
        """State attrs plus method names, bases included."""
        out: Set[str] = set()
        for qual in self._base_quals(class_qual):
            out |= set(self.state.get(qual, ()))
            out |= self.methods.get(qual, set())
        return out

    # -- roles -------------------------------------------------------------
    def _assign_roles(self) -> None:
        # Seed: a class is sharded when it is wired to one channel —
        # its __init__ takes channel_id or its methods touch
        # self.channel_id.
        for class_qual, fns in self.graph.classes.items():
            role = ROLE_SHARED
            for fn in fns:
                if "channel_id" in fn.attr_writes \
                        or "channel_id" in fn.attr_reads:
                    role = ROLE_SHARDED
                    break
                if fn.name == "__init__":
                    args = getattr(fn.node, "args", None)
                    if args is not None and any(
                            a.arg == "channel_id" for a in args.args):
                        role = ROLE_SHARDED
                        break
            self.roles[class_qual] = role
        # Inherit shardedness through bases (the (MC)² controller
        # subclasses the vanilla one).
        changed = True
        while changed:
            changed = False
            for class_qual in self.graph.classes:
                if self.roles.get(class_qual) == ROLE_SHARDED:
                    continue
                for bare in self.graph.class_bases.get(class_qual, ()):
                    for base_qual in self.graph.class_names.get(bare, ()):
                        if self.roles.get(base_qual) == ROLE_SHARDED:
                            self.roles[class_qual] = ROLE_SHARDED
                            changed = True
        # Owned: constructed inside a sharded (or owned) class's
        # methods — the per-controller DRAM channel and BPQ.
        changed = True
        while changed:
            changed = False
            for class_qual, fns in self.graph.classes.items():
                if self.roles.get(class_qual, ROLE_SHARED) == ROLE_SHARED:
                    continue
                for fn in fns:
                    for site in fn.calls:
                        for target_qual in self.graph.class_names.get(
                                site.bare, ()):
                            if self.roles.get(target_qual) == ROLE_SHARED \
                                    and target_qual in self.graph.classes:
                                self.roles[target_qual] = ROLE_OWNED
                                changed = True

    # -- receiver typing ---------------------------------------------------
    @staticmethod
    def _receiver_types(fn: FunctionNode) -> Dict[str, str]:
        """Local name -> "self-derived" | "cross-owner" | "param"."""
        types: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if isinstance(args, ast.arguments):
            for a in list(args.posonlyargs) + list(args.args) \
                    + list(args.kwonlyargs):
                if a.arg != "self":
                    types[a.arg] = "param"
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            kind = ""
            if isinstance(value, ast.Call):
                func = value.func
                bare = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else "")
                if bare in CROSS_OWNER_FNS:
                    kind = "cross-owner"
                elif isinstance(func, ast.Attribute) \
                        and _rooted_at_self(func.value):
                    kind = "self-derived"
            elif isinstance(value, ast.Subscript):
                if _mentions_controllers(value.value):
                    kind = "cross-owner"
                elif _rooted_at_self(value.value):
                    kind = "self-derived"
            elif isinstance(value, ast.Attribute) \
                    and _rooted_at_self(value):
                kind = "self-derived"
            if kind:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = kind
        return types

    # -- closure over a cross-accessed method ------------------------------
    def _method_state_closure(self, class_qual: str,
                              method: str) -> Set[str]:
        """Instance attrs the method (and its same-class closure) touches.

        Follows same-class calls and schedule-site handlers one
        fixed point deep — enough to carry ``dram_request`` through
        ``_grant_dram`` to the channel reference.
        """
        quals = self._base_quals(class_qual)
        seen: Set[str] = set()
        attrs: Set[str] = set()
        stack = [method]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for qual in quals:
                fn = self.graph.functions.get(f"{qual}.{name}")
                if fn is None:
                    continue
                attrs.update(fn.attr_writes)
                attrs.update(fn.attr_reads)
                for site in fn.calls:
                    if site.dotted.startswith("self."):
                        stack.append(site.bare)
                for ssite in fn.schedule_sites:
                    if ssite.handler and ssite.handler != "<lambda>":
                        stack.append(ssite.handler)
        return attrs

    # -- main pass ---------------------------------------------------------
    def run(self) -> ShardingReport:
        self._collect_classes()
        self._assign_roles()

        sharded_quals = [q for q, role in self.roles.items()
                         if role != ROLE_SHARED]

        def resolve_targets(attr: str) -> List[str]:
            return [q for q in sharded_quals if attr in self._members(q)]

        for class_qual, fns in self.graph.classes.items():
            accessor_shared = self.roles.get(class_qual) == ROLE_SHARED
            for fn in fns:
                types = self._receiver_types(fn)
                for node in ast.walk(fn.node):
                    if not (isinstance(node, ast.Attribute)
                            and isinstance(node.value, ast.Name)):
                        continue
                    recv = node.value.id
                    if recv == "self":
                        continue
                    rtype = types.get(recv, "")
                    if rtype == "self-derived":
                        continue
                    if rtype == "cross-owner" and not accessor_shared:
                        # Synchronous access to a possibly-remote shard.
                        for target_qual in resolve_targets(node.attr):
                            self._mark_cross(target_qual, node.attr,
                                             fn, node, recv)
                    elif rtype in ("param", "") and not accessor_shared:
                        # Untyped receiver colliding with sharded state:
                        # cannot prove locality.
                        for target_qual in resolve_targets(node.attr):
                            if node.attr in self.state.get(target_qual, {}) \
                                    and target_qual != class_qual \
                                    and class_qual not in \
                                    self._base_quals(target_qual) \
                                    and target_qual not in \
                                    self._base_quals(class_qual):
                                key = (target_qual, node.attr)
                                self.hazy.setdefault(key, []).append(
                                    _site(fn.module, node))

        return self._build_report()

    def _mark_cross(self, target_qual: str, member: str,
                    fn: FunctionNode, node: ast.AST, recv: str) -> None:
        site = _site(fn.module, node)
        bare_cls = target_qual.rsplit(".", 1)[-1]
        self.rendezvous.append(Rendezvous(
            site=site, via=f"{recv}.{member}",
            target=f"{bare_cls}.{member}"))
        # Direct state access, or the closure of an accessed method.
        touched: Set[str]
        if any(member in self.state.get(q, ())
               for q in self._base_quals(target_qual)):
            touched = {member}
        else:
            touched = self._method_state_closure(target_qual, member)
        for attr in touched:
            for qual in self._base_quals(target_qual):
                if attr in self.state.get(qual, ()):
                    key = (qual, attr)
                    self.cross.setdefault(key, []).append(site)
                    self.cross_via.setdefault(key, f"{recv}.{member}")

    def _build_report(self) -> ShardingReport:
        report = ShardingReport(rendezvous=self.rendezvous)
        for class_qual in sorted(self.graph.classes):
            role = self.roles.get(class_qual, ROLE_SHARED)
            info = ClassInfo(qualname=class_qual, role=role)
            for attr in sorted(self.state.get(class_qual, ())):
                kinds = sorted(self.state[class_qual][attr])
                key = (class_qual, attr)
                if role == ROLE_SHARED:
                    info.attrs[attr] = AttrInfo(
                        locality=CLASS_CROSS, kinds=kinds,
                        reason="state of a shared component (the fabric "
                               "is the rendezvous)")
                elif key in self.cross:
                    info.attrs[attr] = AttrInfo(
                        locality=CLASS_CROSS, kinds=kinds,
                        sites=sorted(set(self.cross[key])),
                        reason=f"reached across shards via "
                               f"{self.cross_via[key]}")
                elif key in self.hazy:
                    info.attrs[attr] = AttrInfo(
                        locality=CLASS_UNKNOWN, kinds=kinds,
                        sites=sorted(set(self.hazy[key])),
                        reason="accessed through an untyped receiver "
                               "from another class")
                else:
                    info.attrs[attr] = AttrInfo(
                        locality=CLASS_LOCAL, kinds=kinds,
                        reason="only touched through self by the owning "
                               "shard's instance")
            report.classes[class_qual] = info
        return report


def classify(modules: Sequence[Module]) -> ShardingReport:
    """Classify every component class's state in ``modules``."""
    return _Classifier(modules).run()


def report_json(report: ShardingReport) -> str:
    payload = {
        "summary": report.counts(),
        "unknown": report.unknown(),
        "classes": {
            qual: {
                "role": info.role,
                "attrs": {
                    name: {
                        "class": a.locality,
                        "kinds": a.kinds,
                        "sites": a.sites,
                        "reason": a.reason,
                    }
                    for name, a in sorted(info.attrs.items())
                },
            }
            for qual, info in sorted(report.classes.items())
        },
        "rendezvous": [
            {"site": r.site, "via": r.via, "target": r.target}
            for r in report.rendezvous
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def report_text(report: ShardingReport) -> str:
    lines: List[str] = []
    counts = report.counts()
    lines.append("shard-locality report")
    lines.append(f"  {counts[CLASS_LOCAL]} local, "
                 f"{counts[CLASS_CROSS]} cross-shard, "
                 f"{counts[CLASS_UNKNOWN]} unknown")
    for qual, info in sorted(report.classes.items()):
        if not info.attrs:
            continue
        lines.append(f"{qual} [{info.role}]")
        for name, attr in sorted(info.attrs.items()):
            suffix = f"  ({attr.reason})" if attr.reason else ""
            lines.append(f"  {attr.locality:<12} {name}{suffix}")
            for site in attr.sites:
                lines.append(f"               @ {site}")
    if report.rendezvous:
        lines.append("rendezvous points:")
        seen = set()
        for r in report.rendezvous:
            key = (r.site, r.via)
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {r.site}: {r.via} -> {r.target}")
    return "\n".join(lines) + "\n"


def _rooted_at_self(node: ast.AST) -> bool:
    """True when the value chain bottoms out at the literal ``self``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = (node.value if isinstance(node, (ast.Attribute,
                                                ast.Subscript))
                else node.func)
    return isinstance(node, ast.Name) and node.id == "self"


def _mentions_controllers(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "controller" in sub.attr:
            return True
        if isinstance(sub, ast.Name) and "controller" in sub.id:
            return True
    return False
