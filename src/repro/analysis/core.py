"""Static-analysis core: findings, the rule protocol, and the registry.

The analyzer enforces the simulator-correctness discipline the rest of
the package relies on (determinism, event safety, poison-taint
completeness).  Rules are small classes registered under an ``MC2xxx``
code; the engine (:mod:`repro.analysis.engine`) parses every target file
once and hands each rule the shared AST.

Two rule flavours exist:

* **module rules** implement :meth:`Rule.check_module` and see one file
  at a time (purely syntactic checks);
* **project rules** implement :meth:`Rule.check_project` and see every
  parsed module together through a
  :class:`~repro.analysis.callgraph.ProjectContext` (interprocedural
  passes such as the poison-taint walk and the fork-safety and
  cache-soundness families, which share the context's call graph and
  ``SimPoint`` worker-reachability closure).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str              # MC2xxx code
    message: str           # human-readable description
    path: str              # file path as given to the engine
    line: int              # 1-based line of the offending node
    col: int               # 0-based column
    snippet: str = ""      # stripped source text of the line
    suppressed: bool = False   # matched a `# noqa` comment
    baselined: bool = False    # matched a baseline fingerprint

    def location(self) -> str:
        """``path:line:col`` string for text reports."""
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass
class Module:
    """One parsed source file shared by every rule."""

    path: str                      # path as reported in findings
    source: str                    # raw text
    tree: ast.Module               # parsed AST
    lines: List[str] = field(default_factory=list)   # source split by line
    package: str = ""              # dotted module guess, e.g. "repro.sim.engine"

    def line_text(self, lineno: int) -> str:
        """Stripped text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for one checker.  Subclasses set the class attributes."""

    code: str = "MC2000"
    name: str = "rule"
    summary: str = ""
    rationale: str = ""

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.code, message=message, path=module.path,
                       line=line, col=col, snippet=module.line_text(line))

    # Flavour hooks -- implement exactly one.
    def check_module(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one file (syntactic rules)."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings needing the whole project (dataflow rules).

        ``project`` is a :class:`~repro.analysis.callgraph
        .ProjectContext`; its ``modules`` list carries every parsed
        file, and its lazy ``graph``/``workers``/``reached`` properties
        are shared across all project rules in one run.
        """
        return iter(())


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and index a rule by its code."""
    rule = rule_cls()
    if rule.code in _REGISTRY:
        raise ConfigError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    # Import for side effects: rule modules self-register on first use.
    from repro.analysis import rules as _rules  # noqa: F401
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Optional[Rule]:
    """Look up one rule by code (after ensuring registration)."""
    all_rules()
    return _REGISTRY.get(code)


class ScopedVisitor(ast.NodeVisitor):
    """AST visitor that tracks which names are locally rebound.

    Rules like "no module-level ``random``" must not fire when a
    function parameter or local assignment shadows the module name
    (``def sample(random): random.random()`` is a *seeded* generator
    passed in by the caller).  The visitor maintains a stack of local
    scopes; :meth:`is_shadowed` answers whether ``name`` currently
    resolves to something other than the module-level binding.
    """

    def __init__(self) -> None:
        self._scopes: List[set] = []

    # -- scope maintenance -------------------------------------------------
    def _collect_bindings(self, node: ast.AST) -> set:
        bound = set()
        args = getattr(node, "args", None)
        if isinstance(args, ast.arguments):
            for a in (list(args.posonlyargs) + list(args.args)
                      + list(args.kwonlyargs)):
                bound.add(a.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                bound.add(child.id)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
        return bound

    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append(self._collect_bindings(node))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_Lambda = _visit_scope

    def is_shadowed(self, name: str) -> bool:
        """True when ``name`` is rebound in an enclosing function scope."""
        return any(name in scope for scope in self._scopes)


def module_imports(tree: ast.Module) -> Dict[str, str]:
    """Top-level import map: local name -> dotted origin.

    ``import time`` yields ``{"time": "time"}``; ``from repro.sim.stats
    import Counter as C`` yields ``{"C": "repro.sim.stats.Counter"}``.
    Relative imports keep their level dots (``from . import plants`` ->
    ``{"plants": ".plants"}``) so they register as imports without ever
    matching an absolute dotted pattern.
    """
    out: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                out[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            if not prefix:
                continue
            sep = "" if prefix.endswith(".") else "."
            for alias in node.names:
                out[alias.asname or alias.name] = f"{prefix}{sep}{alias.name}"
    return out


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted source text of a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(dotted_name(node.func) + "()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))
