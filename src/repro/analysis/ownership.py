"""Shard-ownership inference: prove the declared per-channel partition.

The sharded-engine rewrite (ROADMAP "raw speed") partitions the
simulation by DRAM channel.  :mod:`repro.sim.shard` is the *declaration*
side of that contract — ``@shard_local`` / ``@shared`` classes and
``@rendezvous`` ports.  This pass is the *proof* side: an
interprocedural ownership inference over the call-graph IR
(:mod:`repro.analysis.callgraph`) that checks the declared partition
against what the code actually does, before anyone builds the split.

Every class in scope gets a point on the **ownership lattice**:

* ``Owned(domain)`` — declared ``@shard_local``; instances belong to
  exactly one shard (``channel`` keyed by ``channel_id``, or the single
  ``cpu`` shard).  Ownership evidence is the ``channel_id`` constructor
  wiring, base-class inheritance, or construction inside an
  already-owned class (the BPQ, the DRAM device model, bank objects).
* ``Shared`` — declared ``@shared``; deliberately visible to every
  shard (engine, fabric, replicated CTT, stats, backing store).
* ``Rendezvous`` — not a class point but an *edge* point: a
  ``@rendezvous`` port on an owned class, the only members other
  shards may touch.
* ``Unknown`` — no declaration.  The MC27xx gate drives this bucket to
  exactly zero for mutable component state.

Within each owned class's methods, local names are typed by provenance:
``self``-derived values stay on the owning shard; values produced by
the owner-lookup helpers (``_owner_of`` / ``_owner``) or iterated out
of ``peers``/``controllers`` collections are **cross-owner**; values
returned by a declared port call on a cross-owner receiver are
**rendezvous-derived** (data handed over at a declared synchronization
point — the port's contract covers them).  An attribute chain from a
cross-owner name must terminate in a declared port, the identity key,
or immutable configuration; anything else is an undeclared cross-shard
access (MC2701/MC2702).

Checked rules (reported through :mod:`repro.analysis.rules.ownership`):

* **MC2701** — cross-shard access to mutable state (or a non-port
  method) outside a declared rendezvous.
* **MC2702** — ownership leak: an owned class stores a cross-owner
  reference into its own instance state.
* **MC2703** — a rendezvous port scheduled outside the
  shared-rendezvous event phase (phase 2).
* **MC2704** — a component class with mutable instance state and no
  ownership declaration (the Unknown bucket).
* **MC2705** — declaration/inference mismatch: the annotation
  contradicts the ``channel_id`` wiring evidence.

Shared classes are exempt from the cross-access walk: packet delivery
through the fabric is message passing, not synchronous cross-shard
access (the same doctrine :mod:`repro.analysis.sharding` applies), and
host-side wiring (``System``) runs before the clock starts.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (CallGraph, FunctionNode,
                                      _MUTATOR_METHODS)
from repro.analysis.core import Module, module_imports

#: Dotted-package prefixes the partition proof covers.
TARGET_PACKAGES = (
    "repro.sim",
    "repro.memctrl",
    "repro.mcsquare",
    "repro.interconnect",
    "repro.dram",
    "repro.cache",
    "repro.cpu",
    "repro.mem",
    "repro.system",
)

#: The annotation module; files importing it opt into the proof even
#: outside the target packages (planted test fixtures).
SHARD_MODULE = "repro.sim.shard"

#: Helper methods whose return value may be *another* shard's
#: controller (the owner-lookup idiom shared with the sharding pass).
CROSS_OWNER_FNS = {"_owner_of", "_owner"}

#: Engine phase rendezvous events must run in (matches the phase the
#: DRAM arbiter grant uses; see ``Simulator.schedule``).
RENDEZVOUS_PHASE = 2

DECL_LOCAL = "local"
DECL_SHARED = "shared"
DECL_NONE = "unknown"


@dataclass
class ClassOwn:
    """One class's point on the ownership lattice."""

    qualname: str
    bare: str
    module: Module
    node: ast.ClassDef
    declared: str                  # local | shared | unknown
    domain: str = ""               # "channel" | "cpu" for local classes
    key: str = ""                  # owner-identity attribute
    inherited: bool = False        # declaration came from a base class
    bases: List[str] = field(default_factory=list)
    ports: Dict[str, str] = field(default_factory=dict)   # method -> port
    attrs: Dict[str, Set[str]] = field(default_factory=dict)
    mutable_attrs: Set[str] = field(default_factory=set)
    config_attrs: Set[str] = field(default_factory=set)
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Set[str] = field(default_factory=set)
    channel_evidence: str = ""     # why inference says channel-owned
    owned_evidence: str = ""       # why inference accepts the local claim


@dataclass
class Edge:
    """One declared cross-shard rendezvous edge, as used in code."""

    site: str                      # path:line
    via: str                       # source chain, e.g. "peer.bpq.holds"
    port: str                      # declared port name, e.g. "bpq-probe"
    target: str                    # "Class.member"
    caller: str                    # accessing class qualname


@dataclass
class Problem:
    """One MC27xx violation found by the inference."""

    code: str
    module: Module
    node: ast.AST
    message: str

    def site(self) -> str:
        return f"{self.module.path}:{getattr(self.node, 'lineno', 0)}"


@dataclass
class OwnershipReport:
    classes: Dict[str, ClassOwn] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    problems: List[Problem] = field(default_factory=list)

    def unknown_classes(self) -> List[str]:
        """Qualnames of stateful classes with no ownership declaration."""
        return sorted(q for q, c in self.classes.items()
                      if c.declared == DECL_NONE and c.attrs)

    def unknown_attrs(self) -> List[str]:
        """``Class.attr`` entries in the Unknown bucket."""
        out = []
        for qual in self.unknown_classes():
            cls = self.classes[qual]
            out.extend(f"{cls.bare}.{a}" for a in sorted(cls.attrs))
        return out

    def shards(self) -> Dict[str, Dict[str, List[str]]]:
        """Per-shard attribute sets: domain -> class -> attrs."""
        out: Dict[str, Dict[str, List[str]]] = {}
        for qual in sorted(self.classes):
            cls = self.classes[qual]
            if cls.declared == DECL_LOCAL:
                out.setdefault(cls.domain, {})[qual] = sorted(cls.attrs)
        return out

    def counts(self) -> Dict[str, int]:
        local = [c for c in self.classes.values()
                 if c.declared == DECL_LOCAL]
        return {
            "local_channel_classes": sum(1 for c in local
                                         if c.domain == "channel"),
            "local_cpu_classes": sum(1 for c in local
                                     if c.domain == "cpu"),
            "shared_classes": sum(1 for c in self.classes.values()
                                  if c.declared == DECL_SHARED),
            "unknown_classes": len(self.unknown_classes()),
            "unknown_attrs": len(self.unknown_attrs()),
            "edges": len(self.edges),
            "problems": len(self.problems),
        }

    @property
    def ok(self) -> bool:
        """The gate: no Unknowns and every cross edge declared."""
        return not self.unknown_classes() and not self.problems


# ---------------------------------------------------------------- scope
def _in_target(package: str) -> bool:
    return any(package == pkg or package.startswith(pkg + ".")
               for pkg in TARGET_PACKAGES)


def _imports_shard(module: Module) -> bool:
    return any(origin == SHARD_MODULE
               or origin.startswith(SHARD_MODULE + ".")
               for origin in module_imports(module.tree).values())


def in_scope(module: Module) -> bool:
    """True when ``module`` participates in the partition proof.

    Target packages always do; any other module opting in by importing
    :mod:`repro.sim.shard` does too (planted fixtures) — except the
    analyzer's own package, whose dynamic-audit half imports the
    registries without being simulation state.
    """
    if module.package.startswith("repro.analysis"):
        return False
    return _in_target(module.package) or _imports_shard(module)


# ------------------------------------------------------- AST utilities
def _ann_name(node: Optional[ast.AST]) -> str:
    """Bare class name of a simple annotation (``Cls`` / ``"Cls"``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"").rsplit(".", 1)[-1]
    return ""


def _decorator_name(dec: ast.AST) -> Tuple[str, Optional[ast.Call]]:
    """``(bare name, call node when parameterized)`` of one decorator."""
    if isinstance(dec, ast.Call):
        func = dec.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else "")
        return name, dec
    if isinstance(dec, ast.Name):
        return dec.id, None
    if isinstance(dec, ast.Attribute):
        return dec.attr, None
    return "", None


def _rooted_at(node: ast.AST, name: str) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = (node.value if isinstance(node, (ast.Attribute,
                                                ast.Subscript))
                else node.func)
    return isinstance(node, ast.Name) and node.id == name


def _mentions_peers(node: ast.AST) -> bool:
    """True when the expression mentions a peer/controller collection."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and (
                sub.attr == "peers" or "controller" in sub.attr):
            return True
        if isinstance(sub, ast.Name) and (
                sub.id == "peers" or "controller" in sub.id):
            return True
    return False


def _site(module: Module, node: ast.AST) -> str:
    return f"{module.path}:{getattr(node, 'lineno', 0)}"


# ------------------------------------------------------------ inference
class _Inference:
    def __init__(self, modules: Sequence[Module],
                 graph: Optional[CallGraph] = None):
        self.modules = [m for m in modules if in_scope(m)]
        scoped_paths = {m.path for m in self.modules}
        if graph is not None and all(
                fn.module.path in scoped_paths
                for fn in graph.functions.values()):
            self.graph = graph
        else:
            self.graph = CallGraph.build(self.modules)
        self.classes: Dict[str, ClassOwn] = {}
        self.by_bare: Dict[str, List[str]] = {}
        self.edges: List[Edge] = []
        self.problems: List[Problem] = []
        #: port method name -> [(port, class qualname)]
        self.port_methods: Dict[str, List[Tuple[str, str]]] = {}

    # -- collection --------------------------------------------------------
    def _collect(self) -> None:
        for module in self.modules:
            self._collect_module(module)
        self._inherit_declarations()
        self._collect_state()

    def _collect_module(self, module: Module) -> None:
        def walk(body, prefix: str) -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    qual = f"{prefix}.{node.name}"
                    self._collect_class(module, node, qual)
                    walk(node.body, qual)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    walk(node.body, f"{prefix}.{node.name}")
        walk(module.tree.body, module.package)

    def _collect_class(self, module: Module, node: ast.ClassDef,
                       qual: str) -> None:
        declared, domain, key = DECL_NONE, "", ""
        for dec in node.decorator_list:
            name, call = _decorator_name(dec)
            if name == "shared":
                declared = DECL_SHARED
                break
            if name == "shard_local":
                declared, domain, key = DECL_LOCAL, "channel", "channel_id"
                if call is not None:
                    for kw in call.keywords:
                        if kw.arg == "domain" and isinstance(
                                kw.value, ast.Constant):
                            domain = str(kw.value.value)
                        elif kw.arg == "key" and isinstance(
                                kw.value, ast.Constant):
                            key = str(kw.value.value)
                break
        ports: Dict[str, str] = {}
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for dec in item.decorator_list:
                name, call = _decorator_name(dec)
                if name == "rendezvous" and call is not None and call.args \
                        and isinstance(call.args[0], ast.Constant):
                    ports[item.name] = str(call.args[0].value)
        cls = ClassOwn(qualname=qual, bare=node.name, module=module,
                       node=node, declared=declared, domain=domain,
                       key=key, ports=ports,
                       bases=list(self.graph.class_bases.get(qual, ())))
        self.classes[qual] = cls
        self.by_bare.setdefault(node.name, []).append(qual)
        for method, port in ports.items():
            self.port_methods.setdefault(method, []).append((port, qual))

    def _inherit_declarations(self) -> None:
        """Propagate declarations (and ports) through in-graph bases."""
        changed = True
        while changed:
            changed = False
            for cls in self.classes.values():
                for bare in cls.bases:
                    for base_qual in self.by_bare.get(bare, ()):
                        base = self.classes[base_qual]
                        if cls.declared == DECL_NONE \
                                and base.declared != DECL_NONE:
                            cls.declared = base.declared
                            cls.domain = base.domain
                            cls.key = base.key
                            cls.inherited = True
                            changed = True
                        for method, port in base.ports.items():
                            if method not in cls.ports:
                                cls.ports[method] = port
                                changed = True

    def _collect_state(self) -> None:
        for qual, cls in self.classes.items():
            fns = self.graph.classes.get(qual, [])
            for fn in fns:
                cls.methods.add(fn.name)
                for attr, writes in fn.attr_writes.items():
                    kinds = {kind for _n, kind in writes}
                    cls.attrs.setdefault(attr, set()).update(kinds)
                    if fn.name != "__init__" or kinds - {"assign"}:
                        cls.mutable_attrs.add(attr)
                if fn.name == "__init__":
                    self._collect_attr_types(cls, fn)
            cls.config_attrs = set(cls.attrs) - cls.mutable_attrs
            # Fold base-class state into the resolution tables (the
            # (MC)² controller inherits the WPQ machinery).
            for bare in cls.bases:
                for base_qual in self.by_bare.get(bare, ()):
                    base = self.classes[base_qual]
                    for attr, kinds in base.attrs.items():
                        cls.attrs.setdefault(attr, set()).update(kinds)
                    cls.mutable_attrs |= base.mutable_attrs
                    cls.config_attrs |= (base.config_attrs
                                         - cls.mutable_attrs)
                    for attr, tname in base.attr_types.items():
                        cls.attr_types.setdefault(attr, tname)
                    cls.methods |= base.methods

    def _collect_attr_types(self, cls: ClassOwn, init: FunctionNode) -> None:
        """``self.X`` value classes from ``__init__`` construction and
        annotated-parameter passthrough."""
        params: Dict[str, str] = {}
        args = getattr(init.node, "args", None)
        if isinstance(args, ast.arguments):
            for a in list(args.posonlyargs) + list(args.args) \
                    + list(args.kwonlyargs):
                name = _ann_name(a.annotation)
                if name:
                    params[a.arg] = name
        for node in ast.walk(init.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                ann = _ann_name(node.annotation)
                if ann and isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    cls.attr_types[target.attr] = ann
                    continue
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self") or value is None:
                continue
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id in self.by_bare:
                cls.attr_types[target.attr] = value.func.id
            elif isinstance(value, ast.Name) and value.id in params:
                cls.attr_types[target.attr] = params[value.id]

    # -- lattice evidence --------------------------------------------------
    def _channel_evidence(self, cls: ClassOwn) -> str:
        """Why inference believes ``cls`` is wired to one channel."""
        fns = self.graph.classes.get(cls.qualname, [])
        for fn in fns:
            if "channel_id" in fn.attr_writes \
                    or "channel_id" in fn.attr_reads:
                return "accesses self.channel_id"
            if fn.name == "__init__":
                args = getattr(fn.node, "args", None)
                if isinstance(args, ast.arguments) and any(
                        a.arg == "channel_id" for a in args.args):
                    return "__init__ takes channel_id"
        return ""

    def _owned_fixed_point(self) -> Dict[str, str]:
        """Qualname -> evidence for every provably-owned class.

        Seeds with direct ``channel_id`` wiring, then closes over base
        inheritance and construction-inside-an-owned-class (the BPQ,
        the DRAM channel, bank objects inherit their constructor's
        owner).  Declared-cpu classes are accepted as seeds: the cpu
        shard is singular, so membership needs no key wiring.
        """
        evidence: Dict[str, str] = {}
        for qual, cls in self.classes.items():
            why = self._channel_evidence(cls)
            if why:
                evidence[qual] = why
            elif cls.declared == DECL_LOCAL and cls.domain != "channel":
                evidence[qual] = f"declared {cls.domain}-domain"
        changed = True
        while changed:
            changed = False
            for qual, cls in self.classes.items():
                if qual in evidence:
                    continue
                for bare in cls.bases:
                    for base_qual in self.by_bare.get(bare, ()):
                        if base_qual in evidence:
                            evidence[qual] = (f"inherits from "
                                              f"{self.classes[base_qual].bare}")
                            changed = True
                if qual in evidence:
                    continue
                # Constructed inside an owned class's methods.
                for owner_qual, owner in self.classes.items():
                    if owner_qual not in evidence \
                            or owner.declared != DECL_LOCAL:
                        continue
                    for fn in self.graph.classes.get(owner_qual, []):
                        for site in fn.calls:
                            if not site.is_method \
                                    and site.bare == cls.bare:
                                evidence[qual] = (f"constructed by "
                                                  f"{owner.bare}")
                                changed = True
        return evidence

    # -- per-class rule checks ---------------------------------------------
    def _check_declarations(self) -> None:
        evidence = self._owned_fixed_point()
        for qual in sorted(self.classes):
            cls = self.classes[qual]
            channel_why = self._channel_evidence(cls)
            if cls.declared == DECL_NONE:
                if cls.attrs:
                    self.problems.append(Problem(
                        code="MC2704", module=cls.module, node=cls.node,
                        message=(
                            f"class {cls.bare} has mutable instance state "
                            f"({', '.join(sorted(cls.attrs)[:4])}"
                            f"{', ...' if len(cls.attrs) > 4 else ''}) but "
                            f"no shard-ownership declaration — annotate it "
                            f"with @shard_local or @shared from "
                            f"repro.sim.shard so the engine split knows "
                            f"which loop owns it")))
                continue
            if cls.declared == DECL_SHARED and channel_why:
                self.problems.append(Problem(
                    code="MC2705", module=cls.module, node=cls.node,
                    message=(
                        f"class {cls.bare} is declared @shared but "
                        f"{channel_why} — per-channel wiring means its "
                        f"instances belong to one shard; declare it "
                        f"@shard_local (or drop the channel coupling)")))
            elif cls.declared == DECL_LOCAL and not cls.inherited:
                why = evidence.get(qual, "")
                cls.owned_evidence = why
                if cls.domain == "channel" and not why:
                    self.problems.append(Problem(
                        code="MC2705", module=cls.module, node=cls.node,
                        message=(
                            f"class {cls.bare} is declared "
                            f"@shard_local (channel) but inference finds "
                            f"no ownership evidence — no {cls.key} "
                            f"wiring, no owned base class, and no "
                            f"construction inside an owned class; "
                            f"declare it @shared or wire its owner")))
                elif cls.domain != "channel" and channel_why:
                    self.problems.append(Problem(
                        code="MC2705", module=cls.module, node=cls.node,
                        message=(
                            f"class {cls.bare} is declared "
                            f"@shard_local(domain=\"{cls.domain}\") but "
                            f"{channel_why} — channel wiring contradicts "
                            f"the {cls.domain} domain; use the default "
                            f"channel domain")))

    # -- receiver typing ---------------------------------------------------
    def _receiver_types(self, fn: FunctionNode) -> Dict[str, str]:
        """Local name -> "param" | "self" | "cross" | "rdv"."""
        types: Dict[str, str] = {}
        args = getattr(fn.node, "args", None)
        if isinstance(args, ast.arguments):
            for a in list(args.posonlyargs) + list(args.args) \
                    + list(args.kwonlyargs):
                if a.arg != "self":
                    types[a.arg] = "param"

        def classify(value: ast.AST) -> str:
            if isinstance(value, ast.Call):
                func = value.func
                bare = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name)
                        else "")
                if bare in CROSS_OWNER_FNS:
                    return "cross"
                if isinstance(func, ast.Attribute) \
                        and bare in self.port_methods:
                    root = func.value
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if isinstance(root, ast.Name) \
                            and types.get(root.id) == "cross":
                        return "rdv"
                if _rooted_at(value, "self"):
                    return "self"
            elif isinstance(value, ast.Subscript):
                if _mentions_peers(value.value):
                    return "cross"
                if _rooted_at(value.value, "self"):
                    return "self"
            elif isinstance(value, ast.Attribute):
                root = value.value
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name) \
                        and types.get(root.id) == "cross":
                    return "cross"
                if _rooted_at(value, "self"):
                    return "self"
            return ""

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                kind = classify(node.value)
                if kind:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = kind
            elif isinstance(node, ast.For):
                if _mentions_peers(node.iter) \
                        and isinstance(node.target, ast.Name):
                    types[node.target.id] = "cross"
            elif isinstance(node, ast.comprehension):
                if _mentions_peers(node.iter) \
                        and isinstance(node.target, ast.Name):
                    types[node.target.id] = "cross"
        return types

    # -- member resolution -------------------------------------------------
    def _local_quals(self) -> List[str]:
        return [q for q in sorted(self.classes)
                if self.classes[q].declared == DECL_LOCAL]

    def _resolve_member(self, context: Optional[str],
                        member: str) -> Tuple[str, str, str]:
        """Resolve ``member`` on a cross-owner receiver.

        ``context`` narrows resolution to one class bare name (set when
        a chain stepped through a typed attribute); ``None`` means any
        owned class.  Returns ``(kind, detail, class_bare)`` where kind
        is ``port`` (detail = port name), ``key``, ``attr`` (detail =
        value class bare name or ""), ``method``, or ``miss``.
        """
        if context is not None:
            quals = [q for q in self.by_bare.get(context, ())
                     if q in self.classes]
        else:
            quals = self._local_quals()
        for qual in quals:
            cls = self.classes[qual]
            if member in cls.ports:
                return "port", cls.ports[member], cls.bare
        for qual in quals:
            cls = self.classes[qual]
            if cls.declared == DECL_LOCAL and member == cls.key:
                return "key", "", cls.bare
        for qual in quals:
            cls = self.classes[qual]
            if member in cls.attrs:
                return "attr", cls.attr_types.get(member, ""), cls.bare
        for qual in quals:
            cls = self.classes[qual]
            if member in cls.methods:
                return "method", "", cls.bare
        return "miss", "", ""

    def _value_declared(self, bare: str) -> str:
        for qual in self.by_bare.get(bare, ()):
            return self.classes[qual].declared
        return DECL_NONE

    def _attr_mutable(self, owner_bare: str, member: str) -> bool:
        for qual in self.by_bare.get(owner_bare, ()):
            return member in self.classes[qual].mutable_attrs
        return False

    # -- the cross-access walk ---------------------------------------------
    def _check_accesses(self) -> None:
        for qual in self._local_quals():
            for fn in self.graph.classes.get(qual, []):
                self._check_function(self.classes[qual], fn)

    def _check_function(self, cls: ClassOwn, fn: FunctionNode) -> None:
        types = self._receiver_types(fn)
        cross_names = {n for n, t in types.items() if t == "cross"}
        parents: Dict[int, ast.AST] = {}
        for node in ast.walk(fn.node):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node

        for node in ast.walk(fn.node):
            # MC2702: storing a cross-owner reference into own state.
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and self._leaks_cross(node.value, cross_names)):
                        self.problems.append(Problem(
                            code="MC2702", module=fn.module, node=node,
                            message=(
                                f"{cls.bare}.{fn.name} stores a "
                                f"cross-owner reference into "
                                f"self.{target.attr} — a shard must not "
                                f"retain handles to another shard's "
                                f"objects; look the owner up per access "
                                f"or route the data through a "
                                f"@rendezvous port")))
            # Cross-owner attribute chains.
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in cross_names):
                self._check_chain(cls, fn, node, parents)

        # MC2703: a rendezvous port scheduled off the rendezvous phase.
        port_table = cls.ports
        for site in fn.schedule_sites:
            port = port_table.get(site.handler)
            if port is None:
                continue
            if site.phase is not None and site.phase != RENDEZVOUS_PHASE:
                self.problems.append(Problem(
                    code="MC2703", module=fn.module, node=site.node,
                    message=(
                        f"rendezvous port '{port}' "
                        f"({cls.bare}.{site.handler}) is scheduled at "
                        f"phase {site.phase}; cross-shard events must "
                        f"run in the shared-rendezvous phase "
                        f"{RENDEZVOUS_PHASE} so every shard's "
                        f"same-cycle work is complete — pass "
                        f"phase={RENDEZVOUS_PHASE}")))

    def _leaks_cross(self, value: ast.AST, cross_names: Set[str]) -> bool:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Name) and sub.id in cross_names:
                return True
            if isinstance(sub, ast.Call):
                func = sub.func
                bare = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name)
                        else "")
                if bare in CROSS_OWNER_FNS:
                    return True
        return False

    def _check_chain(self, cls: ClassOwn, fn: FunctionNode,
                     node: ast.Attribute,
                     parents: Dict[int, ast.AST]) -> None:
        """Walk one attribute chain rooted at a cross-owner name."""
        recv = node.value.id if isinstance(node.value, ast.Name) else "?"
        via = [recv]
        context: Optional[str] = None
        while True:
            member = node.attr
            via.append(member)
            parent = parents.get(id(node))
            is_store = isinstance(node.ctx, (ast.Store, ast.Del))
            is_called = (isinstance(parent, ast.Call)
                         and parent.func is node)
            kind, detail, owner_bare = self._resolve_member(context, member)

            if kind == "port":
                self.edges.append(Edge(
                    site=_site(fn.module, node), via=".".join(via),
                    port=detail, target=f"{owner_bare}.{member}",
                    caller=cls.qualname))
                return
            if kind == "key" and not is_store and not is_called:
                return  # owner-identity probe (peer.channel_id == ch)
            if kind == "method":
                self.problems.append(Problem(
                    code="MC2701", module=fn.module, node=node,
                    message=(
                        f"{cls.bare}.{fn.name} calls "
                        f"{owner_bare}.{member} on another shard's "
                        f"instance, but {member} is not a declared "
                        f"rendezvous port — decorate it with "
                        f"@rendezvous(...) in repro.sim.shard terms, or "
                        f"move the call to the owning shard")))
                return
            if kind == "attr":
                if is_store:
                    self.problems.append(Problem(
                        code="MC2701", module=fn.module, node=node,
                        message=(
                            f"{cls.bare}.{fn.name} writes "
                            f"{owner_bare}.{member} on another shard's "
                            f"instance outside a declared rendezvous — "
                            f"route the mutation through a @rendezvous "
                            f"port on {owner_bare} so the engine split "
                            f"can serialize it")))
                    return
                if self._attr_mutable(owner_bare, member):
                    self.problems.append(Problem(
                        code="MC2701", module=fn.module, node=node,
                        message=(
                            f"{cls.bare}.{fn.name} reads mutable "
                            f"cross-shard state {owner_bare}.{member} "
                            f"outside a declared rendezvous — same-cycle "
                            f"cross-shard reads need a @rendezvous "
                            f"probe port (like wpq_fullness) to be "
                            f"schedule-order safe")))
                    return
                # Immutable configuration: reading is safe.  A chain
                # continuing into a shared-declared value stays safe;
                # one continuing into another owned class must end in a
                # port there.
                value_decl = self._value_declared(detail) if detail \
                    else DECL_NONE
                if value_decl == DECL_SHARED:
                    return
                if isinstance(parent, ast.Attribute) \
                        and parent.value is node:
                    context = detail if value_decl == DECL_LOCAL else None
                    node = parent
                    continue
                return  # bare config read (value type unknown or local)
            # Unresolved member: flag in-place mutation, stay silent on
            # reads we cannot prove anything about.
            if is_called and member in _MUTATOR_METHODS:
                self.problems.append(Problem(
                    code="MC2701", module=fn.module, node=node,
                    message=(
                        f"{cls.bare}.{fn.name} mutates another shard's "
                        f"object in place via .{member}() outside a "
                        f"declared rendezvous — route the mutation "
                        f"through a @rendezvous port")))
            return

    # -- entry point -------------------------------------------------------
    def run(self) -> OwnershipReport:
        self._collect()
        self._check_declarations()
        self._check_accesses()
        self.problems.sort(key=lambda p: (
            p.module.path, getattr(p.node, "lineno", 0), p.code))
        self.edges.sort(key=lambda e: (e.site, e.via))
        return OwnershipReport(classes=self.classes, edges=self.edges,
                               problems=self.problems)


def analyze(modules: Sequence[Module],
            graph: Optional[CallGraph] = None) -> OwnershipReport:
    """Run the ownership inference over ``modules``.

    ``graph`` may pass in an existing :class:`CallGraph` covering
    exactly the in-scope modules; otherwise one is built.
    """
    return _Inference(modules, graph=graph).run()


# -------------------------------------------------------------- reports
def report_json(report: OwnershipReport) -> str:
    counts = report.counts()
    payload = {
        "summary": dict(counts, ok=report.ok),
        "shards": report.shards(),
        "shared": sorted(q for q, c in report.classes.items()
                         if c.declared == DECL_SHARED),
        "unknown": report.unknown_attrs(),
        "unknown_classes": report.unknown_classes(),
        "edges": [
            {"site": e.site, "via": e.via, "port": e.port,
             "target": e.target, "caller": e.caller}
            for e in report.edges
        ],
        "problems": [
            {"code": p.code, "site": p.site(), "message": p.message}
            for p in report.problems
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def report_text(report: OwnershipReport) -> str:
    lines: List[str] = []
    counts = report.counts()
    lines.append("shard-ownership report")
    lines.append(
        f"  {counts['local_channel_classes']} channel-local, "
        f"{counts['local_cpu_classes']} cpu-local, "
        f"{counts['shared_classes']} shared, "
        f"{counts['unknown_classes']} unknown class(es); "
        f"{counts['edges']} rendezvous edge(s), "
        f"{counts['problems']} problem(s)")
    for domain, classes in sorted(report.shards().items()):
        lines.append(f"shard domain '{domain}':")
        for qual, attrs in sorted(classes.items()):
            cls = report.classes[qual]
            ports = ", ".join(sorted(set(cls.ports.values())))
            suffix = f"  ports: {ports}" if ports else ""
            lines.append(f"  {qual}{suffix}")
            if attrs:
                lines.append(f"    state: {', '.join(attrs)}")
    shared = sorted(q for q, c in report.classes.items()
                    if c.declared == DECL_SHARED)
    if shared:
        lines.append("shared: " + ", ".join(shared))
    if report.unknown_attrs():
        lines.append("unknown (annotate these):")
        for entry in report.unknown_attrs():
            lines.append(f"  {entry}")
    if report.edges:
        lines.append("rendezvous edges:")
        seen = set()
        for e in report.edges:
            key = (e.site, e.via)
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"  {e.site}: {e.via} -> {e.target} "
                         f"[{e.port}]")
    for p in report.problems:
        lines.append(f"problem {p.code} at {p.site()}: {p.message}")
    lines.append("partition " + ("PROVEN" if report.ok else "NOT proven"))
    return "\n".join(lines) + "\n"
