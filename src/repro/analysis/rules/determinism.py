"""Determinism rules (MC2001-MC2005).

A cycle-accurate simulation must produce bit-identical results for a
given seed: the paper's bounce/materialize/BPQ claims are validated by
differential oracles that diff lazy against eager runs, and any hidden
source of run-to-run variation (wall-clock time, the process-global RNG,
unordered container iteration, float round-off in cycle math, mutable
default arguments aliased across instances) silently invalidates them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import (Finding, Module, Rule, ScopedVisitor,
                                 dotted_name, module_imports, register)

#: Wall-clock reads that leak host time into simulated behaviour.
_WALLCLOCK = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time", "clock"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``random.<fn>`` calls that consume the process-global RNG stream.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed",
}


@register
class WallClockRule(Rule):
    """MC2001: no wall-clock time in simulation code."""

    code = "MC2001"
    name = "wall-clock-time"
    summary = "simulation code must not read host wall-clock time"
    rationale = ("Simulated behaviour keyed off time.time()/datetime.now() "
                 "varies run to run, breaking the differential oracles; the "
                 "only clock is Simulator.now.")

    def check_module(self, module: Module) -> Iterator[Finding]:
        imports = module_imports(module.tree)
        findings: List[Finding] = []
        rule = self

        qualified = {f"time.{fn}" for fn in _WALLCLOCK["time"]}

        class Visitor(ScopedVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute):
                    chain = dotted_name(func)
                    root = chain.split(".")[0]
                    origin = imports.get(root)
                    clock_attrs = (
                        _WALLCLOCK["time"] if origin == "time"
                        else _WALLCLOCK["datetime"]
                        if origin in ("datetime", "datetime.datetime")
                        else ())
                    if func.attr in clock_attrs and not self.is_shadowed(root):
                        findings.append(rule.finding(
                            module, node,
                            f"wall-clock read {chain}() in simulation "
                            f"code; use the simulator clock"))
                elif isinstance(func, ast.Name):
                    origin = imports.get(func.id)
                    if origin in qualified and not self.is_shadowed(func.id):
                        findings.append(rule.finding(
                            module, node,
                            f"wall-clock read {func.id}() (from {origin}); "
                            f"use the simulator clock"))
                self.generic_visit(node)

        Visitor().visit(module.tree)
        return iter(findings)


@register
class GlobalRandomRule(Rule):
    """MC2002: no process-global or unseeded randomness."""

    code = "MC2002"
    name = "unseeded-random"
    summary = "use an explicitly seeded random.Random instance"
    rationale = ("The module-level RNG is shared process state: any other "
                 "consumer shifts the stream and changes the simulation. "
                 "Every component takes a seed and owns its generator "
                 "(see repro.workloads.common.rng).")

    def check_module(self, module: Module) -> Iterator[Finding]:
        imports = module_imports(module.tree)
        findings: List[Finding] = []
        rule = self

        class Visitor(ScopedVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if isinstance(func, ast.Attribute):
                    root_node = func.value
                    if (isinstance(root_node, ast.Name)
                            and imports.get(root_node.id) == "random"
                            and not self.is_shadowed(root_node.id)):
                        if func.attr in _GLOBAL_RANDOM:
                            findings.append(rule.finding(
                                module, node,
                                f"process-global random.{func.attr}(); "
                                f"construct random.Random(seed) instead"))
                        elif (func.attr in ("Random", "SystemRandom")
                                and not node.args and not node.keywords):
                            findings.append(rule.finding(
                                module, node,
                                f"random.{func.attr}() without a seed is "
                                f"OS-entropy seeded; pass an explicit seed"))
                self.generic_visit(node)

        Visitor().visit(module.tree)
        return iter(findings)


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically a set: literal, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    """MC2003: no iteration over unordered sets in simulation logic."""

    code = "MC2003"
    name = "unordered-iteration"
    summary = "iterating a set has no defined order; sort it first"
    rationale = ("Arbitration, event scheduling, and victim selection that "
                 "walk a set make decisions in hash order — stable within "
                 "one interpreter but not a *specified* order, and one "
                 "str/object key makes it PYTHONHASHSEED-dependent. "
                 "Wrap the iterable in sorted() with an explicit key.")

    #: Attributes known to hold sets in this codebase.
    KNOWN_SET_ATTRS = {"poisoned_lines"}

    def check_module(self, module: Module) -> Iterator[Finding]:
        findings: List[Finding] = []
        rule = self

        def check_iter(node: ast.AST, iterable: ast.AST) -> None:
            if _is_set_expr(iterable):
                findings.append(rule.finding(
                    module, node,
                    "iteration over an unordered set expression; "
                    "wrap in sorted(...)"))
            elif (isinstance(iterable, ast.Attribute)
                    and iterable.attr in rule.KNOWN_SET_ATTRS):
                findings.append(rule.finding(
                    module, node,
                    f"iteration over set attribute .{iterable.attr}; "
                    f"wrap in sorted(...)"))

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                check_iter(node, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    check_iter(node, gen.iter)
        return iter(findings)


@register
class FloatEqualityRule(Rule):
    """MC2004: no float equality in cycle arithmetic."""

    code = "MC2004"
    name = "float-equality"
    summary = "== / != on float-valued expressions is round-off fragile"
    rationale = ("Cycle math must stay integral; the instant a latency is "
                 "divided, equality comparisons become round-off lotteries "
                 "that can flip an arbitration decision between hosts. "
                 "Compare integers, or use explicit tolerances.")

    def _is_floaty(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_floaty(node.left) or self._is_floaty(node.right)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand)
        return False

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, (lhs, rhs) in zip(node.ops,
                                      zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_floaty(lhs) or self._is_floaty(rhs):
                    yield self.finding(
                        module, node,
                        "float equality comparison; compare integers or "
                        "use an explicit tolerance")


#: Call names whose results are freshly-allocated mutables.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "deque",
                      "defaultdict", "OrderedDict", "Counter"}


@register
class MutableDefaultRule(Rule):
    """MC2005: no mutable default arguments."""

    code = "MC2005"
    name = "mutable-default"
    summary = "mutable defaults alias state across calls and instances"
    rationale = ("A list/dict/set default is created once at def time: two "
                 "SimObjects sharing one accidental default queue is a "
                 "classic cross-run heisenbug. Default to None and "
                 "allocate inside the body.")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_FACTORIES
        return False

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default,
                        f"mutable default argument on {label}(); use None "
                        f"and allocate per call")
