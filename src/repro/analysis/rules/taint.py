"""Poison-taint completeness pass (MC2301).

PR 1 introduced line-granular *poison*: a detected-uncorrectable ECC
error marks its cacheline known-bad, and every data-movement path —
bounce reconstruction, materialization, BPQ park/drain, eager fallback —
must carry that mark with the bytes so corruption is contained, never
laundered back into clean data.  The containment oracle can only catch a
path that a test exercises; this pass closes the gap *statically* by
flagging any function that moves functional line data without ever
consulting or propagating poison state.

The pass is hosted on the shared call-graph IR
(:mod:`repro.analysis.callgraph`): the graph enumerates every
function/method in the poison-critical packages and records its call
sites; this module contributes only the taint-specific facts —

1. does a function *read* line data (``read``/``read_line``/``.data``
   access), does it *write* line data (``write_line``, a backing/store
   ``write``, or a ``.data`` attribute store), and does it *touch*
   poison state (any reference to the poison vocabulary)?
2. poison-awareness propagates callee->caller through
   :meth:`~repro.analysis.callgraph.CallGraph.propagate_up` — a
   function that delegates movement to a poison-aware helper is itself
   safe;
3. the data primitives themselves (``BackingStore.read*/write*``) do
   **not** confer awareness on their callers: ``write_line`` clears
   poison on overwrite, so a caller moving *derived* bytes must
   re-poison explicitly — exactly the mistake this pass exists to catch.

A function that both reads and writes line data and is not
poison-aware is flagged.  False positives are expected to be rare and
carry a ``# noqa: MC2301`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.analysis.callgraph import CallGraph, FunctionNode, walk_body
from repro.analysis.core import Finding, Rule, register

#: Packages whose functions move functional line data.
TARGET_PACKAGES = (
    "repro.mcsquare", "repro.cache", "repro.mem", "repro.memctrl",
    "repro.faults",
)

#: Identifiers that constitute "touching poison state".
POISON_TOKENS = {
    "poison", "poisoned", "clear_poison", "line_poisoned",
    "range_poisoned", "poisoned_lines", "_poisoned", "propagate_poison",
}

#: Method names that read functional line data.
READ_PRIMITIVES = {"read", "read_line"}

#: Method names that write functional line data.
WRITE_PRIMITIVES = {"write", "write_line"}

#: Primitive methods excluded from conferring poison awareness (their
#: poison handling covers *their own* write, not the caller's derivation).
NON_CONFERRING = READ_PRIMITIVES | WRITE_PRIMITIVES | {"fill", "copy"}


def _receiver_text(node: ast.Attribute) -> str:
    try:
        return ast.unparse(node.value)
    except Exception:  # pragma: no cover - unparse of exotic nodes
        return ""


def _is_data_write_call(node: ast.Call) -> bool:
    """``X.write_line(...)`` always; ``X.write(...)`` for memory-ish X."""
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr == "write_line":
        return True
    if attr == "write":
        recv = _receiver_text(node.func).lower()
        return any(token in recv for token in ("backing", "store", "mem"))
    return False


def _is_data_read_call(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr == "read_line":
        return True
    if attr == "read":
        recv = _receiver_text(node.func).lower()
        return any(token in recv for token in ("backing", "store", "mem"))
    return False


class TaintFacts:
    """Flow-insensitive poison facts for one graph function."""

    __slots__ = ("reads_data", "writes_data", "touches_poison")

    def __init__(self) -> None:
        self.reads_data = False
        self.writes_data = False
        self.touches_poison = False


def taint_facts(fn: FunctionNode) -> TaintFacts:
    """Walk ``fn``'s subtree for data movement and poison references."""
    facts = TaintFacts()
    for node in walk_body(fn.node):
        if isinstance(node, ast.Call):
            if _is_data_write_call(node):
                facts.writes_data = True
            if _is_data_read_call(node):
                facts.reads_data = True
        if isinstance(node, ast.Attribute):
            if node.attr in POISON_TOKENS:
                facts.touches_poison = True
            elif node.attr == "data" and isinstance(node.ctx, ast.Load):
                # Reading another component's buffered line bytes (BPQ
                # entries, packets) is a data *source* too.
                facts.reads_data = True
            elif node.attr == "data" and isinstance(node.ctx, ast.Store):
                facts.writes_data = True
        if isinstance(node, ast.Name) and node.id in POISON_TOKENS:
            facts.touches_poison = True
    return facts


@register
class PoisonTaintRule(Rule):
    """MC2301: data movement must propagate (or consciously clear) poison."""

    code = "MC2301"
    name = "poison-taint"
    summary = "function moves line data without consulting poison state"
    rationale = ("Every new data path through mcsquare/cache/mem must keep "
                 "the PR 1 containment invariant: bytes derived from a "
                 "poisoned line stay marked. A mover that never mentions "
                 "poison silently launders corruption past the oracle.")

    def check_project(self, project) -> Iterator[Finding]:
        # The taint walk needs its own *scoped* graph: bare-name
        # awareness propagation is only sound within the
        # poison-critical packages, so the shared full graph is not
        # reused here.
        graph = CallGraph.build(project.modules, packages=TARGET_PACKAGES)
        facts: Dict[str, TaintFacts] = {
            qualname: taint_facts(fn)
            for qualname, fn in graph.functions.items()}
        aware = graph.propagate_up(
            seed=lambda fn: facts[fn.qualname].touches_poison,
            skip=lambda bare: bare in NON_CONFERRING)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            fact = facts[qualname]
            if fact.reads_data and fact.writes_data and qualname not in aware:
                yield self.finding(
                    fn.module, fn.node,
                    f"{qualname} moves functional line data but "
                    f"never propagates or checks poison; thread the "
                    f"source's poison state to the destination")
