"""Poison-taint completeness pass (MC2301).

PR 1 introduced line-granular *poison*: a detected-uncorrectable ECC
error marks its cacheline known-bad, and every data-movement path —
bounce reconstruction, materialization, BPQ park/drain, eager fallback —
must carry that mark with the bytes so corruption is contained, never
laundered back into clean data.  The containment oracle can only catch a
path that a test exercises; this pass closes the gap *statically* by
flagging any function that moves functional line data without ever
consulting or propagating poison state.

The analysis is a conservative interprocedural reachability walk rather
than a full dataflow engine:

1. Every function/method in the poison-critical packages (``mcsquare``,
   ``cache``, ``mem``, ``memctrl``, ``faults``) is summarized: does it
   *read* line data (``read``/``read_line``/``.data`` access), does it
   *write* line data (``write_line``, a backing/store ``write``, or a
   ``.data`` attribute store), and does it *touch* poison state (any
   reference to the poison vocabulary: ``poison``, ``poisoned``,
   ``range_poisoned`` …)?
2. A call graph is built by name matching within those packages and
   poison-awareness is propagated through it — a function that delegates
   movement to a poison-aware helper is itself safe.
3. The data primitives themselves (``BackingStore.read*/write*``) do
   **not** confer awareness on their callers: ``write_line`` clears
   poison on overwrite, so a caller moving *derived* bytes must
   re-poison explicitly — exactly the mistake this pass exists to catch.

A function that both reads and writes line data and is not
poison-aware is flagged.  False positives are expected to be rare and
carry a ``# noqa: MC2301`` with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.analysis.core import Finding, Module, Rule, register

#: Packages whose functions move functional line data.
TARGET_PACKAGES = (
    "repro.mcsquare", "repro.cache", "repro.mem", "repro.memctrl",
    "repro.faults",
)

#: Identifiers that constitute "touching poison state".
POISON_TOKENS = {
    "poison", "poisoned", "clear_poison", "line_poisoned",
    "range_poisoned", "poisoned_lines", "_poisoned", "propagate_poison",
}

#: Method names that read functional line data.
READ_PRIMITIVES = {"read", "read_line"}

#: Method names that write functional line data.
WRITE_PRIMITIVES = {"write", "write_line"}

#: Primitive methods excluded from conferring poison awareness (their
#: poison handling covers *their own* write, not the caller's derivation).
NON_CONFERRING = READ_PRIMITIVES | WRITE_PRIMITIVES | {"fill", "copy"}


def _receiver_text(node: ast.Attribute) -> str:
    try:
        return ast.unparse(node.value)
    except Exception:  # pragma: no cover - unparse of exotic nodes
        return ""


def _is_data_write_call(node: ast.Call) -> bool:
    """``X.write_line(...)`` always; ``X.write(...)`` for memory-ish X."""
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr == "write_line":
        return True
    if attr == "write":
        recv = _receiver_text(node.func).lower()
        return any(token in recv for token in ("backing", "store", "mem"))
    return False


def _is_data_read_call(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr == "read_line":
        return True
    if attr == "read":
        recv = _receiver_text(node.func).lower()
        return any(token in recv for token in ("backing", "store", "mem"))
    return False


@dataclass
class FunctionSummary:
    """Flow-insensitive facts about one function."""

    qualname: str                  # e.g. "repro.mem.backing_store.BackingStore.copy"
    name: str                      # bare function name
    module: Module
    node: ast.AST
    reads_data: bool = False
    writes_data: bool = False
    touches_poison: bool = False
    callees: Set[str] = field(default_factory=set)   # bare names called
    aware: bool = False            # fixed point of poison awareness


def _summarize(module: Module, func: ast.AST, qualname: str) -> FunctionSummary:
    summary = FunctionSummary(qualname=qualname, name=func.name,
                              module=module, node=func)
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if _is_data_write_call(node):
                summary.writes_data = True
            if _is_data_read_call(node):
                summary.reads_data = True
            callee = None
            if isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            elif isinstance(node.func, ast.Name):
                callee = node.func.id
            if callee:
                summary.callees.add(callee)
        if isinstance(node, ast.Attribute):
            if node.attr in POISON_TOKENS:
                summary.touches_poison = True
            elif node.attr == "data" and isinstance(node.ctx, ast.Load):
                # Reading another component's buffered line bytes (BPQ
                # entries, packets) is a data *source* too.
                summary.reads_data = True
            elif node.attr == "data" and isinstance(node.ctx, ast.Store):
                summary.writes_data = True
        if isinstance(node, ast.Name) and node.id in POISON_TOKENS:
            summary.touches_poison = True
    return summary


def collect_summaries(modules: List[Module]) -> List[FunctionSummary]:
    """Summaries for every function in the poison-critical packages."""
    summaries: List[FunctionSummary] = []
    for module in modules:
        if not any(module.package == pkg or module.package.startswith(pkg + ".")
                   for pkg in TARGET_PACKAGES):
            continue

        def walk(body, prefix: str) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    summaries.append(_summarize(module, node, qualname))
                    walk(node.body, qualname)
                elif isinstance(node, ast.ClassDef):
                    walk(node.body, f"{prefix}.{node.name}")

        walk(module.tree.body, module.package)
    return summaries


def propagate_awareness(summaries: List[FunctionSummary]) -> None:
    """Fixed-point: a function is aware if it or a callee touches poison.

    Callees resolve by bare name across the target packages (a sound
    over-approximation for this codebase's method-call style), except
    the raw data primitives, which never confer awareness.
    """
    by_name: Dict[str, List[FunctionSummary]] = {}
    for summary in summaries:
        by_name.setdefault(summary.name, []).append(summary)
        summary.aware = summary.touches_poison

    changed = True
    while changed:
        changed = False
        for summary in summaries:
            if summary.aware:
                continue
            for callee in summary.callees:
                if callee in NON_CONFERRING:
                    continue
                if any(target.aware for target in by_name.get(callee, ())):
                    summary.aware = True
                    changed = True
                    break


@register
class PoisonTaintRule(Rule):
    """MC2301: data movement must propagate (or consciously clear) poison."""

    code = "MC2301"
    name = "poison-taint"
    summary = "function moves line data without consulting poison state"
    rationale = ("Every new data path through mcsquare/cache/mem must keep "
                 "the PR 1 containment invariant: bytes derived from a "
                 "poisoned line stay marked. A mover that never mentions "
                 "poison silently launders corruption past the oracle.")

    def check_project(self, modules: List[Module]) -> Iterator[Finding]:
        summaries = collect_summaries(modules)
        propagate_awareness(summaries)
        for summary in summaries:
            if summary.reads_data and summary.writes_data and not summary.aware:
                yield self.finding(
                    summary.module, summary.node,
                    f"{summary.qualname} moves functional line data but "
                    f"never propagates or checks poison; thread the "
                    f"source's poison state to the destination")
