"""Fork-safety and purity rules (MC2401-MC2404).

PR 3 made every paper sweep fan out through
:func:`repro.perf.runner.sim_map`: points run in forked worker
processes and results merge back in input order, under the contract
that a parallel sweep is **observationally identical** to a serial one.
That contract is purely behavioural — nothing stops a sweep function
from mutating a module-level dict (each worker then mutates a private
copy-on-write page the parent never sees), reading ambient process
state, or capturing an unpicklable resource in a point.  These rules
prove the contract statically, on the worker-reachability closure the
shared call graph computes from every ``SimPoint(fn, ...)`` dispatch
site; the ``simsan`` runtime sanitizer (:mod:`repro.analysis.simsan`)
is the matching dynamic oracle.

The dispatch infrastructure itself (``repro.perf.runner``,
``repro.perf.cache``) is exempt: it deliberately reads orchestration
environment in the parent and pins it inside workers
(``REPRO_JOBS=1``), and its memo writes are idempotent content hashes.
simsan audits that layer dynamically instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.callgraph import innermost_facts, module_imports
from repro.analysis.core import Finding, Module, Rule, register

#: Package prefixes whose facts are never attributed to worker paths:
#: ``repro.perf`` is the dispatch/caching orchestration layer itself
#: (parent-side env reads, idempotent memo writes, the cache's own file
#: IO), ``repro.resilience`` is its supervision layer (journal/report
#: file IO and deadline env knobs, all parent-side), and
#: ``repro.analysis`` is host-side tooling (figure assembly and this
#: linter) that builds sweeps but is never dispatched into one.  All
#: stay covered dynamically by the simsan runtime sanitizer.
INFRA_MODULES = ("repro.perf", "repro.analysis", "repro.resilience")

#: Constructors whose instances must not cross a fork/pickle boundary.
_FORK_UNSAFE_FACTORIES = {
    "open", "Lock", "RLock", "Semaphore", "BoundedSemaphore",
    "Condition", "Event", "Barrier", "Thread", "socket", "Popen",
}


def _exempt(qualname_path: str) -> bool:
    return any(qualname_path == mod or qualname_path.startswith(mod + ".")
               for mod in INFRA_MODULES)


class _WorkerPathRule(Rule):
    """Shared driver: flag one fact kind across the worker closure."""

    def facts_of(self, fn):
        raise NotImplementedError

    def message(self, fact) -> str:
        raise NotImplementedError

    def check_project(self, project) -> Iterator[Finding]:
        if not project.workers:
            return
        self._project = project
        reached = [q for q in sorted(project.reached)
                   if not _exempt(project.graph.functions[q].module.package)]
        for fact in innermost_facts(project.graph, reached, self.facts_of):
            yield self.finding(fact.fn.module, fact.node, self.message(fact))

    def _route(self, fact) -> str:
        return self._project.route(fact.fn.qualname)


@register
class SharedGlobalWriteRule(_WorkerPathRule):
    """MC2401: no shared-mutable-global writes on a worker path."""

    code = "MC2401"
    name = "fork-global-write"
    summary = "module-global mutated by a sim_map-dispatched function"
    rationale = ("A forked worker mutates its own copy-on-write image of "
                 "module state: the write is invisible to the parent and "
                 "to sibling points, so a parallel sweep silently diverges "
                 "from the serial run the oracles validated. Thread state "
                 "through parameters and return values instead.")

    def facts_of(self, fn):
        for name, nodes in sorted(fn.global_writes.items()):
            for node in nodes:
                yield node, name

    def message(self, fact) -> str:
        return (f"module-level global '{fact.label}' is written on a "
                f"sim_map worker path ({self._route(fact)}); forked "
                f"workers mutate a private copy, so parallel and serial "
                f"sweeps diverge — pass state via parameters/results")


@register
class AmbientWorkerInputRule(_WorkerPathRule):
    """MC2402: no ambient RNG or environment reads on a worker path."""

    code = "MC2402"
    name = "ambient-worker-input"
    summary = "worker path reads os.environ or the process-global RNG"
    rationale = ("A sim_map point must be a pure function of its "
                 "parameters: an os.environ read or an unseeded RNG draw "
                 "inside a worker makes the result depend on process "
                 "identity, differs between serial and forked execution, "
                 "and is invisible to the result cache's key.")

    def facts_of(self, fn):
        for node in fn.env_reads:
            yield node, "env"
        for node in fn.rng_calls:
            yield node, "rng"

    def message(self, fact) -> str:
        if fact.label == "env":
            return ("os.environ read on a sim_map worker path; pass the "
                    "value through the point's parameters so it reaches "
                    "the workers and the cache key")
        return ("process-global RNG call on a sim_map worker path; "
                "construct random.Random(seed) from an explicit parameter")


@register
class ForkUnsafeCaptureRule(Rule):
    """MC2403: SimPoints must capture only picklable, fork-safe values."""

    code = "MC2403"
    name = "fork-unsafe-capture"
    summary = "SimPoint captures a closure, bound method, or live resource"
    rationale = ("Points cross the fork boundary by pickling: a lambda or "
                 "nested function fails to pickle the moment REPRO_JOBS>1, "
                 "a bound method drags its whole object through the fork, "
                 "and open files/locks/sockets are duplicated descriptors "
                 "whose state desynchronizes between processes. Dispatch "
                 "module-level functions with plain-data arguments.")

    def _flag_target(self, module: Module, project,
                     target: ast.AST) -> Iterator[Finding]:
        imports = module_imports(module.tree)
        if isinstance(target, ast.Lambda):
            yield self.finding(
                module, target,
                "SimPoint dispatches a lambda; lambdas cannot be pickled "
                "across the fork boundary — use a module-level function")
        elif isinstance(target, ast.Name):
            for fn in project.graph.by_name.get(target.id, ()):
                if fn.module.path == module.path and fn.is_nested:
                    yield self.finding(
                        module, target,
                        f"SimPoint dispatches nested function "
                        f"'{target.id}'; closures cannot be pickled "
                        f"across the fork boundary — hoist it to module "
                        f"level")
                    break
        elif isinstance(target, ast.Attribute):
            root = target.value
            while isinstance(root, ast.Attribute):
                root = root.value
            root_name = root.id if isinstance(root, ast.Name) else ""
            if root_name not in imports:
                yield self.finding(
                    module, target,
                    f"SimPoint dispatches bound method "
                    f"'.{target.attr}'; the receiver object is pickled "
                    f"into every worker — dispatch a module-level "
                    f"function taking the object's parameters")

    def check_project(self, project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call) and node.args):
                    continue
                func = node.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else "")
                if name != "SimPoint":
                    continue
                yield from self._flag_target(module, project, node.args[0])
                # Live resources in the captured arguments.
                for arg in list(node.args[1:]) + [kw.value
                                                  for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if not isinstance(sub, ast.Call):
                            continue
                        cname = (sub.func.id
                                 if isinstance(sub.func, ast.Name)
                                 else sub.func.attr
                                 if isinstance(sub.func, ast.Attribute)
                                 else "")
                        if cname in _FORK_UNSAFE_FACTORIES:
                            yield self.finding(
                                module, sub,
                                f"SimPoint argument constructs "
                                f"'{cname}(...)', a fork-unsafe live "
                                f"resource; open it inside the point "
                                f"function instead")


@register
class MergeOrderRule(Rule):
    """MC2404: no unordered-set iteration where worker results merge."""

    code = "MC2404"
    name = "merge-order-iteration"
    summary = "set iterated in a sim_map merge function without sorted()"
    rationale = ("The function that fans a sweep out and folds results "
                 "back is the process-merge boundary: iterating a set "
                 "there lets hash order decide row order or aggregation "
                 "order, so two runs of the *same* parallel sweep can "
                 "emit differently-ordered exhibits. Wrap the iterable "
                 "in sorted() with an explicit key. (MC2003 flags set "
                 "expressions anywhere; this rule additionally tracks "
                 "set-typed locals, but only where merges happen.)")

    def _set_locals(self, fn_node: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_set = isinstance(value, (ast.Set, ast.SetComp))
            if (not is_set and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)):
                is_set = value.func.id in ("set", "frozenset")
            if is_set:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            calls_sim_map = any(
                isinstance(sub, ast.Call) and (
                    (isinstance(sub.func, ast.Name)
                     and sub.func.id == "sim_map")
                    or (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "sim_map"))
                for sub in ast.walk(node))
            if not calls_sim_map:
                continue
            set_locals = self._set_locals(node)
            if not set_locals:
                continue
            for sub in ast.walk(node):
                iters: List[ast.AST] = []
                if isinstance(sub, (ast.For, ast.AsyncFor)):
                    iters = [sub.iter]
                elif isinstance(sub, (ast.ListComp, ast.SetComp,
                                      ast.DictComp, ast.GeneratorExp)):
                    iters = [gen.iter for gen in sub.generators]
                for it in iters:
                    if isinstance(it, ast.Name) and it.id in set_locals:
                        yield self.finding(
                            module, sub,
                            f"iteration over set-typed local '{it.id}' in "
                            f"a sim_map merge function; hash order leaks "
                            f"into the merged exhibit — wrap in sorted()")
