"""Event-safety rules (MC2101-MC2104).

The discrete-event engine (:mod:`repro.sim.engine`) owns the only clock;
components interact with it under a narrow contract: never schedule into
the past, account state through the shared :class:`StatGroup` tree, and
fail loudly through the :mod:`repro.common.errors` hierarchy so the
watchdog and oracles can tell a modelled fault from a simulator bug.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (Finding, Module, Rule,
                                 module_imports, register)


def _negative_const(node: ast.AST) -> bool:
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
            and node.operand.value > 0)


def _now_minus_positive(node: ast.AST) -> bool:
    """Matches ``<...>.now - <positive constant>`` expressions."""
    return (isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Sub)
            and isinstance(node.left, ast.Attribute)
            and node.left.attr == "now"
            and isinstance(node.right, ast.Constant)
            and isinstance(node.right.value, (int, float))
            and node.right.value > 0)


@register
class SchedulePastRule(Rule):
    """MC2101: event callbacks must not schedule at t < now."""

    code = "MC2101"
    name = "schedule-in-past"
    summary = "scheduling before the current cycle corrupts event order"
    rationale = ("The engine pops events in (when, seq) order; an event "
                 "landing behind `now` either raises at runtime or, worse, "
                 "fires out of order relative to already-popped work. "
                 "Negative delays and `now - k` timestamps are always bugs.")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if node.func.attr == "schedule" and _negative_const(first):
                yield self.finding(
                    module, node,
                    "schedule() with a negative delay fires in the past")
            elif node.func.attr == "schedule_at" and (
                    _negative_const(first) or _now_minus_positive(first)):
                yield self.finding(
                    module, node,
                    "schedule_at() earlier than the current cycle")


@register
class AdHocStatRule(Rule):
    """MC2102: stats go through the StatGroup tree, not ad-hoc objects."""

    code = "MC2102"
    name = "adhoc-stat"
    summary = "construct stats via StatGroup.counter()/distribution()"
    rationale = ("The analysis layer, the CLI report, and the differential "
                 "oracles discover statistics by walking the shared "
                 "StatGroup tree; a Counter or Distribution constructed "
                 "directly is invisible to all of them and to reset().")

    #: Module that legitimately constructs the stat primitives.
    HOME = "repro.sim.stats"

    def check_module(self, module: Module) -> Iterator[Finding]:
        if module.package == self.HOME:
            return
        imports = module_imports(module.tree)
        stat_names = {
            local for local, origin in imports.items()
            if origin in (f"{self.HOME}.Counter", f"{self.HOME}.Distribution")}
        if not stat_names:
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in stat_names):
                yield self.finding(
                    module, node,
                    f"direct {node.func.id}(...) construction bypasses the "
                    f"StatGroup tree; use stats.counter()/distribution()")


#: Builtin exceptions that must not be raised from simulation code.
_FORBIDDEN_RAISES = {
    "Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
    "KeyError", "IndexError", "ArithmeticError", "ZeroDivisionError",
    "AssertionError", "OSError", "IOError", "LookupError", "AttributeError",
}


@register
class ExceptionHierarchyRule(Rule):
    """MC2103: raised exceptions derive from repro.common.errors."""

    code = "MC2103"
    name = "foreign-exception"
    summary = "raise ReproError subclasses, not bare builtins"
    rationale = ("Harness code distinguishes modelled failures (poison, "
                 "livelock, capacity) from simulator bugs by exception "
                 "type; a bare ValueError escaping an event handler is "
                 "indistinguishable from a crash. NotImplementedError on "
                 "abstract hooks is exempt.")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _FORBIDDEN_RAISES:
                yield self.finding(
                    module, node,
                    f"raise {name} in simulation code; use a "
                    f"repro.common.errors type (e.g. ConfigError, "
                    f"SimulationError)")


@register
class SwallowedExceptionRule(Rule):
    """MC2104: handlers must not silently swallow broad exceptions."""

    code = "MC2104"
    name = "swallowed-exception"
    summary = "bare/broad except with a pass body hides handler failures"
    rationale = ("An exception escaping an event callback is the only "
                 "signal that the machine state diverged; `except: pass` "
                 "converts that into silent corruption the poison oracle "
                 "can no longer attribute.")

    def check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException"))
            body_is_noop = all(
                isinstance(stmt, (ast.Pass, ast.Continue))
                or (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))
                for stmt in node.body)
            if broad and body_is_noop:
                yield self.finding(
                    module, node,
                    "broad except handler swallows the exception; "
                    "narrow the type or re-raise")
