"""Rule modules self-register with the core registry on import."""

from repro.analysis.rules import (cachesoundness, determinism,  # noqa: F401
                                  eventsafety, forksafety, hygiene,
                                  ownership, raceorder, taint)
