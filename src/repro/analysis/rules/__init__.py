"""Rule modules self-register with the core registry on import."""

from repro.analysis.rules import determinism, eventsafety, taint  # noqa: F401
