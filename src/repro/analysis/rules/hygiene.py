"""Suppression-hygiene rules (MC2901).

A ``# noqa`` that suppresses nothing is worse than dead code: it looks
like a reviewed, justified exception while actually masking whatever
finding lands on that line next.  MC2901 keeps suppressions honest —
every one must currently earn its keep.

The check needs the full finding set *before* suppressions are applied,
so it runs as an engine post-pass (:func:`repro.analysis.engine.run`)
rather than through the normal rule hooks; the class below exists so
the code appears in the catalogue, ``--select``, and SARIF rule
metadata like any other rule.

Semantics (select-aware, so partial runs never cry wolf):

* a **coded** ``# noqa: MC2xxx[, ...]`` is stale when every listed
  analyzer code was actually run this pass and none of them produced a
  finding on that line; codes belonging to other tools (``F401``,
  ``E501`` …) are ignored entirely;
* a **bare** ``# noqa`` is stale when the full rule set ran and no
  finding of any kind anchored to the line — under ``--select`` a bare
  suppression is indeterminate and left alone.
"""

from __future__ import annotations

import re

from repro.analysis.core import Rule, register

#: Analyzer rule codes (vs. foreign-tool codes like F401/E501).
MC_CODE_RE = re.compile(r"^MC2\d{3}$")


@register
class StaleSuppressionRule(Rule):
    """MC2901: every ``# noqa`` must suppress a real finding."""

    code = "MC2901"
    name = "stale-noqa"
    summary = "# noqa comment suppresses nothing on its line"
    rationale = ("A suppression that no longer matches any finding reads "
                 "as a reviewed exception while silently pre-approving "
                 "the next regression on that line. Delete it, or narrow "
                 "a bare noqa to the specific codes it still needs.")

    # All work happens in the engine post-pass (see module docstring).
