"""Cache-soundness rules (MC2501-MC2503).

The persistent result cache (:mod:`repro.perf.cache`) promises that a
hit is **bit-identical** to a fresh run.  Its key covers exactly four
things: the point's fully-qualified function name, its canonicalized
arguments, ``REPRO_SCALE``, and a content hash of every source file
under ``src/repro``.  Anything else that influences a cached function's
result is a silent soundness hole — the cache returns yesterday's
answer for today's question.  These rules close the three holes that
matter for a ``SimPoint``-dispatched (hence cached) function:

* **MC2501** — the result depends on an input outside the key: a
  mutated module-level global, or bytes read from a file handle opened
  inside the function;
* **MC2502** — the returned value breaks the JSON round-trip contract
  (tuples silently become lists; sets/bytes never cache at all, so the
  sweep re-simulates forever without anyone noticing);
* **MC2503** — the function's module imports code outside both
  ``repro`` and the standard library, which the source-hash fingerprint
  does not cover: editing that dependency never invalidates the store.

Like the MC24xx family, findings anchor on *facts* inside the
worker-reachability closure, and the orchestration layer itself
(``repro.perf.runner``/``cache`` — whose file IO **is** the cache) is
exempt; the ``REPRO_SIMSAN=1`` runtime sanitizer audits it dynamically
by recomputing a slice of cache hits and comparing.
"""

from __future__ import annotations

import ast
import sys
from typing import Iterator, List, Set

from repro.analysis.callgraph import innermost_facts
from repro.analysis.core import Finding, Rule, register
from repro.analysis.rules.forksafety import _exempt

#: Module roots the code-stamp fingerprint covers.
_STAMPED_ROOT = "repro"

_STDLIB: Set[str] = set(getattr(sys, "stdlib_module_names", ())) | {
    # Minimal fallback for interpreters without stdlib_module_names.
    "os", "sys", "json", "math", "random", "time", "struct", "hashlib",
    "pathlib", "typing", "dataclasses", "collections", "itertools",
    "functools", "re", "ast", "io", "abc", "enum", "heapq", "argparse",
    "subprocess", "multiprocessing", "concurrent", "contextlib", "copy",
    "pickle", "tokenize", "textwrap", "unittest", "warnings", "weakref",
}

#: Test-harness roots: they orchestrate runs but never feed the values a
#: sim point computes, so the stamp legitimately ignores them.
_HARNESS: Set[str] = {"pytest", "hypothesis", "pytest_benchmark"}


def _mutated_globals(project, module_path: str) -> Set[str]:
    """Global names some function of ``module_path`` actually writes.

    A mutable module-level container that nothing ever mutates is a
    constant lookup table, not a parameter; only written globals can
    make a cached result stale.
    """
    out: Set[str] = set()
    for fn in project.graph.functions.values():
        if fn.module.path == module_path:
            out.update(fn.global_writes)
    return out


@register
class CacheKeyOmissionRule(Rule):
    """MC2501: every input influencing a cached result must be keyed."""

    code = "MC2501"
    name = "cache-key-omission"
    summary = "cached sim function reads state outside its cache key"
    rationale = ("The simcache key is (function, args, scale, source "
                 "hash). A dispatched function reading a mutated module "
                 "global or a file's contents folds an unkeyed input into "
                 "its result: the first run poisons the store and every "
                 "later hit replays it, bit-identical to the wrong "
                 "answer. Pass such inputs as explicit parameters.")

    def check_project(self, project) -> Iterator[Finding]:
        if not project.workers:
            return
        reached = [q for q in sorted(project.reached)
                   if not _exempt(project.graph.functions[q].module.package)]

        def facts_of(fn):
            mutated = _mutated_globals(project, fn.module.path)
            for name, nodes in sorted(fn.global_reads.items()):
                if name in mutated:
                    for node in nodes:
                        yield node, f"global:{name}"
            for node in fn.open_calls:
                yield node, "open"

        for fact in innermost_facts(project.graph, reached, facts_of):
            if fact.label == "open":
                message = ("open() on a cached sim-point path; file "
                           "contents influence the result but are absent "
                           "from the cache key — pass the data (or a "
                           "content digest) as a parameter")
            else:
                name = fact.label.split(":", 1)[1]
                message = (f"read of mutated module global '{name}' on a "
                           f"cached sim-point path; its value influences "
                           f"the result but is absent from the cache key, "
                           f"so hits can replay stale state — pass it as "
                           f"a parameter")
            yield self.finding(fact.fn.module, fact.node, message)


@register
class JsonRoundTripRule(Rule):
    """MC2502: cached results must survive the JSON round trip."""

    code = "MC2502"
    name = "uncacheable-result"
    summary = "sim-point return value breaks the JSON round-trip contract"
    rationale = ("SimCache.put only stores values that JSON reproduces "
                 "exactly: a tuple comes back a list (a hit is no longer "
                 "bit-identical), and sets/bytes/non-string keys are "
                 "refused outright — the point silently re-simulates on "
                 "every run, defeating the cache without any error. "
                 "Return dicts of scalars, as every exhibit row does.")

    def _offending(self, value: ast.AST) -> str:
        if isinstance(value, ast.Tuple):
            return "a tuple (JSON round-trips it into a list)"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "a set (not JSON-encodable; never cached)"
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in ("set", "frozenset"):
                return f"{value.func.id}() (not JSON-encodable; never cached)"
            if value.func.id in ("bytes", "bytearray"):
                return (f"{value.func.id}() (not JSON-encodable; "
                        f"never cached)")
        if isinstance(value, ast.Constant) and isinstance(value.value, bytes):
            return "bytes (not JSON-encodable; never cached)"
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if (isinstance(key, ast.Constant)
                        and not isinstance(key.value, str)):
                    return (f"a dict with non-string key {key.value!r} "
                            f"(JSON stringifies keys; the hit is not "
                            f"bit-identical)")
        return ""

    def _own_returns(self, fn_node: ast.AST) -> List[ast.Return]:
        """Return statements of the function itself, not of nested defs."""
        out: List[ast.Return] = []
        stack: List[ast.AST] = list(getattr(fn_node, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Return):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def check_project(self, project) -> Iterator[Finding]:
        for qualname in sorted(project.workers):
            fn = project.graph.functions.get(qualname)
            if fn is None or _exempt(fn.module.package):
                continue
            for ret in self._own_returns(fn.node):
                if ret.value is None:
                    continue
                why = self._offending(ret.value)
                if why:
                    yield self.finding(
                        fn.module, ret,
                        f"{qualname} is dispatched through SimPoint but "
                        f"returns {why}; return a JSON-clean dict of "
                        f"scalars")


@register
class StampCoverageRule(Rule):
    """MC2503: cached code must be covered by the source fingerprint."""

    code = "MC2503"
    name = "stamp-coverage"
    summary = "cached sim path imports code the source hash does not cover"
    rationale = ("The simcache invalidates on any edit under src/repro "
                 "because the key embeds a content hash of exactly that "
                 "tree. A module on a cached path importing code from "
                 "anywhere else (a sibling project dir, a third-party "
                 "package) re-introduces the staleness the stamp exists "
                 "to prevent: edit the dependency and every old result "
                 "still hits. Vendor the code under src/repro or fold a "
                 "version marker into the point's parameters.")

    def _import_roots(self, node: ast.AST) -> List[str]:
        if isinstance(node, ast.Import):
            return [alias.name.split(".")[0] for alias in node.names]
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            return [node.module.split(".")[0]]
        return []

    def check_project(self, project) -> Iterator[Finding]:
        if not project.workers:
            return
        # Modules hosting at least one function on a cached path.
        hot_paths: Set[str] = set()
        for qualname in project.reached:
            fn = project.graph.functions.get(qualname)
            if fn is not None and not _exempt(fn.module.package):
                hot_paths.add(fn.module.path)
        seen: Set[tuple] = set()
        for module in project.modules:
            if module.path not in hot_paths:
                continue
            for node in ast.walk(module.tree):
                for root in self._import_roots(node):
                    if (root == _STAMPED_ROOT or root in _STDLIB
                            or root in _HARNESS):
                        continue
                    key = (module.path, node.lineno, root)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        module, node,
                        f"module on a cached sim path imports '{root}', "
                        f"which the src/repro source-hash fingerprint "
                        f"does not cover; edits to it will not "
                        f"invalidate cached results")
