"""MC27xx: shard-ownership rules for the per-channel engine split.

Thin rule adapters over the shared ownership inference
(:mod:`repro.analysis.ownership`): the pass runs once per analyzer
invocation (memoized on the project context) and each rule reports its
slice of the problems.  See ``docs/SHARDING.md`` for the partition
contract the rules enforce and ``mc2-analyze --ownership-report`` for
the full per-shard inventory.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import ownership
from repro.analysis.core import Finding, Rule, register

#: Attribute name the memoized report is stashed under on the project
#: context (one inference run serves all five rules).
_STASH = "_mc27_ownership_report"


def _report(project) -> ownership.OwnershipReport:
    rep = getattr(project, _STASH, None)
    if rep is None:
        rep = ownership.analyze(project.modules)
        setattr(project, _STASH, rep)
    return rep


class _OwnershipRule(Rule):
    """Base: report the inference problems matching this rule's code."""

    def check_project(self, project) -> Iterator[Finding]:
        for problem in _report(project).problems:
            if problem.code == self.code:
                yield self.finding(problem.module, problem.node,
                                   problem.message)


@register
class CrossShardAccess(_OwnershipRule):
    code = "MC2701"
    name = "cross-shard-access"
    summary = ("cross-shard access to mutable state outside a declared "
               "rendezvous port")
    rationale = (
        "The sharded engine turns every declared @rendezvous port into a "
        "deterministic cross-loop message.  A mutable-state access that "
        "bypasses the ports would become an unsynchronized cross-thread "
        "touch after the split — route it through a port, or move it to "
        "the owning shard.")


@register
class OwnershipLeak(_OwnershipRule):
    code = "MC2702"
    name = "ownership-leak"
    summary = ("a @shard_local class stores a cross-owner reference in "
               "its own instance state")
    rationale = (
        "A retained handle to another shard's object outlives the "
        "rendezvous that produced it, so later dereferences are invisible "
        "to the synchronization analysis.  Look the owner up per access "
        "(the _owner_of idiom) or pass the data itself through a port.")


@register
class RendezvousPhase(_OwnershipRule):
    code = "MC2703"
    name = "rendezvous-phase"
    summary = ("a @rendezvous port is scheduled outside the "
               "shared-rendezvous event phase")
    rationale = (
        "Rendezvous events must observe every shard's completed same-cycle "
        "work; running one in an earlier phase makes its outcome depend on "
        "the same-cycle tie-break.  Schedule ports with phase=2, like the "
        "DRAM arbiter grant.")


@register
class UnknownOwnership(_OwnershipRule):
    code = "MC2704"
    name = "unknown-ownership"
    summary = ("a component class with mutable state has no "
               "shard-ownership declaration")
    rationale = (
        "The partition proof is only as strong as its coverage: state "
        "with no declared owner cannot be assigned to an event loop.  The "
        "gate drives this bucket to exactly zero — every stateful class "
        "in the simulation packages declares @shard_local or @shared.")


@register
class OwnershipMismatch(_OwnershipRule):
    code = "MC2705"
    name = "ownership-mismatch"
    summary = ("a shard-ownership annotation contradicts the inferred "
               "channel wiring")
    rationale = (
        "Annotations are trusted by the engine split, so a declaration "
        "the dataflow contradicts (a @shared class wired to one channel, "
        "or a @shard_local class with no ownership evidence) is a latent "
        "partition bug, not a style issue.")
