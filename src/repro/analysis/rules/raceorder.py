"""Schedule-order independence rules (MC26xx).

The engine dispatches equal-cycle events in an order that is explicitly
*not* part of the simulator's semantics: the tie-break hook
(:func:`repro.sim.engine.set_default_tie_break`) may permute it freely
within a phase, and the ``REPRO_TIE_ORDER`` sanitizer does exactly that
in CI.  Code is therefore only correct when no observable result
depends on which of two same-cycle callbacks ran first.  This family
flags the patterns that break that contract:

* **MC2601 — same-cycle shared-state race.**  Two event handlers of one
  component class can be pending at the same cycle in the same engine
  phase, and one writes instance state the other reads or writes.
  Handler effects are computed over the synchronous call closure (a
  handler's helpers run in its event frame) and descend one object
  level into typed sub-components, so a CTT or BPQ mutation made from
  sibling handlers is attributed to the shared table, not hidden behind
  a method call.  Fix hints: *defer* one handler to a later phase (the
  component-arbiter / rendezvous convention), *sequence* both effects
  through one arbiter event, or make the update *commutative*.

* **MC2602 — ``sim.now``-keyed insertion whose order escapes.**  A dict
  keyed by the current cycle collides for same-cycle insertions, and
  iterating it leaks callback dispatch order into results.  Key by
  ``(now, seq)`` or iterate ``sorted()``.

* **MC2603 — non-commutative stat ``.value`` read-modify-write.**  The
  stats contract is that same-cycle updates commute (``inc``/``add``/
  ``+=``); an ``*=``-style RMW or a rebuild-from-read makes the final
  counter depend on handler order.

Handler pairs already separated by the engine's phase hierarchy carry
an ordering edge and are not flagged — the phase mechanism *is* the
static fix MC2601 recommends.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import (ATTR_AUGADD, CallGraph, FunctionNode,
                                      ProjectContext)
from repro.analysis.core import Finding, Module, Rule, register

#: Infrastructure packages whose scheduling is not simulation-semantic
#: (perf harness, the analyzer itself, resilience sweeps).
INFRA_MODULES = ("repro.perf", "repro.analysis", "repro.resilience")

#: Attributes that never carry simulation state: engine/tracer plumbing
#: references, never mutated concurrently in a meaningful way.
_PLUMBING_ATTRS = {"sim", "stats", "_trace", "_track"}


def _infra(package: str) -> bool:
    return any(package == pkg or package.startswith(pkg + ".")
               for pkg in INFRA_MODULES)


def _owning_class(graph: CallGraph, fn: FunctionNode) -> str:
    """Qualname of the class whose ``self`` the function closes over.

    Nested handler defs (``def _retry(): ... self.sim.schedule(...,
    _retry)``) inherit the enclosing method's class.
    """
    node: Optional[FunctionNode] = fn
    while node is not None:
        if node.class_name:
            return node.qualname.rsplit(".", 1)[0]
        node = graph.functions.get(node.parent) if node.parent else None
    return ""


def _class_quals(graph: CallGraph, class_qual: str) -> List[str]:
    """The class plus in-graph bases, for member lookup."""
    out = [class_qual]
    for bare in graph.class_bases.get(class_qual, ()):
        for qual in graph.class_names.get(bare, ()):
            if qual not in out:
                out.append(qual)
    return out


def _attr_types(graph: CallGraph, class_qual: str) -> Dict[str, str]:
    """``self.X`` attribute name -> class qualname, where derivable.

    Two sources, both in ``__init__``: a parameter with a class
    annotation assigned to ``self.X``, and a direct ``self.X =
    Cls(...)`` construction.
    """
    types: Dict[str, str] = {}
    for qual in _class_quals(graph, class_qual):
        init = graph.functions.get(f"{qual}.__init__")
        if init is None:
            continue
        annotations: Dict[str, str] = {}
        args = getattr(init.node, "args", None)
        if isinstance(args, ast.arguments):
            for a in list(args.posonlyargs) + list(args.args) \
                    + list(args.kwonlyargs):
                ann = a.annotation
                name = (ann.id if isinstance(ann, ast.Name)
                        else ann.attr if isinstance(ann, ast.Attribute)
                        else "")
                if name:
                    annotations[a.arg] = name
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                bare = ""
                if isinstance(node.value, ast.Name):
                    bare = annotations.get(node.value.id, "")
                elif isinstance(node.value, ast.Call) \
                        and isinstance(node.value.func, ast.Name):
                    bare = node.value.func.id
                for cls_qual in graph.class_names.get(bare, ()):
                    types.setdefault(target.attr, cls_qual)
    return types


class _Effects:
    """Read/write sets of one handler's synchronous event frame."""

    def __init__(self) -> None:
        # attr path ("_wpq", "ctt._entries") -> set of write kinds
        self.writes: Dict[str, Set[str]] = {}
        self.reads: Set[str] = set()
        # attr path -> a representative AST node (finding anchor)
        self.anchors: Dict[str, ast.AST] = {}


def _handler_effects(graph: CallGraph, class_qual: str,
                     fn: FunctionNode) -> _Effects:
    """Close over same-frame calls: helpers and typed sub-objects.

    Follows ``self.helper()`` calls within the owning class (and bases),
    bare calls to sibling nested defs, and one sub-object hop through
    ``self.X.m()`` when ``X``'s class is derivable — deep enough to see
    a CTT insert inside a read handler's helper chain.  Scheduled
    callbacks are *not* followed: they run in a different event frame.
    """
    effects = _Effects()
    quals = _class_quals(graph, class_qual)
    types = _attr_types(graph, class_qual)
    seen: Set[str] = set()
    # Work items: (function, attr-path prefix, class context for self.*)
    stack: List[Tuple[FunctionNode, str, List[str]]] = [(fn, "", quals)]
    while stack:
        node, prefix, ctx = stack.pop()
        if node.qualname in seen:
            continue
        seen.add(node.qualname)
        for attr, writes in node.attr_writes.items():
            path = f"{prefix}{attr}"
            effects.writes.setdefault(path, set()).update(
                kind for _n, kind in writes)
            effects.anchors.setdefault(path, writes[0][0])
        for attr, nodes in node.attr_reads.items():
            path = f"{prefix}{attr}"
            effects.reads.add(path)
            effects.anchors.setdefault(path, nodes[0])
        for site in node.calls:
            parts = site.dotted.split(".")
            if parts[0] == "self" and len(parts) == 2:
                # self.helper() within the class context.
                for qual in ctx:
                    helper = graph.functions.get(f"{qual}.{site.bare}")
                    if helper is not None:
                        stack.append((helper, prefix, ctx))
                        break
            elif parts[0] == "self" and len(parts) == 3 and not prefix:
                # One hop into a typed sub-object: self.X.m().
                sub_qual = types.get(parts[1])
                if sub_qual is not None:
                    sub_ctx = _class_quals(graph, sub_qual)
                    for qual in sub_ctx:
                        method = graph.functions.get(f"{qual}.{site.bare}")
                        if method is not None:
                            stack.append((method, f"{parts[1]}.", sub_ctx))
                            break
            elif not site.is_method:
                # Sibling nested def in the same event frame.
                for owner in (node.qualname, node.parent):
                    if not owner:
                        continue
                    nested = graph.functions.get(f"{owner}.{site.bare}")
                    if nested is not None:
                        stack.append((nested, prefix, ctx))
                        break
    return effects


def _handler_phases(sites) -> Set[Optional[int]]:
    """Constant phases a handler is scheduled at (None = dynamic)."""
    return {site.phase for _scheduler, site in sites}


def _phases_overlap(a: Set[Optional[int]], b: Set[Optional[int]]) -> bool:
    if None in a or None in b:
        return True
    return bool(a & b)


@register
class SameCycleRaceRule(Rule):
    code = "MC2601"
    name = "same-cycle-race"
    summary = ("two same-phase handlers of one component touch the same "
               "state with no ordering edge")
    rationale = (
        "Equal-cycle dispatch order is not part of the engine's "
        "semantics (the REPRO_TIE_ORDER sanitizer permutes it), so a "
        "handler writing state a sibling same-phase handler reads or "
        "writes makes results depend on the tie-break.  Defer one "
        "handler to a later phase, sequence both effects through one "
        "arbiter event, or make the update commutative.")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        # Group handlers by the class whose self they close over.
        by_class: Dict[str, List[Tuple[FunctionNode, Set[Optional[int]]]]] \
            = {}
        for qualname, sites in project.handlers.items():
            fn = graph.functions.get(qualname)
            if fn is None or _infra(fn.module.package):
                continue
            class_qual = _owning_class(graph, fn)
            if not class_qual:
                continue
            by_class.setdefault(class_qual, []).append(
                (fn, _handler_phases(sites)))

        for class_qual in sorted(by_class):
            handlers = sorted(by_class[class_qual],
                              key=lambda h: h[0].qualname)
            effects = {fn.qualname: _handler_effects(graph, class_qual, fn)
                       for fn, _phases in handlers}
            reported: Set[frozenset] = set()
            for i, (fn_a, phases_a) in enumerate(handlers):
                for fn_b, phases_b in handlers[i + 1:]:
                    if fn_a.qualname == fn_b.qualname:
                        continue
                    if not _phases_overlap(phases_a, phases_b):
                        continue  # ordering edge: phase separation
                    pair = frozenset((fn_a.qualname, fn_b.qualname))
                    if pair in reported:
                        continue
                    conflict = self._conflicts(effects[fn_a.qualname],
                                               effects[fn_b.qualname])
                    if not conflict:
                        continue
                    reported.add(pair)
                    attrs = ", ".join(sorted(conflict)[:4])
                    more = len(conflict) - 4
                    if more > 0:
                        attrs += f" (+{more} more)"
                    writer, reader = fn_a, fn_b
                    anchor = effects[writer.qualname].anchors.get(
                        sorted(conflict)[0], writer.node)
                    yield self.finding(
                        writer.module, anchor,
                        f"handlers {writer.name!r} and {reader.name!r} of "
                        f"{class_qual.rsplit('.', 1)[-1]} are schedulable "
                        f"at the same cycle and phase and race on "
                        f"{attrs}; dispatch order is tie-break-dependent "
                        f"— defer one to a later phase, sequence both "
                        f"through one arbiter event, or make the update "
                        f"commutative")

    @staticmethod
    def _conflicts(a: _Effects, b: _Effects) -> Set[str]:
        out: Set[str] = set()
        for x, y in ((a, b), (b, a)):
            for attr, kinds in x.writes.items():
                base = attr.split(".")[0]
                if base in _PLUMBING_ATTRS:
                    continue
                if attr in y.reads:
                    out.add(attr)
                other = y.writes.get(attr)
                if other is not None:
                    # write/write commutes only when both sides are
                    # pure ``+=`` accumulation.
                    if kinds != {ATTR_AUGADD} or other != {ATTR_AUGADD}:
                        out.add(attr)
        return out


@register
class NowKeyedOrderEscapeRule(Rule):
    code = "MC2602"
    name = "now-keyed-order-escape"
    summary = ("dict keyed by sim.now is iterated: same-cycle insertions "
               "leak dispatch order")
    rationale = (
        "Two same-cycle insertions under a bare sim.now key collide, "
        "and iterating the dict exposes whichever handler ran last — a "
        "tie-order dependence.  Key by (now, seq) or a stable id, or "
        "iterate sorted().")

    def check_module(self, module: Module) -> Iterator[Finding]:
        if _infra(module.package):
            return
        from repro.analysis.callgraph import CallGraph
        graph = CallGraph.build([module])
        for fn in graph.functions.values():
            for store in fn.now_key_stores:
                target = store.targets[0] if isinstance(store, ast.Assign) \
                    else store.target
                receiver = target.value  # the subscripted expression
                name = self._receiver_name(receiver)
                if name and not self._iterated(module, name):
                    continue  # order never escapes: no iteration found
                yield self.finding(
                    module, store,
                    "insertion keyed by sim.now: same-cycle handlers "
                    "collide on the key and iteration order leaks the "
                    "tie-break — key by (now, seq) or iterate sorted()")

    @staticmethod
    def _receiver_name(node: ast.AST) -> str:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return ""

    @staticmethod
    def _iterated(module: Module, name: str) -> bool:
        """Does the module iterate ``name`` outside ``sorted()``?"""
        for node in ast.walk(module.tree):
            iter_expr = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_expr = node.generators[0].iter
            if iter_expr is None:
                continue
            expr = iter_expr
            wrapped_sorted = False
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
                if expr.func.id == "sorted":
                    wrapped_sorted = True
                if expr.args:
                    expr = expr.args[0]
            if isinstance(expr, ast.Call) and isinstance(expr.func,
                                                         ast.Attribute) \
                    and expr.func.attr in ("items", "keys", "values"):
                expr = expr.func.value
            target_name = ""
            if isinstance(expr, ast.Attribute):
                target_name = expr.attr
            elif isinstance(expr, ast.Name):
                target_name = expr.id
            if target_name == name and not wrapped_sorted:
                return True
        return False


@register
class StatValueRmwRule(Rule):
    code = "MC2603"
    name = "stat-value-rmw"
    summary = ("non-commutative read-modify-write of a stat .value in "
               "handler code")
    rationale = (
        "The stats contract is that same-cycle updates commute "
        "(inc/add/+=) so the final counters are tie-order independent; "
        "a *= or rebuild-from-read RMW breaks that.  Use inc()/add() "
        "or a commutative aug-assign.")

    #: Commutative aug-assign operators (addition group).
    _COMMUTATIVE = (ast.Add, ast.Sub)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for fn in project.graph.functions.values():
            if _infra(fn.module.package) \
                    or fn.module.package == "repro.sim.stats":
                continue
            for node, dotted in fn.stat_value_rmw:
                if isinstance(node, ast.AugAssign) \
                        and isinstance(node.op, self._COMMUTATIVE):
                    continue
                yield self.finding(
                    fn.module, node,
                    f"non-commutative read-modify-write of {dotted}: the "
                    f"result depends on same-cycle handler order — use "
                    f"inc()/add() or a commutative += update")
