"""Figure/table builders: one function per paper exhibit.

Each ``figureNN`` function runs the relevant workload sweep and returns a
list of row dicts shaped like the paper's plotted series; ``format_rows``
renders them as an aligned text table (the benchmark harness prints
these).  Sizes/iteration counts default to scaled-down values that keep
a full run tractable in pure Python while preserving the trends; the
benchmark harness passes larger parameters when ``REPRO_SCALE=full``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.units import KB, MB, pretty_size
from repro.system.config import SystemConfig


def format_rows(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Render row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    widths = {c: max(len(str(c)),
                     *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


# ---------------------------------------------------------------- Fig. 2
def figure2(num_ops: int = 12) -> List[Dict[str, object]]:
    """Copy overhead (%) in four use cases.

    Methodology: run each workload, attribute cycles to its copy regions
    (baseline vs copies-elided runs where region markers are impractical).
    """
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.protobuf import run_protobuf
    from repro.workloads.mongo import run_mongo
    from repro.workloads.mvcc import run_mvcc
    from repro.workloads.hugepage import run_hugepage_cow

    proto, mongo_base, mongo_free, mvcc_base, mvcc_free, cow = sim_map([
        SimPoint(run_protobuf, ("memcpy",), {"num_ops": num_ops}),
        SimPoint(run_mongo, ("memcpy",),
                 {"num_inserts": 3, "field_size": 32 * KB}),
        SimPoint(run_mongo, ("nocopy",),
                 {"num_inserts": 3, "field_size": 32 * KB}),
        SimPoint(run_mvcc, ("memcpy", 0.0625), {"txns_per_thread": 20}),
        SimPoint(run_mvcc, ("nocopy", 0.0625), {"txns_per_thread": 20}),
        SimPoint(run_hugepage_cow, ("native",),
                 {"region_size": 8 * MB, "num_updates": 8}),
    ])
    rows: List[Dict[str, object]] = []
    rows.append({"workload": "Protobuf",
                 "copy_overhead_pct": 100.0 * proto["copy_fraction"]})
    rows.append({"workload": "MongoDB inserts",
                 "copy_overhead_pct": 100.0 * (1 - mongo_free["cycles"]
                                               / mongo_base["cycles"])})
    rows.append({"workload": "Cicada writes",
                 "copy_overhead_pct": 100.0 * (1 - mvcc_free["cycles"]
                                               / mvcc_base["cycles"])})
    # Fault cost is dominated by the 2MB copy; overhead = copy / fault.
    from repro.common import params
    fault = max(s for s in cow["latencies"])
    copy_part = fault - params.PAGE_FAULT_CYCLES
    rows.append({"workload": "Fork + COW fault",
                 "copy_overhead_pct": 100.0 * copy_part / fault})
    return rows


# ---------------------------------------------------------------- Fig. 3
def figure3(num_ops: int = 20) -> List[Dict[str, object]]:
    """Source of Protobuf memcpy overhead: miss and stall fractions."""
    from repro.workloads.protobuf import run_protobuf

    r = run_protobuf("memcpy", num_ops=num_ops)
    total_lookups = max(r["l1_hits"] + r["l1_misses"], 1)
    return [
        {"metric": "Cache miss",
         "pct": 100.0 * r["l1_misses"] / total_lookups},
        {"metric": "Mem miss cycles",
         "pct": 100.0 * r["mem_miss_cycles"] / max(r["cycles"], 1)},
        {"metric": "Mem miss stall cycles",
         "pct": 100.0 * r["stall_cycles"] / max(r["cycles"], 1)},
    ]


# ---------------------------------------------------------------- Fig. 4
def figure4() -> List[Dict[str, object]]:
    """Distribution of Protobuf memcpy sizes (CDF)."""
    from repro.workloads.protobuf import size_distribution

    return [{"size": pretty_size(s), "cumulative_pct": 100.0 * c}
            for s, c in size_distribution()]


# --------------------------------------------------------------- Fig. 10
def figure10(sizes: Optional[Sequence[int]] = None
             ) -> List[Dict[str, object]]:
    """Copy latency: memcpy, zIO, touched memcpy, (MC)²."""
    from repro.workloads.micro.latency import sweep_copy_latency

    sizes = list(sizes or (64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB,
                           256 * KB, 1 * MB, 4 * MB))
    rows = sweep_copy_latency(sizes)
    return [{"size": pretty_size(r["size"]), "variant": r["variant"],
             "latency_ns": r["ns"]} for r in rows]


# --------------------------------------------------------------- Fig. 11
def figure11(sizes: Optional[Sequence[int]] = None
             ) -> List[Dict[str, object]]:
    """memcpy_lazy overhead breakdown: writeback vs packet."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.micro.latency import measure_lazy_breakdown

    sizes = list(sizes or (64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB,
                           256 * KB, 1 * MB, 4 * MB))
    results = sim_map([SimPoint(measure_lazy_breakdown, (size,))
                       for size in sizes])
    return [{"size": pretty_size(size),
             "writeback_pct": 100.0 * b["writeback_frac"],
             "packet_pct": 100.0 * b["packet_frac"]}
            for size, b in zip(sizes, results)]


#: Scaled config for the access microbenchmarks: the paper copies 4MB on
#: a 2MB LLC (buffer = 2x LLC); we keep that ratio at 1/4 the size so the
#: sweeps run in minutes instead of hours.
ACCESS_CONFIG = SystemConfig(l1_size=32 * KB, l2_size=512 * KB)
ACCESS_BUFFER = 1 * MB


# --------------------------------------------------------------- Fig. 12
def figure12(buffer_size: int = ACCESS_BUFFER,
             config: Optional[SystemConfig] = None
             ) -> List[Dict[str, object]]:
    """Sequential destination access: normalized runtimes."""
    from repro.workloads.micro.access import sweep_sequential

    return [{"fraction": r["fraction"], "variant": r["variant"],
             "normalized_runtime": r["normalized"]}
            for r in sweep_sequential(buffer_size=buffer_size,
                                      config=config or ACCESS_CONFIG)]


# --------------------------------------------------------------- Fig. 13
def figure13(buffer_size: int = ACCESS_BUFFER,
             config: Optional[SystemConfig] = None
             ) -> List[Dict[str, object]]:
    """Random (pointer-chase) destination access: normalized runtimes."""
    from repro.workloads.micro.access import sweep_random

    return [{"fraction": r["fraction"], "variant": r["variant"],
             "normalized_runtime": r["normalized"]}
            for r in sweep_random(buffer_size=buffer_size,
                                  config=config or ACCESS_CONFIG)]


# --------------------------------------------------------------- Fig. 14
def figure14(num_ops: int = 40) -> List[Dict[str, object]]:
    """Protobuf runtime: baseline vs zIO vs (MC)²."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.protobuf import run_protobuf

    engines = ("memcpy", "zio", "mcsquare")
    results = sim_map([SimPoint(run_protobuf, (engine,),
                                {"num_ops": num_ops})
                       for engine in engines])
    base = results[0]["cycles"]
    return [{"variant": engine, "runtime_ms": r["ms"],
             "speedup_vs_baseline": base / r["cycles"]}
            for engine, r in zip(engines, results)]


# --------------------------------------------------------------- Fig. 15
def figure15(num_inserts: int = 6,
             field_size: int = 50 * KB) -> List[Dict[str, object]]:
    """MongoDB average insert latency."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.mongo import run_mongo

    engines = ("memcpy", "zio", "mcsquare")
    results = sim_map([SimPoint(run_mongo, (engine,),
                                {"num_inserts": num_inserts,
                                 "field_size": field_size})
                       for engine in engines])
    base = results[0]["avg_insert_latency_cycles"]
    return [{
        "variant": engine,
        "avg_latency_ms": r["avg_insert_latency_ms"],
        "vs_baseline": r["avg_insert_latency_cycles"] / base,
    } for engine, r in zip(engines, results)]


# ---------------------------------------------------------- Figs. 16/17
def figure16(threads: int = 1, txns: int = 30) -> List[Dict[str, object]]:
    """MVCC read-modify-write throughput vs fraction updated."""
    return _mvcc_sweep("rmw", threads, txns,
                       engines=("memcpy", "mcsquare"))


def figure17(threads: int = 1, txns: int = 30) -> List[Dict[str, object]]:
    """MVCC write-only throughput (incl. non-temporal variant)."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.mvcc import run_mvcc

    rows = _mvcc_sweep("write", threads, txns,
                       engines=("memcpy", "mcsquare"))
    fractions = (0.0625, 0.125, 0.25, 0.5, 1.0)
    results = sim_map([SimPoint(run_mvcc, ("mcsquare", fraction),
                                {"num_threads": threads,
                                 "update_kind": "write_nt",
                                 "txns_per_thread": txns})
                       for fraction in fractions])
    rows.extend({"fraction": fraction,
                 "variant": "mcsquare_nontemporal",
                 "kops_per_sec": r["kops_per_sec"]}
                for fraction, r in zip(fractions, results))
    return rows


def _mvcc_sweep(kind: str, threads: int, txns: int,
                engines=("memcpy", "mcsquare")) -> List[Dict[str, object]]:
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.mvcc import run_mvcc

    grid = [(fraction, engine)
            for fraction in (0.0625, 0.125, 0.25, 0.5, 1.0)
            for engine in engines]
    results = sim_map([SimPoint(run_mvcc, (engine, fraction),
                                {"num_threads": threads,
                                 "update_kind": kind,
                                 "txns_per_thread": txns})
                       for fraction, engine in grid])
    return [{"fraction": fraction, "variant": engine,
             "kops_per_sec": r["kops_per_sec"]}
            for (fraction, engine), r in zip(grid, results)]


# --------------------------------------------------------------- Fig. 18
def figure18(region_size: int = 16 * MB,
             num_updates: int = 60) -> List[Dict[str, object]]:
    """Huge-page COW write latencies, access by access."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.hugepage import run_hugepage_cow

    results = sim_map([SimPoint(run_hugepage_cow, (engine,),
                                {"region_size": region_size,
                                 "num_updates": num_updates})
                       for engine in ("native", "mcsquare")])
    rows: List[Dict[str, object]] = []
    for r in results:
        for i, lat in enumerate(r["latencies"]):
            rows.append({"access": i, "variant": r["engine"],
                         "cycles": lat})
    return rows


# --------------------------------------------------------------- Fig. 19
def figure19(num_transfers: int = 10) -> List[Dict[str, object]]:
    """Pipe transfer throughput by size."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.pipe import run_pipe

    grid = [(size, engine)
            for size in (1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB)
            for engine in ("native", "mcsquare")]
    results = sim_map([SimPoint(run_pipe, (engine, size),
                                {"num_transfers": num_transfers})
                       for size, engine in grid])
    return [{"size": pretty_size(size), "variant": r["engine"],
             "bytes_per_kcycle": r["bytes_per_kcycle"]}
            for (size, _engine), r in zip(grid, results)]


# --------------------------------------------------------------- Fig. 20
def figure20(num_ops: int = 30,
             entries_list=(8, 16, 64)) -> List[Dict[str, object]]:
    """Protobuf sweep over CTT entries × copy threshold.

    Scaled: the paper's full workload keeps thousands of prospective
    copies live, so it sweeps 1,024-4,096 entries; our scaled run keeps
    tens live, so the sweep covers 8-64 entries — the same two regimes
    (too-small table + high threshold stalls the CPU; a low threshold
    avoids stalls at the price of unnecessary copying).
    """
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.protobuf import run_protobuf

    grid = [(entries, threshold)
            for entries in entries_list
            for threshold in (0.25, 0.5, 0.9)]
    results = sim_map([
        SimPoint(run_protobuf, ("mcsquare",),
                 {"num_ops": num_ops,
                  "config": SystemConfig(ctt_entries=entries,
                                         copy_threshold=threshold)})
        for entries, threshold in grid])
    rows = [{
        "ctt_entries": entries, "threshold": threshold,
        "runtime_ms": r["ms"],
        "ctt_full_stall_cycles": r["ctt_full_stall_cycles"],
    } for (entries, threshold), r in zip(grid, results)]
    stalls = [r["ctt_full_stall_cycles"] for r in rows]
    lo, hi = min(stalls), max(stalls)
    for r in rows:
        r["stalls_normalized"] = (
            0.0 if hi == lo
            else (r["ctt_full_stall_cycles"] - lo) / (hi - lo))
    return rows


# --------------------------------------------------------------- Fig. 21
def figure21() -> List[Dict[str, object]]:
    """Source-overwrite runtime vs BPQ entries."""
    from repro.workloads.micro.srcwrite import sweep_bpq

    return [{"buffer": pretty_size(r["buffer_size"]),
             "bpq_entries": r["bpq_entries"],
             "normalized_runtime": r["normalized"]}
            for r in sweep_bpq()]


# --------------------------------------------------------------- Fig. 22
def figure22(txns: int = 20) -> List[Dict[str, object]]:
    """MVCC speedup vs threads × parallel CTT frees."""
    from repro.perf.runner import SimPoint, sim_map
    from repro.workloads.mvcc import run_mvcc

    # Scaled CTT (32 entries for this workload's tens of live copies,
    # mirroring the paper's thousands against 2,048 entries) so that the
    # table actually fills at high thread counts.
    thread_counts = (1, 2, 4, 8)
    frees_list = (1, 2, 4, 8)
    points = []
    for threads in thread_counts:
        points.append(SimPoint(run_mvcc, ("memcpy", 0.125),
                               {"num_threads": threads,
                                "txns_per_thread": txns}))
        for frees in frees_list:
            config = SystemConfig(ctt_entries=32, parallel_frees=frees)
            points.append(SimPoint(run_mvcc, ("mcsquare", 0.125),
                                   {"num_threads": threads,
                                    "txns_per_thread": txns,
                                    "config": config}))
    results = sim_map(points)
    rows = []
    index = 0
    for threads in thread_counts:
        base = results[index]["kops_per_sec"]
        index += 1
        for frees in frees_list:
            rows.append({"threads": threads, "parallel_frees": frees,
                         "normalized_throughput":
                         results[index]["kops_per_sec"] / base})
            index += 1
    return rows


# --------------------------------------------------------------- Fig. 23
def figure23(sizes: Optional[Sequence[int]] = None,
             localities: Optional[Sequence[str]] = None,
             fractions: Sequence[float] = (0.25,),
             pressures: Sequence[bool] = (False,),
             backends: Optional[Sequence[str]] = None,
             config: Optional[SystemConfig] = None
             ) -> List[Dict[str, object]]:
    """Copy-backend crossover: lazy MC vs in-DRAM vs software copies.

    Extension figure (not in the paper): every registered backend on the
    crossover grid, with per-point copy latency, destination-access
    latency, end-to-end cycles and DRAM traffic.  ``find_crossovers``
    locates where the winner flips along the size axis.
    """
    from repro.workloads.micro.crossover import (LOCALITIES,
                                                 sweep_backend_crossover)

    rows = sweep_backend_crossover(
        backends=backends or ("eager", "mclazy", "zio",
                              "rowclone", "mirror"),
        sizes=sizes or (4 * KB, 16 * KB, 64 * KB, 256 * KB),
        localities=localities or LOCALITIES,
        fractions=fractions,
        pressures=pressures,
        config=config or ACCESS_CONFIG)
    return [{"backend": r["backend"], "size": pretty_size(r["size"]),
             "locality": r["locality"], "fraction": r["fraction"],
             "pressure": r["pressure"],
             "copy_cycles": r["copy_cycles"],
             "access_cycles": r["access_cycles"],
             "total_cycles": r["total_cycles"],
             "dram_accesses": r["dram_accesses"],
             "verified": r["verified"],
             "size_bytes": r["size"]}
            for r in rows]


# --------------------------------------------------------------- Table I
def table1() -> List[Dict[str, object]]:
    """The simulated configuration (constants check)."""
    from repro.common import params

    cfg = SystemConfig()
    return [
        {"parameter": "CPUs", "value": cfg.num_cpus},
        {"parameter": "Clock speed", "value": f"{cfg.clock_ghz} GHz"},
        {"parameter": "Private L1 cache",
         "value": f"{pretty_size(cfg.l1_size)}/CPU, stride prefetcher"},
        {"parameter": "Shared L2 cache",
         "value": f"{pretty_size(cfg.l2_size)}, stride prefetcher"},
        {"parameter": "DRAM size", "value": pretty_size(cfg.dram_size)},
        {"parameter": "DRAM channels", "value": cfg.dram_channels},
        {"parameter": "BPQ size", "value": f"{cfg.bpq_entries} entries"},
        {"parameter": "CTT entries", "value": cfg.ctt_entries},
        {"parameter": "CTT latency",
         "value": f"{params.CTT_LATENCY_NS} ns"},
        {"parameter": "CTT area", "value": f"{params.CTT_AREA_MM2} mm^2"},
        {"parameter": "CTT leakage",
         "value": f"{params.CTT_LEAKAGE_MW} mW"},
    ]
