"""Calibrated latency / capacity constants with their provenance.

Every magic number in the simulator lives here so that the calibration is
auditable in one place.  Sources are the paper's Table I, common public
microarchitecture references, and (for OS costs) published measurements the
paper itself cites (zIO, On-demand-fork).

All times are CPU cycles at 4 GHz (0.25 ns / cycle) unless stated otherwise.
"""

from __future__ import annotations

from repro.common.units import KB, MB, GB, ns_to_cycles

# --------------------------------------------------------------- Table I
NUM_CPUS = 8
CPU_CLOCK_GHZ = 4.0
L1_SIZE = 64 * KB            # per CPU, with stride prefetcher
L2_SIZE = 2 * MB             # shared, with stride prefetcher
DRAM_SIZE = 3 * GB
DRAM_CHANNELS = 2
BPQ_ENTRIES = 8
CTT_ENTRIES = 2048
CTT_LATENCY_NS = 0.79        # CACTI 7.0, 22nm (paper §IV)
CTT_LATENCY_CYCLES = ns_to_cycles(CTT_LATENCY_NS)          # -> 4 cycles
CTT_ENTRY_BYTES = 16         # 52b src + 52b dst + 21b size + 1b active + pad
CTT_AREA_MM2 = 0.14          # CACTI, reported for context only
CTT_LEAKAGE_MW = 33.8        # CACTI, reported for context only
CTT_MAX_COPY_SIZE = 2 * MB   # 21-bit size field tracks up to a huge page
CTT_COPY_THRESHOLD = 0.50    # async freeing starts at 50% occupancy
CTT_PARALLEL_FREES = 4       # entries freed in parallel per MC (Fig 22)
WPQ_REJECT_THRESHOLD = 0.75  # dest writeback rejected when WPQ >75% full

# ------------------------------------------------------- cache hierarchy
L1_ASSOC = 8
L1_HIT_CYCLES = 4            # typical L1D load-to-use
L2_ASSOC = 16
L2_HIT_CYCLES = 30           # shared LLC round trip
CACHE_WRITEBUFFER_ENTRIES = 16

# stride prefetcher (both levels per Table I)
PREFETCH_DEGREE = 4
PREFETCH_TABLE_ENTRIES = 64
PREFETCH_CONFIDENCE_THRESHOLD = 2
PREFETCH_MAX_INFLIGHT = 8         # prefetch queue depth (bounds how far
                                  # the prefetcher can run ahead, as
                                  # gem5's queued prefetcher does)

# ------------------------------------------------------------------ DRAM
# DDR4-2400-ish timing.  Row-buffer hit ~ tCL + transfer; miss adds
# tRP + tRCD.  The paper quotes the typical DRAM range as 15-90 ns.
DRAM_ROW_HIT_NS = 26.0
DRAM_ROW_MISS_NS = 52.0
DRAM_ROW_CONFLICT_NS = 78.0
DRAM_BURST_NS = 3.33         # 64B burst on a DDR4-2400 x64 channel
DRAM_BANKS_PER_CHANNEL = 32  # 2 ranks x 16 banks
DRAM_ROW_BYTES = 8 * KB
MC_RPQ_ENTRIES = 32
MC_WPQ_ENTRIES = 64
MC_STATIC_LATENCY_NS = 18.0  # controller queues + PHY traversal each way

DRAM_ROW_HIT_CYCLES = ns_to_cycles(DRAM_ROW_HIT_NS)
DRAM_ROW_MISS_CYCLES = ns_to_cycles(DRAM_ROW_MISS_NS)
DRAM_ROW_CONFLICT_CYCLES = ns_to_cycles(DRAM_ROW_CONFLICT_NS)
DRAM_BURST_CYCLES = ns_to_cycles(DRAM_BURST_NS)
MC_STATIC_LATENCY_CYCLES = ns_to_cycles(MC_STATIC_LATENCY_NS)

# ----------------------------------------------------------- interconnect
INTERCONNECT_HOP_CYCLES = 12      # LLC <-> MC traversal, one way
BROADCAST_CYCLES = 16             # CTT update broadcast / snoop

# ----------------------------------------------- robustness / fault model
# Degradation budgets are *opt-in*: the defaults in SystemConfig keep the
# paper's unbounded-retry behaviour; these constants are the recommended
# values when bounded degradation is enabled (tests, --inject runs).
CTT_RETRY_CYCLES = 50             # MCLAZY retry interval on a full CTT
CTT_RETRY_LIMIT = 64              # bounded-retry budget before eager fallback
CTT_RETRY_BACKOFF_CAP = 16        # exponential-backoff multiplier ceiling
BPQ_OVERFLOW_TIMEOUT_CYCLES = 4000  # overflowed source write waits this long
                                    # before dependents are resolved eagerly
LINK_RETRY_CYCLES = 200           # CRC-detected link fault: retransmission
                                  # delay (CXL/DDR links retry in-order)
WATCHDOG_CHECK_EVERY_EVENTS = 50_000  # watchdog progress-check granularity
WATCHDOG_STALL_CHECKS = 3         # zero-progress windows before post-mortem

# ------------------------------------------------ supervised sweeps (host)
# Host-side orchestration budgets for repro.resilience: these bound the
# *simulator process*, never simulated behaviour (host time stays outside
# every simulated decision, per MC2001).
SWEEP_POINT_TIMEOUT_QUICK_S = 300.0   # wall-clock deadline per sweep point
SWEEP_POINT_TIMEOUT_FULL_S = 7200.0   # paper-sized REPRO_SCALE=full points
SWEEP_MAX_ATTEMPTS = 3            # attempts before a point is quarantined
SWEEP_BACKOFF_BASE_S = 0.25       # first retry delay (doubles per attempt)
SWEEP_BACKOFF_CAP_S = 8.0         # exponential-backoff ceiling

# ------------------------------------------------------------------- CPU
ROB_ENTRIES = 224                 # Skylake-class reorder buffer
LSQ_ENTRIES = 72                  # combined load/store queue budget
MAX_OUTSTANDING_MISSES = 8        # L1 MSHRs: bounds memory-level parallelism
                                  # (with the prefetch queue depth, this
                                  # calibrates single-stream copy speed to
                                  # the paper's gem5 Fig. 10 memcpy curve)
ISSUE_WIDTH = 4
STORE_BUFFER_ENTRIES = 56
CLWB_ISSUE_CYCLES = 2             # cost of issuing one CLWB µop
CLWB_PROBE_CYCLES = 20            # cache-probe drain for a clean/absent line
CLWB_PARALLELISM = 8              # concurrent CLWB drains (LFB share)
MCLAZY_ISSUE_CYCLES = 6           # build + send the lazy-copy packet
MCLAZY_SETUP_CYCLES = 30          # two address translations + operand setup
MEMCPY_LAZY_CALL_CYCLES = 100     # wrapper entry: ALIGN_REM math, branches
MFENCE_CYCLES = 33                # drain fence
NT_STORE_CYCLES = 2               # non-temporal store issue (no RFO)
LOOP_OVERHEAD_CYCLES = 3          # memcpy test+loop+address-gen per SIMD
                                  # iteration (calibrated to the paper's gem5
                                  # small-copy throughput, ~1.4 GB/s at 1KB)

# ---------------------------------------------------------------- OS costs
# Page fault entry/exit and service cost, excluding the data copy itself.
# zIO (OSDI'22) reports userfaultfd-style fault handling in the ~1.5-4 us
# range; minor COW faults in native kernels are ~1-2 us.
PAGE_FAULT_CYCLES = ns_to_cycles(1500.0)
USERFAULTFD_FAULT_CYCLES = ns_to_cycles(1500.0)
TLB_SHOOTDOWN_CYCLES = ns_to_cycles(4000.0)  # IPI to all cores + flush
TLB_SHOOTDOWN_PER_PAGE_CYCLES = ns_to_cycles(100.0)
SYSCALL_CYCLES = ns_to_cycles(700.0)         # mode switch + dispatch
FORK_BASE_CYCLES = ns_to_cycles(50_000.0)    # fork() excluding page copies
FORK_PER_PTE_CYCLES = ns_to_cycles(5.0)      # copy one PTE
PIPE_WAKEUP_CYCLES = ns_to_cycles(700.0)     # pipe lock + reader wakeup
PIPE_BUFFER_SIZE = 64 * KB

# --------------------------------------------------------------- software
# Eager memcpy moves data through the core: one load + one store per 32B
# SIMD chunk when it hits the cache; misses go to the memory system.
MEMCPY_CHUNK = 32                 # AVX2-style 32B loads/stores
ZIO_MIN_ELISION_SIZE = 4 * KB     # zIO needs at least one whole page
ZIO_SKIPLIST_OP_CYCLES = ns_to_cycles(120.0)
# Fixed cost of eliding one memcpy: syscall + unmap + TLB-shootdown IPIs
# (zIO, OSDI'22 reports elision costs of a few microseconds).
ZIO_ELISION_BASE_CYCLES = ns_to_cycles(4_000.0)
ZIO_UNMAP_PER_PAGE_CYCLES = ns_to_cycles(125.0)
INTERPOSER_MIN_LAZY_SIZE = 1 * KB  # §V-B: redirect memcpys >= 1KB

# ------------------------------------------------- in-DRAM copy backends
# RowClone (Seshadri et al., MICRO'13): FPM copies a row inside one
# subarray with two back-to-back activations (~2 x tRAS), ~90ns and
# 11.6x faster than the DDR3 baseline row copy; PSM moves data one
# cacheline at a time over the internal bus (serial READ+WRITE pairs),
# which for an 8KB row (128 lines) lands at ~1.4us — the paper's
# reported inter-bank latency scaled to our row size.
ROWCLONE_FPM_NS = 90.0
ROWCLONE_PSM_PER_LINE_NS = 10.6
ROWCLONE_FPM_CYCLES = ns_to_cycles(ROWCLONE_FPM_NS)
ROWCLONE_PSM_PER_LINE_CYCLES = ns_to_cycles(ROWCLONE_PSM_PER_LINE_NS)
ROWCLONE_SUBARRAY_ROWS = 512      # rows per subarray (MAT height): FPM
                                  # reaches only same-subarray row pairs
# In-Memory Mirroring: row cloning without the read phase — the sense
# amplifiers drive both rows in one activation window, so a full-row
# clone costs about one activate+precharge and runs per-bank-pair in
# parallel (no internal bus occupancy).
MIRROR_ROW_NS = 45.0
MIRROR_ROW_CYCLES = ns_to_cycles(MIRROR_ROW_NS)
# LazyPIM-style coherence at the CPU boundary: before an offloaded copy
# the host flushes dirty source lines and invalidates destination lines
# (the hierarchy generates the actual writebacks); the bookkeeping —
# signature lookup, permission check, per-line directory probe — is
# charged on the issuing core.
INMEM_COHERENCE_BASE_NS = 120.0
INMEM_COHERENCE_BASE_CYCLES = ns_to_cycles(INMEM_COHERENCE_BASE_NS)
INMEM_COHERENCE_PER_LINE_CYCLES = 1
