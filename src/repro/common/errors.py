"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""


class AddressError(ReproError):
    """An access touched an unmapped or out-of-range address."""


class ProtectionFault(ReproError):
    """A virtual-memory access violated page protection bits."""


class AlignmentError(ReproError):
    """An operation violated an alignment requirement (e.g. MCLAZY)."""


class CapacityError(ReproError):
    """A fixed-capacity hardware structure cannot accept a new entry."""
