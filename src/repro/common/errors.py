"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Also a :class:`ValueError`: callers validating parameters the
    Pythonic way (``except ValueError``) keep working.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation reached an inconsistent internal state.

    Also a :class:`RuntimeError`: an escaped simulation invariant is a
    runtime failure to any harness that does not know the repro types.
    """


class LivelockError(SimulationError):
    """The simulation stopped making progress.

    Raised by the engine when the event budget is exhausted or by an
    attached :class:`~repro.faults.watchdog.Watchdog` when simulated time
    stops advancing.  ``post_mortem`` carries a human-readable dump of
    the machine state at the moment of detection (see
    :meth:`~repro.system.system.System.snapshot`).
    """

    def __init__(self, message: str, post_mortem: str = ""):
        super().__init__(message if not post_mortem
                         else f"{message}\n{post_mortem}")
        self.post_mortem = post_mortem


class DeadlineError(LivelockError):
    """The simulation ran past its simulated-cycle deadline.

    Raised by an attached :class:`~repro.faults.watchdog.Watchdog` when
    ``Simulator.now`` exceeds the configured ``cycle_deadline``.  A
    subclass of :class:`LivelockError` because it means the same thing
    to a supervisor — the point will not finish within its budget — but
    distinguishable in failure reports (kind ``sim-deadline``).
    """


class SweepError(ReproError, RuntimeError):
    """A supervised sweep could not complete under the ``strict`` policy.

    Raised by :func:`repro.perf.runner.sim_map` when a point was
    quarantined for a cause that has no original exception to re-raise
    (a worker crash or a wall-clock timeout).  ``report`` carries the
    structured :class:`~repro.resilience.report.FailureReport`.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class SanitizerError(ReproError, RuntimeError):
    """The runtime sanitizer (``REPRO_SIMSAN=1``) detected a violation.

    Raised by :mod:`repro.analysis.simsan` when a sweep point mutates
    shared module state across the fork boundary or a cache hit fails
    its recompute audit.  Also a :class:`RuntimeError` for harnesses
    that do not know the repro types.
    """


class FaultSpecError(ConfigError):
    """A fault-injection spec string could not be parsed."""


class PoisonedDataError(ReproError):
    """An operation consumed data marked poisoned (detected-uncorrectable)."""


class AddressError(ReproError):
    """An access touched an unmapped or out-of-range address."""


class ProtectionFault(ReproError):
    """A virtual-memory access violated page protection bits."""


class AlignmentError(ReproError):
    """An operation violated an alignment requirement (e.g. MCLAZY)."""


class CapacityError(ReproError):
    """A fixed-capacity hardware structure cannot accept a new entry."""
