"""Size and time units used throughout the simulator.

All sizes are in bytes; all simulated time is in CPU cycles (the CPU clock
is the master clock, 4 GHz per Table I of the paper, so 1 cycle = 0.25 ns).
Helpers convert between nanoseconds and cycles at the configured clock.
"""

from __future__ import annotations

import math
from fractions import Fraction

# ---------------------------------------------------------------- sizes
B = 1
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHELINE_SIZE = 64
PAGE_SIZE = 4 * KB
HUGE_PAGE_SIZE = 2 * MB

# ---------------------------------------------------------------- clock
CPU_CLOCK_GHZ = 4.0  # Table I: 4 GHz


def _as_exact(value: float) -> Fraction:
    """The decimal rational ``value`` denotes, not its binary float image.

    ``Fraction(0.1)`` is the 55-bit binary neighbour of one tenth;
    parsing the shortest round-trip repr instead yields exactly 1/10,
    which is what a ``latency_ns=0.1`` config line means.
    """
    return Fraction(repr(value)) if isinstance(value, float) \
        else Fraction(value)


def ns_to_cycles(ns: float, clock_ghz: float = CPU_CLOCK_GHZ) -> int:
    """Convert nanoseconds to an integral number of CPU cycles (rounded up).

    The product is taken exactly in rational arithmetic before the
    ceiling, so a duration that is a whole number of cycles never rounds
    up an extra cycle from float error — e.g. 0.1 ns at 30 GHz is
    exactly 3 cycles even though ``0.1 * 30.0`` floats to
    ``3.0000000000000004`` (which the old float-equality ceil bumped
    to 4).
    """
    return math.ceil(_as_exact(ns) * _as_exact(clock_ghz))


def cycles_to_ns(cycles: float, clock_ghz: float = CPU_CLOCK_GHZ) -> float:
    """Convert CPU cycles back to nanoseconds."""
    return cycles / clock_ghz


def cycles_to_us(cycles: float, clock_ghz: float = CPU_CLOCK_GHZ) -> float:
    """Convert CPU cycles to microseconds."""
    return cycles / clock_ghz / 1000.0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def align_rem(addr: int, alignment: int) -> int:
    """Bytes needed to advance ``addr`` to the next ``alignment`` boundary.

    Mirrors the ``ALIGN_REM`` macro in the paper's Figure 8 pseudocode:
    returns 0 when ``addr`` is already aligned.
    """
    rem = addr & (alignment - 1)
    return 0 if rem == 0 else alignment - rem


def is_aligned(addr: int, alignment: int) -> bool:
    """True when ``addr`` is a multiple of ``alignment``."""
    return (addr & (alignment - 1)) == 0


def cacheline_of(addr: int) -> int:
    """Cacheline-aligned base address containing ``addr``."""
    return align_down(addr, CACHELINE_SIZE)


def cachelines_spanned(addr: int, size: int) -> int:
    """Number of distinct cachelines touched by ``[addr, addr+size)``."""
    if size <= 0:
        return 0
    first = align_down(addr, CACHELINE_SIZE)
    last = align_down(addr + size - 1, CACHELINE_SIZE)
    return (last - first) // CACHELINE_SIZE + 1


def pretty_size(size: int) -> str:
    """Human-readable size string, e.g. ``64B``, ``4KB``, ``2MB``."""
    if size >= GB and size % GB == 0:
        return f"{size // GB}GB"
    if size >= MB and size % MB == 0:
        return f"{size // MB}MB"
    if size >= KB and size % KB == 0:
        return f"{size // KB}KB"
    return f"{size}B"
