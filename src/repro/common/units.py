"""Size and time units used throughout the simulator.

All sizes are in bytes; all simulated time is in CPU cycles (the CPU clock
is the master clock, 4 GHz per Table I of the paper, so 1 cycle = 0.25 ns).
Helpers convert between nanoseconds and cycles at the configured clock.
"""

from __future__ import annotations

# ---------------------------------------------------------------- sizes
B = 1
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

CACHELINE_SIZE = 64
PAGE_SIZE = 4 * KB
HUGE_PAGE_SIZE = 2 * MB

# ---------------------------------------------------------------- clock
CPU_CLOCK_GHZ = 4.0  # Table I: 4 GHz


def ns_to_cycles(ns: float, clock_ghz: float = CPU_CLOCK_GHZ) -> int:
    """Convert nanoseconds to an integral number of CPU cycles (rounded up)."""
    cycles = ns * clock_ghz
    whole = int(cycles)
    return whole if cycles == whole else whole + 1


def cycles_to_ns(cycles: float, clock_ghz: float = CPU_CLOCK_GHZ) -> float:
    """Convert CPU cycles back to nanoseconds."""
    return cycles / clock_ghz


def cycles_to_us(cycles: float, clock_ghz: float = CPU_CLOCK_GHZ) -> float:
    """Convert CPU cycles to microseconds."""
    return cycles / clock_ghz / 1000.0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def align_rem(addr: int, alignment: int) -> int:
    """Bytes needed to advance ``addr`` to the next ``alignment`` boundary.

    Mirrors the ``ALIGN_REM`` macro in the paper's Figure 8 pseudocode:
    returns 0 when ``addr`` is already aligned.
    """
    rem = addr & (alignment - 1)
    return 0 if rem == 0 else alignment - rem


def is_aligned(addr: int, alignment: int) -> bool:
    """True when ``addr`` is a multiple of ``alignment``."""
    return (addr & (alignment - 1)) == 0


def cacheline_of(addr: int) -> int:
    """Cacheline-aligned base address containing ``addr``."""
    return align_down(addr, CACHELINE_SIZE)


def cachelines_spanned(addr: int, size: int) -> int:
    """Number of distinct cachelines touched by ``[addr, addr+size)``."""
    if size <= 0:
        return 0
    first = align_down(addr, CACHELINE_SIZE)
    last = align_down(addr + size - 1, CACHELINE_SIZE)
    return (last - first) // CACHELINE_SIZE + 1


def pretty_size(size: int) -> str:
    """Human-readable size string, e.g. ``64B``, ``4KB``, ``2MB``."""
    if size >= GB and size % GB == 0:
        return f"{size // GB}GB"
    if size >= MB and size % MB == 0:
        return f"{size // MB}MB"
    if size >= KB and size % KB == 0:
        return f"{size // KB}KB"
    return f"{size}B"
