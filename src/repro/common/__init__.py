"""Shared constants, units, and errors."""

from repro.common import params, units
from repro.common.errors import (AddressError, AlignmentError, CapacityError,
                                 ConfigError, ProtectionFault, ReproError,
                                 SimulationError)

__all__ = [
    "params", "units", "ReproError", "ConfigError", "SimulationError",
    "AddressError", "ProtectionFault", "AlignmentError", "CapacityError",
]
