"""Crash-safe supervised execution for parallel sweeps.

The (MC)² design philosophy — do the lazy, cheap thing, detect when it
cannot complete, and fall back eagerly — applied to the run
infrastructure itself:

* :mod:`repro.resilience.supervisor` — per-point futures under a
  supervisor that survives worker crashes (pool respawn + suspect
  isolation), enforces per-point wall-clock deadlines, retries with
  bounded deterministic backoff, and quarantines poison points;
* :mod:`repro.resilience.deadline` — wall-clock and simulated-cycle
  budgets (``REPRO_POINT_TIMEOUT``, ``REPRO_CYCLE_DEADLINE``) and the
  retry/backoff knobs (``REPRO_POINT_RETRIES``, ``REPRO_RETRY_BACKOFF``);
* :mod:`repro.resilience.report` — structured failure reports, the
  explicit-:class:`~repro.resilience.report.Hole` results of the
  ``partial`` policy, and the per-sweep completion journal that makes
  checkpoint-resume observable.

See ``docs/RESILIENCE.md`` for the supervision model and resume
semantics; the entry point is :func:`repro.perf.runner.sim_map`, which
routes every parallel sweep through this layer.
"""

from repro.resilience.deadline import (Backoff, backoff_from_env,
                                       cycle_budget, max_attempts,
                                       point_timeout)
from repro.resilience.report import (ATTEMPT_REASONS, FAILURE_KINDS,
                                     FailureReport, Hole, PointFailure,
                                     SweepJournal, is_hole, load_report)
from repro.resilience.supervisor import (SupervisorConfig, SweepOutcome,
                                         run_supervised)

__all__ = [
    "ATTEMPT_REASONS",
    "Backoff",
    "FAILURE_KINDS",
    "FailureReport",
    "Hole",
    "PointFailure",
    "SupervisorConfig",
    "SweepJournal",
    "SweepOutcome",
    "backoff_from_env",
    "cycle_budget",
    "is_hole",
    "load_report",
    "max_attempts",
    "point_timeout",
    "run_supervised",
]
