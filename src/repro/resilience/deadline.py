"""Deadline and retry budgets for supervised sweeps.

Two orthogonal budgets bound a sweep point:

* the **wall-clock deadline** (:func:`point_timeout`) caps host seconds
  per attempt.  It is derived from ``REPRO_SCALE`` (a paper-sized
  ``full`` point legitimately runs orders of magnitude longer than a
  ``quick`` one) and overridable with ``REPRO_POINT_TIMEOUT``; the
  supervisor enforces it from the parent by killing the worker pool.
* the **sim-cycle deadline** (:func:`cycle_budget`) caps simulated
  cycles per run.  It is enforced *inside* the simulation by the
  :class:`~repro.faults.watchdog.Watchdog` (pass it to
  ``System.attach_watchdog(cycle_deadline=...)``), which raises
  :class:`~repro.common.errors.DeadlineError`; the supervisor
  classifies that as deterministic and quarantines without retrying.

Retries use deterministic exponential backoff (:class:`Backoff`) — no
jitter, so two identical failing sweeps behave identically (MC2002:
nothing here may consume randomness).

Every host-time read in this package goes through
:func:`repro.perf.hostclock.host_seconds`, the repository's single
sanctioned wall-clock funnel (MC2001): deadlines bound the *simulator
process*, never simulated behaviour.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional

from repro.common import params

#: Env values that disable a budget outright.
_OFF_TOKENS = ("0", "off", "none", "no", "false")


def _env_float(name: str) -> Optional[float]:
    """A positive float from the environment, None if unset/disabling.

    A disabling token ("0", "off", "none") returns ``float('inf')`` as
    an internal marker translated by callers to "no budget"; malformed
    values fall back to None (use the derived default) rather than
    aborting a sweep over a typo.
    """
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return None
    if raw in _OFF_TOKENS:
        return float("inf")
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else float("inf")


def scale_from_env(scale: Optional[str] = None) -> str:
    """The effective ``REPRO_SCALE`` (explicit argument wins)."""
    return scale or os.environ.get("REPRO_SCALE", "quick")


def point_timeout(scale: Optional[str] = None) -> Optional[float]:
    """Wall-clock seconds allowed per point attempt; None = unbounded.

    ``REPRO_POINT_TIMEOUT=<seconds>`` overrides; ``0``/``off``/``none``
    disables.  Without an override the budget follows the scale:
    ``full`` gets :data:`~repro.common.params.SWEEP_POINT_TIMEOUT_FULL_S`,
    everything else :data:`~repro.common.params.SWEEP_POINT_TIMEOUT_QUICK_S`.
    """
    override = _env_float("REPRO_POINT_TIMEOUT")
    if override is not None:
        return None if math.isinf(override) else override
    if scale_from_env(scale) == "full":
        return params.SWEEP_POINT_TIMEOUT_FULL_S
    return params.SWEEP_POINT_TIMEOUT_QUICK_S


def cycle_budget(default: Optional[int] = None) -> Optional[int]:
    """Simulated-cycle deadline from ``REPRO_CYCLE_DEADLINE``.

    Opt-in: returns ``default`` (normally None = unbounded) when the
    variable is unset, and None when it is explicitly disabled.  Pass
    the result to ``System.attach_watchdog(cycle_deadline=...)``.
    """
    raw = os.environ.get("REPRO_CYCLE_DEADLINE", "").strip().lower()
    if not raw:
        return default
    if raw in _OFF_TOKENS:
        return None
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def max_attempts() -> int:
    """Attempts per point before quarantine (``REPRO_POINT_RETRIES``)."""
    try:
        return max(1, int(os.environ.get(
            "REPRO_POINT_RETRIES", str(params.SWEEP_MAX_ATTEMPTS))))
    except ValueError:
        return params.SWEEP_MAX_ATTEMPTS


@dataclass(frozen=True)
class Backoff:
    """Deterministic exponential backoff: base * 2^(attempt-1), capped."""

    base: float = params.SWEEP_BACKOFF_BASE_S
    cap: float = params.SWEEP_BACKOFF_CAP_S

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(self.cap, self.base * (2.0 ** (attempt - 1)))


def backoff_from_env() -> Backoff:
    """A :class:`Backoff` honouring ``REPRO_RETRY_BACKOFF`` (base secs)."""
    base = _env_float("REPRO_RETRY_BACKOFF")
    if base is None:
        return Backoff()
    if math.isinf(base):
        return Backoff(base=0.0, cap=0.0)
    return Backoff(base=base, cap=max(base, params.SWEEP_BACKOFF_CAP_S))
