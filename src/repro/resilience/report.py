"""Structured failure reporting and the per-sweep completion journal.

A supervised sweep (:mod:`repro.resilience.supervisor`) must account for
every point it was given: a point either produced a result, or it is
named in a :class:`FailureReport` entry with its attempt count and the
cause of its last attempt.  Silent holes are forbidden — under the
``strict`` policy a quarantined point aborts the sweep, and under
``partial`` its result slot holds an explicit :class:`Hole` carrying the
same information as the report entry.

The :class:`SweepJournal` is the crash-safe progress record: one
append-only JSONL file per sweep (identified by a content hash of the
point keys) under ``<cache root>/.sweeps/``.  Every completed fresh
result appends a line *as it finishes*, so after a Ctrl-C, an OOM kill,
or a machine reboot the journal shows exactly how far the sweep got and
which points were quarantined.  Resume itself rides on the result cache
(completed points come back as hits); the journal is what makes the
interruption observable and the failure report durable.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Failure kinds a supervised attempt can end with.  ``timeout`` is the
#: wall-clock deadline, ``crash`` a worker death (pool break),
#: ``sim-deadline``/``livelock`` the watchdog's simulated-time budgets,
#: and ``error`` any other in-worker exception.
FAILURE_KINDS = ("timeout", "crash", "sim-deadline", "livelock", "error")

#: Span end reasons recorded per attempt (see repro.obs.runtime).
ATTEMPT_REASONS = ("ok", "timeout", "crash", "retried", "quarantined")


@dataclass(frozen=True)
class PointFailure:
    """One quarantined sweep point: who, how often, and why."""

    index: int                 # position in the sweep's input order
    name: str                  # fully qualified point function
    kind: str                  # one of FAILURE_KINDS
    cause: str                 # human-readable last-attempt cause
    attempts: int              # attempts consumed before quarantine
    key: Optional[str] = None  # simcache key, when the point was keyable

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class Hole:
    """Explicit placeholder for a failed point under ``policy=partial``.

    Equality-comparable and not JSON-encodable, so a hole can never be
    silently persisted to the result cache or mistaken for data.
    """

    index: int
    name: str
    kind: str
    cause: str
    attempts: int


def is_hole(value: Any) -> bool:
    """True when a ``partial``-policy result slot is a failure hole."""
    return isinstance(value, Hole)


@dataclass
class FailureReport:
    """Everything that went wrong in one supervised sweep."""

    sweep_id: str
    policy: str
    scale: str
    total: int
    completed: int = 0
    pool_breaks: int = 0
    failures: List[PointFailure] = field(default_factory=list)

    def add(self, failure: PointFailure) -> None:
        self.failures.append(failure)

    @property
    def quarantined(self) -> int:
        return len(self.failures)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep_id,
            "policy": self.policy,
            "scale": self.scale,
            "total": self.total,
            "completed": self.completed,
            "pool_breaks": self.pool_breaks,
            "quarantined": self.quarantined,
            "failures": [f.to_dict() for f in
                         sorted(self.failures, key=lambda f: f.index)],
        }

    def summary(self) -> str:
        """One paragraph naming each poison point, for exception text."""
        lines = [f"sweep {self.sweep_id}: {self.completed}/{self.total} "
                 f"completed, {self.quarantined} quarantined, "
                 f"{self.pool_breaks} pool break(s)"]
        for failure in sorted(self.failures, key=lambda f: f.index):
            lines.append(f"  point[{failure.index}] {failure.name}: "
                         f"{failure.kind} after {failure.attempts} "
                         f"attempt(s) — {failure.cause}")
        return "\n".join(lines)

    def write(self, directory: pathlib.Path) -> pathlib.Path:
        """Persist as ``<sweep_id>.report.json``; returns the path."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.sweep_id}.report.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(self.to_dict(), indent=2,
                                      sort_keys=True) + "\n",
                           encoding="utf-8")
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return path


def load_report(path: pathlib.Path) -> Dict[str, Any]:
    """Read a persisted failure report (raises on a missing file)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class SweepJournal:
    """Append-only JSONL record of one sweep's completions.

    Lines are flushed and fsynced as written, so the journal survives a
    SIGKILL of the sweep process; a torn final line (the kill landed
    mid-write) is tolerated and ignored on load.
    """

    def __init__(self, directory: pathlib.Path, sweep_id: str):
        self.sweep_id = sweep_id
        self.path = pathlib.Path(directory) / f"{sweep_id}.journal.jsonl"
        self._handle = None

    # ------------------------------------------------------------- load
    def load(self) -> Dict[str, Any]:
        """Prior progress: done keys/indices, quarantines, run count."""
        state: Dict[str, Any] = {"runs": 0, "done_indices": set(),
                                 "done_keys": set(), "quarantined": [],
                                 "ended": False}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return state
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a killed writer
            event = record.get("event")
            if event == "start":
                state["runs"] += 1
                state["ended"] = False
            elif event == "done":
                state["done_indices"].add(record.get("index"))
                if record.get("key"):
                    state["done_keys"].add(record["key"])
            elif event == "quarantine":
                state["quarantined"].append(record)
            elif event == "end":
                state["ended"] = True
        return state

    # ----------------------------------------------------------- append
    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def start(self, total: int, cached: int, fresh: int) -> None:
        self._append({"event": "start", "sweep": self.sweep_id,
                      "total": total, "cached": cached, "fresh": fresh})

    def record_done(self, index: int, name: str,
                    key: Optional[str]) -> None:
        self._append({"event": "done", "index": index, "name": name,
                      "key": key})

    def record_quarantine(self, failure: PointFailure) -> None:
        record = failure.to_dict()
        record["event"] = "quarantine"
        self._append(record)

    def record_end(self, completed: int, quarantined: int) -> None:
        self._append({"event": "end", "completed": completed,
                      "quarantined": quarantined})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
